//! Community evolution analysis — the paper's Fig. 7(b) scenario:
//! "compare the average membership of two communities over a year" —
//! plus community density evolution and membership-churn detection.
//!
//! Run with: `cargo run --release --example community_evolution`

use std::sync::Arc;

use hgs::datagen::{community::community_name, CommunityGraph};
use hgs::delta::TimeRange;
use hgs::graph::algo;
use hgs::store::StoreConfig;
use hgs::taf::{SoN, TgiHandler};
use hgs::tgi::{Tgi, TgiConfig};

fn main() {
    // A social network with four planted communities whose membership
    // churns over time.
    let trace = CommunityGraph {
        nodes: 1_500,
        communities: 4,
        edge_events: 12_000,
        intra_prob: 0.9,
        switches: 400,
        seed: 42,
    };
    let events = trace.generate();
    let end = events.last().unwrap().time;

    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 1), &events);
    let handler = TgiHandler::new(Arc::new(tgi), 2);

    // Fig. 7b: Timeslice to the analysis window, Filter down to the
    // community attribute, Select each community, Compare.
    let window = TimeRange::new(end / 2, end + 1);
    let son = handler
        .son()
        .timeslice(window)
        .fetch()
        .filter_attrs(&["community"]);
    let son_a = son.select_attr("community", "A");
    let son_b = son.select_attr("community", "B");
    println!(
        "community A: {} members; community B: {} members",
        son_a.len(),
        son_b.len()
    );

    // Compare average connectivity (degree at window end) A vs B.
    let diff = SoN::compare(&son_a, &son_b, |n| {
        n.version_at(end).map(|s| s.degree() as f64).unwrap_or(0.0)
    });
    let avg_gap: f64 = diff.iter().map(|(_, d)| d).sum::<f64>() / diff.len().max(1) as f64;
    println!("average degree gap (A - B): {avg_gap:.3}");

    // Density evolution of each community subgraph (the "visualize the
    // evolution of this community" query of Fig. 1).
    for c in 0..2 {
        let name = community_name(c);
        let members = handler
            .son()
            .timeslice(window)
            .fetch()
            .select_attr("community", &name);
        let series = members.evolution(algo::density, 6);
        println!("community {name} density evolution:");
        for (t, d) in &series {
            println!("  t={t:>8}  density={d:.6}");
        }
    }

    // Membership churn: who switched communities inside the window?
    let full = handler.son().timeslice(window).fetch();
    let switchers = full.select(|n| {
        let first = n.initial().and_then(|s| {
            s.attrs
                .get("community")
                .and_then(|v| v.as_text().map(String::from))
        });
        let last = n.version_at(end).and_then(|s| {
            s.attrs
                .get("community")
                .and_then(|v| v.as_text().map(String::from))
        });
        first.is_some() && last.is_some() && first != last
    });
    println!("{} nodes changed community in the window", switchers.len());
    for n in switchers.nodes().iter().take(5) {
        let from = n
            .initial()
            .and_then(|s| {
                s.attrs
                    .get("community")
                    .and_then(|v| v.as_text().map(String::from))
            })
            .unwrap_or_default();
        let to = n
            .version_at(end)
            .and_then(|s| {
                s.attrs
                    .get("community")
                    .and_then(|v| v.as_text().map(String::from))
            })
            .unwrap_or_default();
        println!("  node {} moved {from} -> {to}", n.id());
    }
}

//! Quickstart: build a Temporal Graph Index over a synthetic history,
//! run the paper's retrieval primitives, and do a first piece of
//! temporal analytics with TAF.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use hgs::datagen::WikiGrowth;
use hgs::delta::TimeRange;
use hgs::graph::algo;
use hgs::store::StoreConfig;
use hgs::taf::TgiHandler;
use hgs::tgi::{Tgi, TgiConfig};

fn main() {
    // 1. A historical trace: 30k events of citation-network-like
    //    growth (every generator in hgs-datagen yields a plain
    //    chronological Vec<Event>; bring your own history if you have
    //    one).
    let events = WikiGrowth::sized(30_000).generate();
    let end = events.last().unwrap().time;
    println!("history: {} events over [0, {end}]", events.len());

    // 2. Index it. TgiConfig's knobs are the paper's: eventlist size
    //    l, micro-partition size ps, tree arity, horizontal partitions
    //    ns, timespan length. The store is a simulated 4-machine
    //    cluster.
    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 1), &events);
    println!(
        "indexed: {} timespans, {:.2} MB stored",
        tgi.span_count(),
        tgi.storage_bytes() as f64 / 1e6
    );

    // 3. Snapshot retrieval (Algorithm 1): the whole graph as of any
    //    past timepoint.
    let then = end / 2;
    let snapshot = tgi.snapshot(then);
    println!(
        "snapshot at t={then}: {} nodes, {} edges",
        snapshot.cardinality(),
        snapshot.edge_count()
    );

    // 4. Node history (Algorithm 2): every version of one node.
    let hub = *snapshot.sorted_ids().first().unwrap();
    let history = tgi.node_history(hub, TimeRange::new(0, end + 1));
    println!(
        "node {hub}: {} changes; final degree {}",
        history.change_count(),
        history
            .versions()
            .last()
            .and_then(|(_, s)| s.as_ref().map(|s| s.degree()))
            .unwrap_or(0)
    );

    // 5. k-hop neighborhood as of a past time. The fetch strategy
    //    (Algorithm 3 vs 4) is picked automatically from the index's
    //    cost model; `khop_with` forces one explicitly.
    let neighborhood = tgi.khop(hub, then, 2);
    println!(
        "2-hop neighborhood of {hub} at t={then}: {} nodes",
        neighborhood.cardinality()
    );

    // 6. TAF: fetch a Set of Temporal Nodes and watch graph density
    //    evolve over ten sample points (Fig. 7c of the paper).
    let handler = TgiHandler::new(Arc::new(tgi), 2);
    let son = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();
    let evolution = son.evolution(algo::density, 10);
    println!("density evolution:");
    for (t, d) in &evolution {
        println!("  t={t:>8}  density={d:.6}");
    }
    let (peak_t, peak_v) =
        hgs::taf::TempAggregate::t_max(&evolution[..]).expect("non-empty series");
    println!("peak density {peak_v:.6} at t={peak_t}");
}

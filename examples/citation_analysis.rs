//! Citation-network analysis — the paper's motivating queries:
//! "How many citations did I have in 2012?", degree evolution of a
//! vertex, the most central node last year, and comparing PageRank
//! across two timepoints.
//!
//! Run with: `cargo run --release --example citation_analysis`

use std::sync::Arc;

use hgs::datagen::WikiGrowth;
use hgs::delta::TimeRange;
use hgs::graph::algo;
use hgs::store::StoreConfig;
use hgs::taf::TgiHandler;
use hgs::tgi::{Tgi, TgiConfig};

fn main() {
    // A directed citation network: new papers cite existing ones with
    // preferential attachment.
    let events = WikiGrowth {
        events: 40_000,
        attach_edges: 4,
        directed: true,
        ..WikiGrowth::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 1), &events);

    // "How many citations did I have at time X?" — a static-vertex
    // fetch at three points in the past.
    let hub = {
        // the most-cited paper at the end of history
        let snap = tgi.snapshot(end);
        snap.iter()
            .max_by_key(|n| n.degree())
            .map(|n| n.id)
            .unwrap()
    };
    println!("most-cited paper: node {hub}");
    for frac in [4u64, 2, 1] {
        let t = end / frac;
        let cites = tgi
            .node_at(hub, t)
            .map(|n| {
                n.edges
                    .iter()
                    .filter(|e| e.dir == hgs::delta::EdgeDir::In)
                    .count()
            })
            .unwrap_or(0);
        println!("  citations at t={t:>8}: {cites}");
    }

    // Degree evolution of that node (Fig. 1's "vertex history /
    // degree evolution" cell) via its version chain.
    let history = tgi.node_history(hub, TimeRange::new(0, end + 1));
    let versions = history.versions();
    println!("degree evolution ({} versions, sampled):", versions.len());
    for (t, state) in versions.iter().step_by(versions.len().div_ceil(8).max(1)) {
        println!(
            "  t={t:>8}  degree={}",
            state.as_ref().map(|s| s.degree()).unwrap_or(0)
        );
    }

    // "The most central node last year": betweenness on the recent
    // 2-hop neighborhood of the hub (exact Brandes on the subgraph).
    let neighborhood = tgi.khop(hub, end, 2);
    let g = hgs::graph::Graph::from_delta(neighborhood);
    let bc = algo::betweenness(&g);
    let (best, score) = bc
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &v)| (g.id(i as u32), v))
        .unwrap();
    println!("most central node in the hub's 2-hop neighborhood: {best} (score {score:.1})");

    // PageRank drift: who rose fastest over the second half of
    // history? (Compare operator over two timeslices.)
    let handler = TgiHandler::new(Arc::new(tgi), 2);
    let son = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();
    let g_mid = son.graph_at(end / 2);
    let g_end = son.graph_at(end);
    let pr_mid = algo::pagerank(&g_mid, 0.85, 30);
    let pr_end = algo::pagerank(&g_end, 0.85, 30);
    let mut risers: Vec<(u64, f64)> = g_end
        .ids()
        .iter()
        .map(|&id| {
            let before = g_mid.idx(id).map(|i| pr_mid[i as usize]).unwrap_or(0.0);
            let after = g_end.idx(id).map(|i| pr_end[i as usize]).unwrap_or(0.0);
            (id, after - before)
        })
        .collect();
    risers.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("fastest-rising papers by PageRank (second half of history):");
    for (id, gain) in risers.iter().take(5) {
        println!("  node {id}: +{gain:.6}");
    }
}

//! Epidemic contact tracing over an interaction history — the
//! "geospatial proximity of infected livestock" / epidemiology use
//! case of the paper's introduction, exercising neighborhood-version
//! retrieval (Algorithm 5) and temporal reachability.
//!
//! Run with: `cargo run --release --example contact_tracing`

use hgs::datagen::{augment_with_churn, WikiGrowth};
use hgs::delta::{FxHashSet, NodeId, Time, TimeRange};
use hgs::store::StoreConfig;
use hgs::tgi::{Tgi, TgiConfig};

fn main() {
    // An interaction network where contacts appear and disappear over
    // time (churn matters: an edge that existed only briefly is still
    // an exposure).
    let base = WikiGrowth::sized(20_000).generate();
    let events = augment_with_churn(&base, 15_000, 0.45, 7);
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(4, 1), &events);

    let patient_zero: NodeId = 0;
    let infection_time = end / 2;
    let window = TimeRange::new(infection_time, end + 1);

    // Direct exposures: everyone who was a 1-hop neighbor of patient
    // zero at any time after infection — exactly Algorithm 5's
    // neighborhood history.
    let nh = tgi.one_hop_history(patient_zero, window);
    println!(
        "patient zero {patient_zero}: {} distinct contacts after t={infection_time}",
        nh.neighbors.len()
    );
    println!(
        "neighborhood changed at {} timepoints",
        nh.change_times().len()
    );

    // Temporal BFS: infection can only travel forward in time along
    // edges that exist at (or appear after) the carrier's own
    // exposure time.
    let mut exposed_at: hgs::delta::FxHashMap<NodeId, Time> = Default::default();
    exposed_at.insert(patient_zero, infection_time);
    let mut frontier = vec![patient_zero];
    let mut generations = 0usize;
    while !frontier.is_empty() && generations < 3 {
        let mut next = Vec::new();
        for carrier in frontier.drain(..) {
            let t0 = exposed_at[&carrier];
            let h = tgi.one_hop_history(carrier, TimeRange::new(t0, end + 1));
            // A contact is exposed at the first time it is connected
            // to the carrier within the window.
            for contact in &h.neighbors {
                let first_contact: Option<Time> = {
                    let initially_connected = h
                        .center
                        .initial
                        .as_ref()
                        .is_some_and(|s| s.has_neighbor(contact.id));
                    if initially_connected {
                        Some(t0)
                    } else {
                        h.center
                            .events
                            .iter()
                            .find(|e| {
                                let (a, b) = e.kind.touched();
                                matches!(e.kind, hgs::delta::EventKind::AddEdge { .. })
                                    && (a == contact.id || b == Some(contact.id))
                            })
                            .map(|e| e.time)
                    }
                };
                if let Some(t) = first_contact {
                    exposed_at.entry(contact.id).or_insert_with(|| {
                        next.push(contact.id);
                        t
                    });
                }
            }
        }
        frontier = next;
        generations += 1;
        println!(
            "after generation {generations}: {} exposed",
            exposed_at.len()
        );
    }

    // Compare with the *static* view at the end of history: the
    // temporal trace catches transient contacts a static snapshot
    // misses, and correctly excludes contacts formed before infection.
    let static_view = tgi.khop(patient_zero, end, generations);
    let static_set: FxHashSet<NodeId> = static_view.ids().collect();
    let temporal_set: FxHashSet<NodeId> = exposed_at.keys().copied().collect();
    let only_temporal = temporal_set.difference(&static_set).count();
    let only_static = static_set.difference(&temporal_set).count();
    println!(
        "temporal tracing found {} exposures; static {}-hop snapshot would report {}",
        temporal_set.len(),
        generations,
        static_set.len()
    );
    println!(
        "  {} exposures visible only temporally (transient contacts); {} static neighbors never exposed",
        only_temporal, only_static
    );
}

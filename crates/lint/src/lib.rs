//! # hgs-lint — repo-invariant static analysis for the HGS workspace
//!
//! A dependency-free, self-contained lint pass that tokenizes every
//! `.rs` file in the workspace (comment/string-aware — no `syn`,
//! nothing vendored) and enforces the repo-specific invariants that
//! reviews kept re-catching by hand:
//!
//! * **sorted-dedup** — `.dedup()`/`.dedup_by*()` with no visible
//!   sort in the enclosing fn (PR 2 and PR 4 each fixed one of
//!   these).
//! * **no-panic-in-try** — `unwrap`/`expect`/`panic!`/`unreachable!`
//!   (and slice indexing) hiding inside the fallible `try_*` surface,
//!   plus the same panic family anywhere in `hgs-core`/`hgs-store`/
//!   `hgs-delta` non-test library code.
//! * **batched-store-discipline** — raw `store.get`/`scan_prefix`/
//!   `store.put` round trips outside `hgs-store` itself (PR 2/PR 5
//!   batched these paths deliberately).
//! * **no-swallowed-result** — `let _ =` on store/cache operations.
//! * **unused-allow** — an allow annotation whose rule no longer
//!   fires is itself an error, so annotations cannot rot.
//!
//! Every exception is annotated inline and auditable:
//!
//! ```text
//! // hgs-lint: allow(no-panic-in-try, "slot indices proven in-range by the planner")
//! ```
//!
//! A trailing annotation suppresses findings on its own line; a
//! standalone comment line suppresses the next code line. The rule
//! catalog with per-rule history and allow guidance lives in
//! `crates/lint/RULES.md`.

pub mod report;
pub mod rules;
pub mod scan;

pub use report::{render_json, render_text, WorkspaceReport};
pub use rules::{lint_source, Allow, FileCtx, FileKind, Finding, RULES};

use std::path::{Path, PathBuf};

/// Directories never descended into during workspace discovery.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Recursively collect every lintable `.rs` file under `root`,
/// classified by [`FileCtx::classify`] (which drops the vendored
/// shims and the lint's own violation fixtures).
pub fn discover_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(ctx) = FileCtx::classify(&rel) {
                out.push((path, ctx));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for (path, ctx) in discover_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let file_report = lint_source(&src, &ctx);
        report.files_scanned += 1;
        report.allows.extend(
            file_report
                .allows
                .into_iter()
                .map(|a| (ctx.rel_path.clone(), a)),
        );
        report.findings.extend(file_report.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

//! Comment- and string-aware tokenizer for the repo linter.
//!
//! This is deliberately *not* a Rust parser: `hgs-lint` must stay
//! dependency-free (no `syn`, nothing new to vendor), so the scanner
//! only knows enough of the lexical grammar to (a) never mistake the
//! inside of a string, char literal or comment for code, and (b) hand
//! the rule engine a flat token stream with accurate line numbers.
//! Line comments are kept separately so the allow-annotation parser
//! can read them.

/// One lexical token of the blanked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    pub kind: TokKind,
}

/// Token payload: identifiers/keywords/number literals keep their
/// text, everything else is a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Punct(char),
}

impl Token {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            TokKind::Punct(_) => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `//` comment, with the text after the slashes (trimmed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment body without the leading `//`, trimmed.
    pub text: String,
}

/// Scanner output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Scanned {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

impl Scanned {
    /// 1-based lines that carry at least one code token.
    pub fn code_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, blanking comments and literal contents.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Scanned::default();
    let mut line: u32 = 1;
    let mut i = 0usize;

    // Consume chars[i..j), counting newlines.
    macro_rules! advance_to {
        ($j:expr) => {{
            let j = $j;
            for &c in &chars[i..j] {
                if c == '\n' {
                    line += 1;
                }
            }
            i = j;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start_line = line;
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[i + 2..j].iter().collect();
                out.comments.push(LineComment {
                    line: start_line,
                    text: text.trim().to_string(),
                });
                advance_to!(j);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments, skipped entirely.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                advance_to!(j);
            }
            '"' => {
                advance_to!(skip_string(&chars, i));
            }
            '\'' => {
                // Char literal vs lifetime/label.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: find the closing quote.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    advance_to!(j.saturating_add(1).min(chars.len()));
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    advance_to!(i + 3); // 'a'
                } else {
                    i += 1; // lifetime: drop the quote, lex the ident normally
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // String-literal prefixes: r"", r#""#, b"", br"", b''.
                let next = chars.get(j).copied();
                let prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb");
                if prefix && (next == Some('"') || next == Some('#')) {
                    let raw = word.contains('r');
                    if let Some(end) = skip_prefixed_string(&chars, j, raw) {
                        advance_to!(end);
                        continue;
                    }
                    // `r#ident` raw identifier: fall through, emit as ident.
                }
                if word == "b" && next == Some('\'') {
                    // Byte char literal b'x' / b'\n'.
                    let mut k = j + 1;
                    if chars.get(k) == Some(&'\\') {
                        k += 1;
                    }
                    while k < chars.len() && chars[k] != '\'' {
                        k += 1;
                    }
                    advance_to!(k.saturating_add(1).min(chars.len()));
                    continue;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(word),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < chars.len() && (is_ident_continue(chars[j])) {
                    j += 1;
                }
                // Fractional part, but not the `..` of a range.
                if chars.get(j) == Some(&'.')
                    && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    j += 2;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                }
                let word: String = chars[i..j].iter().collect();
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(word),
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a plain `"..."` string starting at the opening quote; returns
/// the index just past the closing quote.
fn skip_string(chars: &[char], start: usize) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a prefixed string whose prefix identifier has just been lexed:
/// `j` points at `"` or the first `#`. Returns the index past the
/// closing delimiter, or `None` if this is not actually a string
/// (e.g. a raw identifier `r#foo`).
fn skip_prefixed_string(chars: &[char], j: usize, raw: bool) -> Option<usize> {
    if !raw {
        // b"..." — escapes apply.
        return Some(skip_string(chars, j));
    }
    let mut hashes = 0usize;
    let mut k = j;
    while chars.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    if chars.get(k) != Some(&'"') {
        return None; // raw identifier, not a string
    }
    k += 1;
    // Scan for `"` followed by `hashes` hash marks; no escapes.
    while k < chars.len() {
        if chars[k] == '"' {
            let mut h = 0usize;
            while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                h += 1;
            }
            if h == hashes {
                return Some(k + 1 + hashes);
            }
        }
        k += 1;
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r##"
            let x = "dedup inside a string"; // .dedup() in a comment
            /* block .dedup() comment */
            let y = r#"raw .dedup()"#;
            let z = b"bytes .dedup()";
            v.dedup();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "dedup").count(), 1);
        let s = scan(src);
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains(".dedup() in a comment"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(c: char) -> bool { c == 'x' || c == '\\n' }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string())); // lifetime ident survives
        assert!(!ids.contains(&"x".to_string())); // char literal blanked
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\n\nb\nc";
        let s = scan(src);
        let lines: Vec<u32> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 3, 4]);
    }

    #[test]
    fn multiline_string_counts_lines() {
        let src = "let s = \"one\ntwo\nthree\";\nafter";
        let s = scan(src);
        let after = s.tokens.iter().find(|t| t.ident() == Some("after"));
        assert_eq!(after.map(|t| t.line), Some(4));
    }
}

//! `hgs-lint` CLI: lint the workspace, exit non-zero on any finding.
//!
//! ```text
//! cargo run -p hgs-lint            # human-readable report
//! cargo run -p hgs-lint -- --json  # machine-readable, for CI
//! cargo run -p hgs-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("hgs-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: hgs-lint [--json] [--root <workspace>]");
                eprintln!("rules: {}", hgs_lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hgs-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match hgs_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("hgs-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match hgs_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hgs-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", hgs_lint::render_json(&report));
    } else {
        print!("{}", hgs_lint::render_text(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! The repo-invariant rules and the allow-annotation mechanism.
//!
//! Every rule here exists because a past PR shipped (or nearly
//! shipped) the bug it catches; `RULES.md` carries the catalog with
//! the history. The engine is token-based (see [`crate::scan`]), so
//! rules are heuristics with a deliberate bias: prefer a false
//! positive that costs one annotated `hgs-lint: allow(...)` over a
//! false negative that costs a review cycle.

use crate::scan::{scan, Scanned, TokKind, Token};

/// Every rule the engine can fire, in report order.
pub const RULES: &[&str] = &[
    "sorted-dedup",
    "no-panic-in-try",
    "batched-store-discipline",
    "no-swallowed-result",
    "lock-ordering",
    "no-guard-across-callback",
    "watermark-publish",
    "bounded-retry",
    "unused-allow",
    "malformed-allow",
];

/// Crates whose non-test library code is held to the
/// `no-panic-in-try` discipline even outside `try_*` fns.
const PANIC_STRICT_CRATES: &[&str] = &["delta", "store", "core"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// Where a file sits in the workspace, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of some crate: production library/binary code.
    Lib,
    /// `tests/`, `benches/` or `examples/`: panics and raw store
    /// traffic are legitimate there.
    TestLike,
}

/// Per-file context handed to the engine alongside the source text.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, used in findings.
    pub rel_path: String,
    /// The `crates/<dir>` component, e.g. `core`; `None` for the
    /// umbrella crate and top-level `tests/`/`examples/`.
    pub crate_dir: Option<String>,
    pub kind: FileKind,
}

impl FileCtx {
    /// Classify a workspace-relative path (`None` for non-Rust or
    /// out-of-scope files such as the vendored shims and the lint's
    /// own violation fixtures).
    pub fn classify(rel_path: &str) -> Option<FileCtx> {
        if !rel_path.ends_with(".rs") {
            return None;
        }
        let parts: Vec<&str> = rel_path.split('/').collect();
        if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
            return None;
        }
        if rel_path.starts_with("crates/lint/tests/fixtures/") {
            return None; // deliberate violations used by the lint's own tests
        }
        let (crate_dir, rest) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
            (Some(parts[1].to_string()), &parts[2..])
        } else {
            (None, &parts[..])
        };
        let kind = match rest.first().copied() {
            Some("src") => FileKind::Lib,
            Some("tests") | Some("benches") | Some("examples") => FileKind::TestLike,
            _ => return None,
        };
        Some(FileCtx {
            rel_path: rel_path.to_string(),
            crate_dir,
            kind,
        })
    }
}

/// A parsed `// hgs-lint: allow(<rule>, "<reason>")` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the annotation itself sits on.
    pub line: u32,
    /// Line of code the annotation suppresses findings on.
    pub target_line: u32,
    pub rule: String,
    pub reason: String,
    pub used: bool,
}

/// Full per-file lint result: surviving findings plus the allow table
/// (used and unused alike) for reporting.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
}

// ----------------------------------------------------------------------
// token contexts: which fn / test scope each token sits in
// ----------------------------------------------------------------------

#[derive(Debug)]
struct FnInfo {
    name: String,
    /// Token index of the body's opening `{`.
    body_start: usize,
}

#[derive(Debug, Clone, Copy)]
struct TokCtx {
    /// Innermost enclosing fn, as an index into the fns table.
    fn_id: Option<usize>,
    /// True under `#[test]`, `#[cfg(test)]` or a `mod tests`.
    in_test: bool,
}

#[derive(Debug, Clone, Copy)]
enum ScopeKind {
    Fn(usize),
    Other,
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    kind: ScopeKind,
    depth: u32,
    is_test: bool,
}

struct Contexts {
    per_token: Vec<TokCtx>,
    fns: Vec<FnInfo>,
}

/// Single forward pass assigning every token its enclosing fn and
/// test-ness. Heuristic item tracking: `#[test]` / `#[cfg(... test
/// ...)]` (but not `cfg(not(test))`) marks the next `fn`/`mod`;
/// `mod tests`/`mod test` counts as test scope on its own.
fn contexts(toks: &[Token]) -> Contexts {
    let mut per_token = Vec::with_capacity(toks.len());
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut depth: u32 = 0;
    let mut pending_test = false;
    // A fn/mod header seen, waiting for its `{` (or dropped at `;`).
    let mut pending_scope: Option<(ScopeKind, bool)> = None;
    let mut pending_fn_name: Option<String> = None;
    // Inside an attribute: (bracket depth, saw `test`, saw `not`).
    let mut attr: Option<(i32, bool, bool)> = None;

    for (i, tok) in toks.iter().enumerate() {
        per_token.push(TokCtx {
            fn_id: stack.iter().rev().find_map(|s| match s.kind {
                ScopeKind::Fn(id) => Some(id),
                ScopeKind::Other => None,
            }),
            in_test: stack.iter().any(|s| s.is_test),
        });

        if let Some((bdepth, has_test, has_not)) = attr.as_mut() {
            match &tok.kind {
                TokKind::Punct('[') => *bdepth += 1,
                TokKind::Punct(']') => {
                    *bdepth -= 1;
                    if *bdepth == 0 {
                        if *has_test && !*has_not {
                            pending_test = true;
                        }
                        attr = None;
                    }
                }
                TokKind::Ident(s) if s == "test" => *has_test = true,
                TokKind::Ident(s) if s == "not" => *has_not = true,
                _ => {}
            }
            continue;
        }

        match &tok.kind {
            TokKind::Punct('#')
                if toks.get(i + 1).is_some_and(|t| t.is_punct('['))
                    || (toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct('['))) =>
            {
                // `#[...]` / `#![...]`: scan its idents for `test`.
                attr = Some((0, false, false));
            }
            TokKind::Ident(kw) if kw == "fn" => {
                // Only a real item header (`fn name`), not an `fn(..)`
                // pointer type.
                if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                    pending_scope = Some((ScopeKind::Fn(usize::MAX), pending_test));
                    pending_fn_name = Some(name.to_string());
                    pending_test = false;
                }
            }
            TokKind::Ident(kw) if kw == "mod" => {
                let name = toks.get(i + 1).and_then(|t| t.ident()).unwrap_or("");
                let is_test = pending_test || name == "tests" || name == "test";
                pending_scope = Some((ScopeKind::Other, is_test));
                pending_test = false;
            }
            TokKind::Punct('{') => {
                depth += 1;
                let scope = match pending_scope.take() {
                    Some((ScopeKind::Fn(_), is_test)) => {
                        let id = fns.len();
                        fns.push(FnInfo {
                            name: pending_fn_name.take().unwrap_or_default(),
                            body_start: i,
                        });
                        Scope {
                            kind: ScopeKind::Fn(id),
                            depth,
                            is_test,
                        }
                    }
                    Some((ScopeKind::Other, is_test)) => Scope {
                        kind: ScopeKind::Other,
                        depth,
                        is_test,
                    },
                    None => Scope {
                        kind: ScopeKind::Other,
                        depth,
                        is_test: false,
                    },
                };
                stack.push(scope);
            }
            TokKind::Punct('}') => {
                if stack.last().is_some_and(|s| s.depth == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
                pending_test = false;
            }
            TokKind::Punct(';') => {
                // Bodyless item (trait fn, use, struct...): drop any
                // pending header and stale attribute marks.
                pending_scope = None;
                pending_fn_name = None;
                pending_test = false;
            }
            _ => {}
        }
    }
    Contexts { per_token, fns }
}

// ----------------------------------------------------------------------
// allow annotations
// ----------------------------------------------------------------------

/// Parse every `hgs-lint:` line comment; malformed ones become
/// findings immediately.
fn parse_allows(scanned: &Scanned, ctx: &FileCtx, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let code_lines = scanned.code_lines();
    let mut allows = Vec::new();
    for c in &scanned.comments {
        // Doc comments (`///` and `//!` leave a leading `/` or `!` in
        // the scanned text) are prose — only a plain `//` comment that
        // *starts* with `hgs-lint` is an annotation.
        if c.text.starts_with('/') || c.text.starts_with('!') || !c.text.starts_with("hgs-lint") {
            continue;
        }
        match parse_allow_text(&c.text) {
            Ok((rule, reason)) => {
                let target_line = if code_lines.contains(&c.line) {
                    c.line // trailing comment: suppress on its own line
                } else {
                    // Standalone: suppress on the next code line.
                    match code_lines.range(c.line + 1..).next() {
                        Some(&l) => l,
                        None => c.line,
                    }
                };
                allows.push(Allow {
                    line: c.line,
                    target_line,
                    rule,
                    reason,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding {
                rule: "malformed-allow",
                file: ctx.rel_path.clone(),
                line: c.line,
                message: format!("malformed hgs-lint annotation: {why}"),
            }),
        }
    }
    allows
}

/// Parse `hgs-lint: allow(<rule>, "<reason>")` out of a comment body.
fn parse_allow_text(text: &str) -> Result<(String, String), String> {
    let rest = text
        .split_once("hgs-lint")
        .map(|(_, r)| r)
        .unwrap_or(text)
        .trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or("expected `hgs-lint: allow(<rule>, \"<reason>\")`")?
        .trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(<rule>, \"<reason>\")` after `hgs-lint:`")?;
    let (rule, rest) = rest
        .split_once(',')
        .ok_or("expected a rule name followed by `, \"<reason>\"`")?;
    let rule = rule.trim();
    if !RULES.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` (known: {})",
            RULES.join(", ")
        ));
    }
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or("the justification must be a quoted string")?;
    let (reason, tail) = rest
        .split_once('"')
        .ok_or("unterminated justification string")?;
    if reason.trim().is_empty() {
        return Err("the justification must not be empty".to_string());
    }
    if !tail.trim_start().starts_with(')') {
        return Err("expected `)` closing the allow".to_string());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

// ----------------------------------------------------------------------
// the rules
// ----------------------------------------------------------------------

/// Keywords that can directly precede a `[` without forming an index
/// expression (slice patterns, array literals after `return`, ...).
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "as", "move", "box", "while",
    "for", "where", "impl", "dyn", "const", "static", "break", "continue", "yield", "await",
];

/// Store methods that cross the network to fetch rows; holding a lock
/// guard across one of these serializes every concurrent reader on
/// the guard for the duration of the round trip (`lock-ordering`).
const STORE_FETCH_METHODS: &[&str] = &["multi_get", "scan_prefix", "scan_prefix_batch"];

/// Worker-pool entry points whose closures run on other threads; a
/// parking_lot guard crossing one deadlocks the moment a worker
/// touches the same lock (`no-guard-across-callback`).
const CALLBACK_FNS: &[&str] = &["parallel_steal", "parallel_chunks"];

/// Store round trips whose re-issue inside a `loop`/`while` is a
/// hand-rolled retry loop (`bounded-retry`): without the store's
/// `RetryPolicy` (attempt budget, capped backoff, circuit breaker) a
/// persistent fault spins such a loop forever.
const RETRY_SENSITIVE_METHODS: &[&str] = &[
    "multi_get",
    "scan_prefix",
    "scan_prefix_batch",
    "put_batch",
    "try_put_batch",
];

/// Run every rule over one file.
pub fn lint_source(src: &str, ctx: &FileCtx) -> FileReport {
    let scanned = scan(src);
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows = parse_allows(&scanned, ctx, &mut findings);
    let cx = contexts(&scanned.tokens);
    let toks = &scanned.tokens;
    let guards = guard_regions(toks);

    let strict_panic_crate = ctx.kind == FileKind::Lib
        && ctx
            .crate_dir
            .as_deref()
            .is_some_and(|c| PANIC_STRICT_CRATES.contains(&c));
    let store_exempt = ctx.crate_dir.as_deref() == Some("store") && ctx.kind == FileKind::Lib;

    for i in 0..toks.len() {
        let t = &toks[i];
        let tcx = cx.per_token[i];
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let next = toks.get(i + 1);
        let in_try_fn = tcx
            .fn_id
            .is_some_and(|f| cx.fns[f].name.starts_with("try_"));

        // ---- sorted-dedup: applies everywhere, tests included -------
        if let Some(name) = t.ident() {
            if (name == "dedup" || name == "dedup_by" || name == "dedup_by_key")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
            {
                let proven = tcx.fn_id.is_some_and(|f| {
                    let start = cx.fns[f].body_start;
                    toks[start..i].windows(2).any(|w| {
                        w[0].is_punct('.') && w[1].ident().is_some_and(|s| s.starts_with("sort"))
                    })
                });
                if !proven {
                    findings.push(Finding {
                        rule: "sorted-dedup",
                        file: ctx.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "`.{name}()` removes only *adjacent* duplicates but no \
                             sort call precedes it in this fn; sort first or \
                             annotate the sortedness invariant"
                        ),
                    });
                }
            }
        }

        // ---- no-panic-in-try ----------------------------------------
        if !tcx.in_test && ctx.kind == FileKind::Lib {
            let panic_scope = in_try_fn || strict_panic_crate;
            if panic_scope {
                if let Some(name) = t.ident() {
                    let method_panic = (name == "unwrap" || name == "expect")
                        && prev.is_some_and(|p| p.is_punct('.'))
                        && next.is_some_and(|n| n.is_punct('('));
                    let macro_panic =
                        matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                            && next.is_some_and(|n| n.is_punct('!'));
                    if method_panic || macro_panic {
                        let what = if method_panic {
                            format!(".{name}()")
                        } else {
                            format!("{name}!")
                        };
                        let scope = if in_try_fn {
                            format!(
                                "inside fallible `{}`",
                                cx.fns[tcx.fn_id.unwrap_or_default()].name
                            )
                        } else {
                            "in panic-strict library code".to_string()
                        };
                        findings.push(Finding {
                            rule: "no-panic-in-try",
                            file: ctx.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "{what} {scope}; surface an error or annotate the \
                                 audited invariant"
                            ),
                        });
                    }
                }
            }
            // Slice indexing only inside the fallible surface itself.
            if in_try_fn && t.is_punct('[') {
                let is_index = prev.is_some_and(|p| match &p.kind {
                    TokKind::Ident(s) => !NON_RECEIVER_KEYWORDS.contains(&s.as_str()),
                    TokKind::Punct(c) => *c == ']' || *c == ')',
                });
                if is_index && !is_full_range_index(toks, i) {
                    findings.push(Finding {
                        rule: "no-panic-in-try",
                        file: ctx.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "slice/array indexing inside fallible `{}` can panic \
                             out-of-bounds; use `.get()` or annotate the audited \
                             bound",
                            cx.fns[tcx.fn_id.unwrap_or_default()].name
                        ),
                    });
                }
            }
        }

        // ---- batched-store-discipline -------------------------------
        if !tcx.in_test && ctx.kind == FileKind::Lib && !store_exempt {
            if let Some(name) = t.ident() {
                let is_call =
                    prev.is_some_and(|p| p.is_punct('.')) && next.is_some_and(|n| n.is_punct('('));
                let fires = if name == "scan_prefix" {
                    is_call
                } else if name == "get" || name == "put" {
                    is_call && i >= 2 && toks[i - 2].ident() == Some("store")
                } else {
                    false
                };
                if fires {
                    findings.push(Finding {
                        rule: "batched-store-discipline",
                        file: ctx.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "raw store round trip `.{name}(...)` outside hgs-store; \
                             hot paths must use `multi_get`/`scan_prefix_batch`/\
                             `WriteBuffer`, reference paths must be annotated"
                        ),
                    });
                }
            }
        }

        // ---- lock-ordering / no-guard-across-callback ---------------
        if !tcx.in_test && ctx.kind == FileKind::Lib {
            if let Some(name) = t.ident() {
                let is_call = next.is_some_and(|n| n.is_punct('('));
                let store_fetch = is_call
                    && prev.is_some_and(|p| p.is_punct('.'))
                    && (STORE_FETCH_METHODS.contains(&name)
                        || (matches!(name, "get" | "put" | "put_batch")
                            && i >= 2
                            && toks[i - 2].ident() == Some("store")));
                let callback = is_call && CALLBACK_FNS.contains(&name);
                if store_fetch || callback {
                    if let Some(g) = guards.iter().find(|g| g.start <= i && i < g.end) {
                        let (rule, message) = if store_fetch {
                            (
                                "lock-ordering",
                                format!(
                                    "store fetch `.{name}(...)` while the lock guard \
                                     `{}` (taken on line {}) is still live; release \
                                     the lock before the round trip, or annotate the \
                                     audited lock order",
                                    g.name, g.lock_line
                                ),
                            )
                        } else {
                            (
                                "no-guard-across-callback",
                                format!(
                                    "`{name}(...)` fans work out to other threads \
                                     while the lock guard `{}` (taken on line {}) is \
                                     still live; a worker touching the same lock \
                                     deadlocks — drop the guard first or annotate \
                                     why the closure cannot contend",
                                    g.name, g.lock_line
                                ),
                            )
                        };
                        findings.push(Finding {
                            rule,
                            file: ctx.rel_path.clone(),
                            line: t.line,
                            message,
                        });
                    }
                }
            }
        }

        // ---- watermark-publish --------------------------------------
        if !tcx.in_test
            && ctx.kind == FileKind::Lib
            && tcx.fn_id.is_some()
            && t.ident() == Some("store")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
            && i >= 2
            && toks[i - 2].ident() == Some("watermark")
        {
            // A watermark publish followed — in the same fn — by a row
            // write/flush means unflushed rows became reachable.
            let mut j = i + 1;
            while j < toks.len() && cx.per_token[j].fn_id == tcx.fn_id {
                if let Some(m) = toks[j].ident() {
                    let flushes = toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                        && j >= 1
                        && toks[j - 1].is_punct('.')
                        && (matches!(m, "flush" | "try_flush" | "put_batch" | "try_put_batch")
                            || (m == "put" && j >= 2 && toks[j - 2].ident() == Some("store")));
                    if flushes {
                        findings.push(Finding {
                            rule: "watermark-publish",
                            file: ctx.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "watermark stored before the span's rows are \
                                 durable: `.{m}(...)` on line {} runs after this \
                                 `watermark.store(...)`; publish strictly after \
                                 the flush, or annotate why the later write is \
                                 not covered by this watermark",
                                toks[j].line
                            ),
                        });
                        break;
                    }
                }
                j += 1;
            }
        }

        // ---- no-swallowed-result ------------------------------------
        if t.ident() == Some("let")
            && next.and_then(|n| n.ident()) == Some("_")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            if let Some(hit) = swallowed_store_op(toks, i + 3) {
                findings.push(Finding {
                    rule: "no-swallowed-result",
                    file: ctx.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`let _ =` discards the result of store/cache operation \
                         `{hit}`; handle or propagate it"
                    ),
                });
            }
        }
    }

    bounded_retry(toks, &cx, ctx, store_exempt, &mut findings);

    // Suppress findings that carry a matching allow on their line.
    findings.retain(|f| {
        if f.rule == "malformed-allow" {
            return true;
        }
        for a in allows.iter_mut() {
            if a.rule == f.rule && a.target_line == f.line {
                a.used = true;
                return false;
            }
        }
        true
    });

    // Unused allows are themselves violations: annotations must not rot.
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: "unused-allow",
                file: ctx.rel_path.clone(),
                line: a.line,
                message: format!(
                    "allow({}) no longer suppresses any finding on line {}; \
                     remove the stale annotation",
                    a.rule, a.target_line
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileReport { findings, allows }
}

/// The `bounded-retry` pass: a `loop`/`while` in non-test library
/// code (outside hgs-store, whose retry layer is the sanctioned
/// implementation) whose header or body re-issues a store round trip
/// is a hand-rolled retry/poll loop with no attempt budget. `for`
/// loops are exempt — they iterate a finite collection, they don't
/// re-issue on failure. Findings anchor at the store-op line so an
/// audited allow sits next to the operation it excuses.
fn bounded_retry(
    toks: &[Token],
    cx: &Contexts,
    ctx: &FileCtx,
    store_exempt: bool,
    findings: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Lib || store_exempt {
        return;
    }
    // Nested loops would report the same op once per level; dedupe.
    let mut reported: Vec<u32> = Vec::new();
    for i in 0..toks.len() {
        let kw = toks[i].ident();
        if !(kw == Some("loop") || kw == Some("while")) || cx.per_token[i].in_test {
            continue;
        }
        // The body's `{` is the first one outside the header's
        // parens/brackets (closure braces in a `while` condition sit
        // inside call parens and are skipped with them).
        let mut nest = 0i32;
        let mut body_start = None;
        let mut j = i + 1;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(' | '[') => nest += 1,
                TokKind::Punct(')' | ']') => nest -= 1,
                TokKind::Punct('{') if nest <= 0 => {
                    body_start = Some(j);
                    break;
                }
                TokKind::Punct(';') if nest <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_start) = body_start else {
            continue;
        };
        let mut depth = 0i32;
        let mut body_end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(body_start) {
            match &t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        // Header + body: a store op in the condition re-issues per
        // iteration just the same.
        for k in i..body_end {
            let Some(name) = toks[k].ident() else {
                continue;
            };
            let is_call = toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                && k >= 1
                && toks[k - 1].is_punct('.');
            if !is_call {
                continue;
            }
            let hit = RETRY_SENSITIVE_METHODS.contains(&name)
                || (matches!(name, "get" | "put")
                    && k >= 2
                    && toks[k - 2].ident() == Some("store"));
            if hit && !reported.contains(&toks[k].line) {
                reported.push(toks[k].line);
                findings.push(Finding {
                    rule: "bounded-retry",
                    file: ctx.rel_path.clone(),
                    line: toks[k].line,
                    message: format!(
                        "store operation `.{name}(...)` re-issued inside a \
                         `{}` on line {}; unbounded retry/poll loops spin \
                         forever on a persistent fault — route the operation \
                         through the store's RetryPolicy (attempt budget, \
                         capped backoff, breaker) or annotate the audited \
                         bound",
                        kw.unwrap_or("loop"),
                        toks[i].line
                    ),
                });
            }
        }
    }
}

/// A lexical region in which a lock guard bound by a `let` statement
/// is live: from the end of the binding statement to the close of the
/// enclosing block, or to an explicit `drop(<guard>)`.
#[derive(Debug)]
struct GuardRegion {
    /// The bound guard's name, for the finding message.
    name: String,
    /// Line of the `let` that took the lock.
    lock_line: u32,
    /// First token index at which the guard is live.
    start: usize,
    /// Token index ending the region (exclusive).
    end: usize,
}

/// Find every `let [mut] <name> = <expr>.lock();` (or `.read()` /
/// `.write()`) statement and compute the guard's live region. Only
/// tail-position lock calls bind a guard — `m.lock().take()` binds the
/// *taken value* and releases the temporary guard at the `;`.
fn guard_regions(toks: &[Token]) -> Vec<GuardRegion> {
    // Brace depth per token; a `}` carries the depth of the block it
    // closes, so the `}` ending the `let`'s block has depth <= the
    // `let`'s own depth.
    let mut depths = Vec::with_capacity(toks.len());
    let mut depth = 0u32;
    for t in toks {
        match &t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                depths.push(depth);
            }
            TokKind::Punct('}') => {
                depths.push(depth);
                depth = depth.saturating_sub(1);
            }
            _ => depths.push(depth),
        }
    }

    let mut regions = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(|t| t.ident()) else {
            continue;
        };
        // End of the statement: the first `;` outside any nesting.
        let mut nest = 0i32;
        let mut k = j + 1;
        let mut stmt_end = None;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct('(' | '[' | '{') => nest += 1,
                TokKind::Punct(')' | ']' | '}') => nest -= 1,
                TokKind::Punct(';') if nest <= 0 => {
                    stmt_end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(stmt_end) = stmt_end else { continue };
        let tail_is_lock = stmt_end >= 4
            && toks[stmt_end - 1].is_punct(')')
            && toks[stmt_end - 2].is_punct('(')
            && toks[stmt_end - 3]
                .ident()
                .is_some_and(|m| matches!(m, "lock" | "read" | "write"))
            && toks[stmt_end - 4].is_punct('.');
        if !tail_is_lock {
            continue;
        }
        // Live until the enclosing block closes or the guard is
        // explicitly dropped.
        let let_depth = depths[i];
        let mut end = toks.len();
        let mut m = stmt_end + 1;
        while m < toks.len() {
            let closes_block = toks[m].is_punct('}') && depths[m] <= let_depth;
            let drops_guard = toks[m].ident() == Some("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(m + 2).and_then(|t| t.ident()) == Some(name);
            if closes_block || drops_guard {
                end = m;
                break;
            }
            m += 1;
        }
        regions.push(GuardRegion {
            name: name.to_string(),
            lock_line: toks[i].line,
            start: stmt_end + 1,
            end,
        });
    }
    regions
}

/// True when `toks[open]` is a `[` whose contents are exactly `..`
/// (full-range slicing never panics).
fn is_full_range_index(toks: &[Token], open: usize) -> bool {
    toks.get(open + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(open + 2).is_some_and(|t| t.is_punct('.'))
        && toks.get(open + 3).is_some_and(|t| t.is_punct(']'))
}

/// Scan the right-hand side of a `let _ =` (from `start` to the
/// statement's `;`) for store/cache operations; returns the matched
/// name.
fn swallowed_store_op(toks: &[Token], start: usize) -> Option<String> {
    const RECEIVERS: &[&str] = &["store", "cache", "buffer"];
    const METHODS: &[&str] = &[
        "put",
        "put_batch",
        "try_put_batch",
        "multi_get",
        "scan_prefix",
        "scan_prefix_batch",
        "flush",
    ];
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Punct(';') if depth <= 0 => return None,
            TokKind::Ident(s) => {
                if RECEIVERS.contains(&s.as_str()) {
                    return Some(s.clone());
                }
                if METHODS.contains(&s.as_str()) && j > 0 && toks[j - 1].is_punct('.') {
                    return Some(format!(".{s}()"));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

//! Human and machine rendering of a workspace lint run.

use crate::rules::{Allow, Finding};

/// Aggregated result of linting every file in the workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    /// Every allow annotation seen, with the file it lives in.
    pub allows: Vec<(String, Allow)>,
}

impl WorkspaceReport {
    /// True when the workspace is clean (CI gates on this).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Allow annotations that suppressed at least one finding.
    pub fn allows_used(&self) -> usize {
        self.allows.iter().filter(|(_, a)| a.used).count()
    }
}

/// Plain-text report: one `file:line: [rule] message` per finding.
pub fn render_text(r: &WorkspaceReport) -> String {
    let mut out = String::new();
    for f in &r.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "hgs-lint: {} finding(s) across {} file(s), {} allow annotation(s) in effect\n",
        r.findings.len(),
        r.files_scanned,
        r.allows_used(),
    ));
    out
}

/// Machine-readable report for CI (`hgs-lint --json`).
pub fn render_json(r: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str(&format!("  \"findings_total\": {},\n", r.findings.len()));
    out.push_str("  \"findings\": [\n");
    for (i, f) in r.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            if i + 1 < r.findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"allows\": [\n");
    for (i, (file, a)) in r.allows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}{}\n",
            json_str(&a.rule),
            json_str(file),
            a.line,
            json_str(&a.reason),
            a.used,
            if i + 1 < r.allows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping (the only serialization this binary
/// needs; a JSON dependency would defeat "nothing new to vendor").
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn clean_report_renders() {
        let r = WorkspaceReport {
            files_scanned: 3,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(render_text(&r).contains("0 finding(s) across 3 file(s)"));
        assert!(render_json(&r).contains("\"findings_total\": 0"));
    }
}

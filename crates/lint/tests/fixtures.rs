//! Fixture-driven rule tests: each file under `tests/fixtures/` is a
//! known-violations specimen annotated with `FIRES:<rule>` markers on
//! the exact lines the engine must report (and `FIRES-STRICT:<rule>`
//! for findings that only apply under a panic-strict crate context).
//! A test fails on a missing finding, an extra finding, or a finding
//! on the wrong line.

use std::collections::BTreeSet;
use std::path::Path;

use hgs_lint::{lint_source, FileCtx};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn ctx(rel: &str) -> FileCtx {
    FileCtx::classify(rel).unwrap_or_else(|| panic!("{rel} must classify as lintable"))
}

/// Expected `(line, rule)` pairs from the fixture's inline markers.
fn expected(src: &str, strict: bool) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        // The two tags are disjoint as substrings (`FIRES:` never
        // occurs inside `FIRES-STRICT:`), so a plain find per tag is
        // unambiguous.
        for (tag, applies) in [("FIRES:", true), ("FIRES-STRICT:", strict)] {
            let mut rest = line;
            while let Some(pos) = rest.find(tag) {
                let after = &rest[pos + tag.len()..];
                let rule: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                    .collect();
                assert!(!rule.is_empty(), "bad marker on line {lineno}: {line}");
                if applies {
                    out.insert((lineno, rule));
                }
                rest = after;
            }
        }
    }
    out
}

fn check(name: &str, rel: &str, strict: bool) {
    let src = fixture(name);
    let report = lint_source(&src, &ctx(rel));
    let got: BTreeSet<(u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    let want = expected(&src, strict);
    assert_eq!(
        got, want,
        "{name} linted as {rel}: findings diverge from the FIRES markers\nreported: {:#?}",
        report.findings
    );
}

#[test]
fn sorted_dedup_fixture() {
    check("sorted_dedup.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn no_panic_fixture_in_strict_crate() {
    // `crates/core` is panic-strict: the panic family fires in all
    // non-test lib code, not just `try_*` fns.
    check("no_panic.rs", "crates/core/src/fixture.rs", true);
}

#[test]
fn no_panic_fixture_in_relaxed_crate() {
    // Elsewhere only the fallible `try_*` surface is held to it.
    check("no_panic.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn batched_store_fixture() {
    check("batched_store.rs", "crates/core/src/fixture.rs", true);
}

#[test]
fn batched_store_rule_is_off_inside_the_store_crate() {
    // The store crate implements the primitives the rule polices, so
    // raw calls there are fine — and the fixture's allow annotation,
    // now suppressing nothing, must itself be flagged as stale.
    let src = fixture("batched_store.rs");
    let report = lint_source(&src, &ctx("crates/store/src/fixture.rs"));
    let allow_line = src
        .lines()
        .position(|l| l.contains("hgs-lint: allow(batched-store-discipline"))
        .map(|i| (i + 1) as u32)
        .expect("fixture carries one batched-store allow");
    let got: Vec<(u32, &str)> = report.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(got, vec![(allow_line, "unused-allow")]);
}

#[test]
fn index_rows_fixture() {
    check("index_rows.rs", "crates/core/src/fixture.rs", true);
}

#[test]
fn swallowed_result_fixture() {
    check("swallowed_result.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn lock_ordering_fixture() {
    check("lock_ordering.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn guard_callback_fixture() {
    check("guard_callback.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn watermark_publish_fixture() {
    check("watermark_publish.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn bounded_retry_fixture() {
    check("bounded_retry.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn bounded_retry_rule_is_off_inside_the_store_crate() {
    // The store crate *implements* the RetryPolicy loops the rule
    // demands, so its own `loop`s over machine ops are the sanctioned
    // mechanism — but batched-store findings vanish there too, so the
    // fixture's now-useless allow must be flagged stale.
    let src = fixture("bounded_retry.rs");
    let report = lint_source(&src, &ctx("crates/store/src/fixture.rs"));
    assert!(
        report.findings.iter().all(|f| f.rule == "unused-allow"),
        "only the stale allow may surface inside hgs-store: {:#?}",
        report.findings
    );
}

#[test]
fn bounded_retry_rule_is_off_in_tests() {
    // Tests hammer the store in loops deliberately (chaos suites,
    // oracle replays); the discipline binds library code only.
    let src = fixture("bounded_retry.rs");
    let report = lint_source(&src, &ctx("crates/graph/tests/fixture.rs"));
    assert!(
        report.findings.iter().all(|f| f.rule != "bounded-retry"),
        "bounded-retry must not fire in test-like code: {:#?}",
        report.findings
    );
}

#[test]
fn concurrency_rules_are_off_in_tests() {
    // A test may hold a guard across a fetch deliberately (e.g. to
    // force contention); the discipline binds library code only.
    let src = fixture("lock_ordering.rs");
    let report = lint_source(&src, &ctx("crates/graph/tests/fixture.rs"));
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != "lock-ordering" && f.rule != "no-guard-across-callback"),
        "concurrency rules must not fire in test-like code: {:#?}",
        report.findings
    );
}

#[test]
fn allow_hygiene_fixture() {
    check("allows.rs", "crates/graph/src/fixture.rs", false);
}

#[test]
fn fixtures_are_excluded_from_workspace_discovery() {
    // The specimens deliberately violate every rule; discovery must
    // skip them or the self-check gate could never pass.
    assert!(FileCtx::classify("crates/lint/tests/fixtures/no_panic.rs").is_none());
    // ...while this driver itself stays in scope.
    assert!(FileCtx::classify("crates/lint/tests/fixtures.rs").is_some());
}

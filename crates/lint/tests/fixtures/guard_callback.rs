// Fixture for the `no-guard-across-callback` rule: a parking_lot
// guard must never cross a worker-pool closure boundary — the moment
// a worker touches the same lock, the fan-out deadlocks.

pub fn steal_under_guard(stats: &Mutex<Stats>, items: Vec<Item>) -> Vec<Out> {
    let mut s = stats.lock();
    let out = parallel_steal(items, 4, process_one); // FIRES:no-guard-across-callback
    s.record(out.len());
    out
}

pub fn chunks_under_read_guard(state: &RwLock<State>, ids: Vec<Id>) -> Vec<Row> {
    let snapshot = state.read();
    let rows = parallel_chunks(ids, 2, fetch_chunk); // FIRES:no-guard-across-callback
    snapshot.check(&rows);
    rows
}

pub fn guard_released_before_fanout(stats: &Mutex<Stats>, items: Vec<Item>) -> Vec<Out> {
    {
        let mut s = stats.lock();
        s.mark_start();
    }
    parallel_steal(items, 4, process_one) // clean: no guard is live here
}

pub fn guard_dropped_before_fanout(stats: &Mutex<Stats>, items: Vec<Item>) -> Vec<Out> {
    let s = stats.lock();
    let width = s.width();
    drop(s);
    parallel_steal(items, width, process_one) // clean: the guard was dropped first
}

pub fn allowed_fanout_under_guard(stats: &Mutex<Stats>, items: Vec<Item>) -> Vec<Out> {
    let s = stats.lock();
    // hgs-lint: allow(no-guard-across-callback, "closures only read their own item; audited not to touch `stats`")
    let out = parallel_steal(items, 4, process_one);
    s.record(out.len());
    out
}

// Fixture for the `bounded-retry` rule: a `loop`/`while` in library
// code that re-issues a store round trip is a hand-rolled retry/poll
// loop — without the store's RetryPolicy (attempt budget, capped
// backoff, breaker) it spins forever on a persistent fault.

pub fn poll_until_present(store: &Store, keys: &[Key]) -> Vec<Row> {
    loop {
        let rows = store.multi_get(Table::Deltas, keys); // FIRES:bounded-retry
        if !rows.is_empty() {
            return rows;
        }
    }
}

pub fn retry_flush_until_ok(store: &Store, rows: Vec<Row>) {
    while !shutting_down() {
        let out = store.try_put_batch(rows.clone()); // FIRES:bounded-retry
        if out.is_ok() {
            break;
        }
    }
}

pub fn raw_get_in_loop_fires_both_rules(store: &Store, key: &Key) -> Option<Row> {
    loop {
        let row = store.get(Table::Deltas, key, 0); // FIRES:bounded-retry FIRES:batched-store-discipline
        if row.is_some() {
            return row;
        }
    }
}

pub fn single_issue_is_clean(store: &Store, keys: &[Key]) -> Vec<Row> {
    store.multi_get(Table::Deltas, keys) // clean: nothing re-issues it
}

pub fn finite_iteration_is_clean(store: &Store, batches: &[Vec<Key>]) -> Vec<Row> {
    let mut out = Vec::new();
    for b in batches {
        // clean: a `for` loop iterates a finite collection, it does
        // not re-issue the same operation on failure.
        out.extend(store.multi_get(Table::Deltas, b));
    }
    out
}

pub fn loop_without_store_traffic_is_clean(counter: &AtomicU64) {
    loop {
        if counter.fetch_add(1, Ordering::Relaxed) > 10 {
            break;
        }
    }
}

pub fn allowed_bounded_probe(store: &Store, keys: &[Key], budget: u32) -> Vec<Row> {
    let mut attempts = 0;
    loop {
        // hgs-lint: allow(bounded-retry, "bounded by the explicit attempts budget checked below")
        let rows = store.scan_prefix_batch(Table::Deltas, keys);
        if !rows.is_empty() || attempts >= budget {
            return rows;
        }
        attempts += 1;
    }
}

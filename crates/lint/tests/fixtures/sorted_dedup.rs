// Fixture for the `sorted-dedup` rule. Never compiled — the driver in
// tests/fixtures.rs lints this text and asserts that exactly the
// marker-carrying lines (and nothing else) are reported.

pub fn unproven(mut v: Vec<u64>) -> Vec<u64> {
    v.dedup(); // FIRES:sorted-dedup
    v
}

pub fn unproven_by_key(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.dedup_by_key(|p| p.0); // FIRES:sorted-dedup
    v
}

pub fn sorted_first(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup(); // clean: a sort call precedes it in this fn
    v
}

pub fn allowed(mut v: Vec<u64>) -> Vec<u64> {
    // hgs-lint: allow(sorted-dedup, "rows arrive in key order from the prefix scan")
    v.dedup();
    v
}

pub fn allowed_trailing(mut v: Vec<u64>) -> Vec<u64> {
    v.dedup(); // hgs-lint: allow(sorted-dedup, "rows arrive in key order from the prefix scan")
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn dedup_in_tests_is_still_checked() {
        let mut v = vec![2u64, 1, 2];
        v.dedup(); // FIRES:sorted-dedup
        assert_eq!(v.len(), 3);
    }
}

// Fixture for the `lock-ordering` rule: a cache-stripe lock guard
// must never be held across a store fetch — the round trip would
// serialize every reader hashing to that stripe.

pub fn fetch_under_guard(shards: &[Mutex<Inner>], store: &Store) -> Vec<Option<Bytes>> {
    let mut inner = shards[0].lock();
    let rows = store.multi_get(Table::Deltas, KEYS, 0); // FIRES:lock-ordering
    inner.note(rows.len());
    rows
}

pub fn point_fetch_under_guard(shards: &[Mutex<Inner>], store: &Store) {
    let inner = shards[0].lock();
    let row = store.get(Table::Deltas, b"k", 0); // FIRES:lock-ordering FIRES:batched-store-discipline
    inner.observe(row);
}

pub fn scan_under_read_guard(state: &RwLock<State>, store: &Store) -> Vec<Row> {
    let snapshot = state.read();
    let rows = store.scan_prefix_batch(Table::Deltas, snapshot.prefixes(), 0); // FIRES:lock-ordering
    rows
}

pub fn fetch_after_release(shards: &[Mutex<Inner>], store: &Store) -> Vec<Option<Bytes>> {
    let hit = {
        let inner = shards[0].lock();
        inner.probe()
    };
    if hit.is_none() {
        return store.multi_get(Table::Deltas, KEYS, 0); // clean: the guard's block closed
    }
    Vec::new()
}

pub fn fetch_after_drop(shards: &[Mutex<Inner>], store: &Store) -> Vec<Option<Bytes>> {
    let inner = shards[0].lock();
    drop(inner);
    store.multi_get(Table::Deltas, KEYS, 0) // clean: the guard was dropped first
}

pub fn temporary_guard_then_fetch(counter: &Mutex<u64>, store: &Store) -> Vec<Option<Bytes>> {
    let count = counter.lock().wrapping_add(1);
    store.multi_get(Table::Deltas, &keys_for(count), 0) // clean: the temporary guard died at the `;`
}

pub fn allowed_startup_fetch(shards: &[Mutex<Inner>], store: &Store) {
    let inner = shards[0].lock();
    // hgs-lint: allow(lock-ordering, "single-threaded bootstrap; no reader can contend for this stripe yet")
    let rows = store.multi_get(Table::Deltas, KEYS, 0);
    inner.observe(rows);
}

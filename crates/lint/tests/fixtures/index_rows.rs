// Fixture for the secondary-index row paths, linted as
// `crates/core/src/...` (panic-strict, batched-store-discipline on).
// Point fetches of `(term, tsid)` rows must ride the batched
// primitives, a per-term prefix scan needs an explicit justification,
// and the fallible `try_*` surface must never panic on a bad row.

pub fn term_point_read(store: &Store, key: &[u8]) -> Option<Bytes> {
    store.get(Table::AttrIndex, key, 0) // FIRES:batched-store-discipline
}

pub fn term_point_read_batched(store: &Store, keys: &[&[u8]]) -> Vec<Option<Bytes>> {
    store.multi_get(Table::AttrIndex, keys, 0) // clean: the batched primitive
}

pub fn term_row_write(store: &Store, key: &[u8], row: Bytes) -> usize {
    store.put(Table::AttrIndex, key, 0, row) // FIRES:batched-store-discipline
}

pub fn term_history_scan(store: &Store, prefix: &[u8]) -> Vec<Row> {
    store.scan_prefix(Table::AttrIndex, prefix, 0) // FIRES:batched-store-discipline
}

pub fn justified_term_history_scan(store: &Store, prefix: &[u8]) -> Vec<Row> {
    // hgs-lint: allow(batched-store-discipline, "one prefix scan per term is the index's native access")
    store.scan_prefix(Table::AttrIndex, prefix, 0)
}

pub fn try_decode_term_row(bytes: &[u8]) -> Result<Vec<TermPoint>, StoreError> {
    let points = decode_term_points(bytes).unwrap(); // FIRES:no-panic-in-try
    Ok(points)
}

pub fn decode_term_row_settled(bytes: &[u8]) -> Vec<TermPoint> {
    decode_term_points(bytes).expect("stored row decodes") // FIRES-STRICT:no-panic-in-try
}

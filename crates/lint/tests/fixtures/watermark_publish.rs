// Fixture for the `watermark-publish` rule: the watermark epoch may
// be stored only after the span's rows are durable — a publish
// followed by a flush makes unflushed rows reachable to readers.

pub fn publish_before_flush(watermark: &AtomicU64, buffer: &mut WriteBuffer, epoch: u64) {
    watermark.store(epoch, Ordering::Release); // FIRES:watermark-publish
    buffer.flush();
}

pub fn publish_before_batch_write(
    watermark: &AtomicU64,
    store: &Store,
    epoch: u64,
    rows: Vec<Row>,
) {
    watermark.store(epoch, Ordering::Release); // FIRES:watermark-publish
    let written = store.put_batch(Table::Deltas, rows);
    record(written);
}

pub fn flush_then_publish(watermark: &AtomicU64, buffer: &mut WriteBuffer, epoch: u64) -> usize {
    let written = buffer.flush();
    watermark.store(epoch, Ordering::Release); // clean: rows were durable first
    written
}

pub fn publish_without_writes(watermark: &AtomicU64, epoch: u64) {
    watermark.store(epoch, Ordering::Release); // clean: nothing left to flush
}

pub fn unrelated_atomic_store(counter: &AtomicU64, buffer: &mut WriteBuffer, n: u64) -> usize {
    counter.store(n, Ordering::Relaxed); // clean: only a receiver named `watermark` fires
    buffer.flush()
}

pub fn allowed_republish(watermark: &AtomicU64, buffer: &mut WriteBuffer, epoch: u64) {
    // hgs-lint: allow(watermark-publish, "re-publishes an already-durable epoch; the flush below opens the next batch")
    watermark.store(epoch, Ordering::Release);
    let _written = buffer.flush();
}

// Fixture for the `batched-store-discipline` rule. Linted as
// `crates/core/src/...` — inside `crates/store/src` the rule is off
// (the store implements the primitives it wraps).

pub fn point_read(store: &Store, key: &[u8]) -> Option<Bytes> {
    store.get(Table::Deltas, key, 0) // FIRES:batched-store-discipline
}

pub fn raw_scan(store: &Store, prefix: &[u8]) -> Vec<Row> {
    store.scan_prefix(Table::Deltas, prefix, 0) // FIRES:batched-store-discipline
}

pub fn raw_write(store: &Store, key: &[u8], value: Bytes) -> usize {
    store.put(Table::Deltas, key, 0, value) // FIRES:batched-store-discipline
}

pub fn batched_read(store: &Store, keys: &[&[u8]]) -> Vec<Option<Bytes>> {
    store.multi_get(Table::Deltas, keys, 0) // clean: the batched primitive
}

pub fn batched_scan(store: &Store, prefixes: &[&[u8]]) -> Vec<Vec<Row>> {
    store.scan_prefix_batch(Table::Deltas, prefixes, 0) // clean
}

pub fn unrelated_get(map: &Map, key: &Key) -> Option<&Value> {
    map.get(key) // clean: only a receiver literally named `store` fires
}

pub fn allowed_reference_path(store: &Store, key: &[u8]) -> Option<Bytes> {
    // hgs-lint: allow(batched-store-discipline, "one-shot bootstrap read, not a query path")
    store.get(Table::Graph, key, 0)
}

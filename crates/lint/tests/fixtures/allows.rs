// Fixture for the annotation-hygiene rules: `unused-allow` (a
// suppression that no longer suppresses anything) and
// `malformed-allow` (an annotation the parser rejects). Both report on
// the annotation's own line, so the markers sit inline.

pub fn stale_allow() -> u64 {
    // hgs-lint: allow(sorted-dedup, "this fn used to dedup a scan result") FIRES:unused-allow
    42
}

// hgs-lint: allow(not-a-rule, "unknown rule name") FIRES:malformed-allow
pub fn unknown_rule() -> u64 {
    43
}

// hgs-lint: allow(sorted-dedup) FIRES:malformed-allow
pub fn missing_reason() -> u64 {
    44
}

// hgs-lint: allow(sorted-dedup, "") FIRES:malformed-allow
pub fn empty_reason() -> u64 {
    45
}

pub fn used_allow(mut v: Vec<u64>) -> Vec<u64> {
    // hgs-lint: allow(sorted-dedup, "input is a sorted id list")
    v.dedup();
    v
}

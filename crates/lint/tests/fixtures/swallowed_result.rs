// Fixture for the `no-swallowed-result` rule.

pub fn discarded_write(store: &Store, rows: Vec<Row>) {
    let _ = store.put_batch(Table::Deltas, rows); // FIRES:no-swallowed-result
}

pub fn discarded_flush(buffer: &mut WriteBuffer) {
    let _ = buffer.flush(); // FIRES:no-swallowed-result
}

pub fn bound_and_checked(store: &Store, rows: Vec<Row>) -> usize {
    let written = store.put_batch(Table::Deltas, rows);
    written // clean: the result is used
}

pub fn unrelated_discard(x: u64) {
    let _ = x.checked_add(1); // clean: not a store/cache/buffer op
}

pub fn allowed_discard(store: &Store, rows: Vec<Row>) {
    // hgs-lint: allow(no-swallowed-result, "warm-up write; the bench only times the reads")
    let _ = store.put_batch(Table::Deltas, rows);
}

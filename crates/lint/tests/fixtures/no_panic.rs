// Fixture for the `no-panic-in-try` rule. Linted twice by the driver:
// once as `crates/core/src/...` (panic-strict crate: the panic family
// fires everywhere in non-test lib code) and once as
// `crates/graph/src/...` (fires only inside `try_*` fns). Plain
// markers fire in both contexts; the STRICT variant only under the
// panic-strict context.

pub fn try_unwrap_in_fallible(v: &[u64]) -> Result<u64, ()> {
    let first = v.first().unwrap(); // FIRES:no-panic-in-try
    Ok(*first)
}

pub fn try_index_in_fallible(v: &[u64]) -> Result<u64, ()> {
    Ok(v[0]) // FIRES:no-panic-in-try
}

pub fn try_full_range_is_fine(v: &[u64]) -> Result<usize, ()> {
    Ok(v[..].len()) // clean: full-range slicing never panics
}

pub fn try_macro_panic() -> Result<(), ()> {
    unreachable!() // FIRES:no-panic-in-try
}

pub fn plain_expect(v: &[u64]) -> u64 {
    *v.first().expect("non-empty") // FIRES-STRICT:no-panic-in-try
}

pub fn plain_index(v: &[u64]) -> u64 {
    v[0] // clean: indexing is only checked inside try_* fns
}

pub fn try_allowed(v: &[u64]) -> Result<u64, ()> {
    // hgs-lint: allow(no-panic-in-try, "caller validated the slice is non-empty")
    Ok(v[0])
}

#[cfg(test)]
mod tests {
    #[test]
    fn try_panics_in_tests_are_fine() {
        fn try_helper(v: &[u64]) -> Result<u64, ()> {
            Ok(*v.first().unwrap()) // clean: test code is exempt
        }
        assert_eq!(try_helper(&[7]), Ok(7));
    }
}

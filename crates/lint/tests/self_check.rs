//! The lint's own acceptance gate: the real workspace must lint clean,
//! and every allow annotation in effect must be live (suppressing a
//! finding) and justified. `cargo test -p hgs-lint` therefore fails the
//! moment a change introduces a violation, even before CI runs the
//! binary.

use std::path::Path;

use hgs_lint::{find_workspace_root, lint_workspace, render_text};

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "discovery looks broken: only {} files found",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace must stay lint-clean; run `cargo run -p hgs-lint`\n{}",
        render_text(&report)
    );
    for (file, a) in &report.allows {
        assert!(
            !a.reason.trim().is_empty(),
            "{file}:{}: allow without a justification",
            a.line
        );
    }
    assert_eq!(
        report.allows_used(),
        report.allows.len(),
        "stale allows present (is_clean should have caught this as unused-allow)"
    );
}

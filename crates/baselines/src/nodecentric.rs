//! The vertex-centric approach: one eventlist per node.
//!
//! "A natural approach would be to maintain a set of partitioned
//! eventlist deltas, one for each node (with edge information
//! replicated with the endpoints)" (§4.2). Node-version queries are a
//! single direct fetch; snapshots must touch *every* node's list
//! (Table 1, row 4: `|S|` deltas).

use std::sync::Arc;

use hgs_delta::codec::{decode_eventlist, encode_eventlist};
use hgs_delta::{Delta, Event, Eventlist, NodeId, StaticNode, Time, TimeRange};
use hgs_store::key::{node_key, node_placement_token};
use hgs_store::{SimStore, StoreConfig, Table};

use crate::traits::HistoricalIndex;

/// Per-node eventlist index.
pub struct NodeCentricIndex {
    store: Arc<SimStore>,
    /// Every node that ever existed, sorted (the snapshot access
    /// path must enumerate them).
    nodes: Vec<NodeId>,
}

impl NodeCentricIndex {
    /// Build: partition the trace by touched node (edge events are
    /// replicated to both endpoints' lists).
    pub fn build(store_cfg: StoreConfig, events: &[Event]) -> NodeCentricIndex {
        let store = Arc::new(SimStore::new(store_cfg));
        // Normalize so neighbor state changes implied by RemoveNode
        // reach the neighbors' per-node logs (see hgs_delta::normalize).
        let events = hgs_delta::normalize_events(events);
        let mut per_node: hgs_delta::FxHashMap<NodeId, Vec<Event>> =
            hgs_delta::FxHashMap::default();
        for e in &events {
            let (a, b) = e.kind.touched();
            per_node.entry(a).or_default().push(e.clone());
            if let Some(b) = b {
                if b != a {
                    per_node.entry(b).or_default().push(e.clone());
                }
            }
        }
        let mut nodes: Vec<NodeId> = per_node.keys().copied().collect();
        nodes.sort_unstable();
        for (nid, evs) in per_node {
            let el = Eventlist::from_sorted(evs);
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time node-centric baseline is the paper's comparison target, not a batched hot path")
            store.put(
                Table::Versions,
                &node_key(nid),
                node_placement_token(nid),
                encode_eventlist(&el),
            );
        }
        NodeCentricIndex { store, nodes }
    }

    fn node_events(&self, nid: NodeId) -> Option<Eventlist> {
        match self
            .store
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time node-centric baseline is the paper's comparison target, not a batched hot path")
            .get(Table::Versions, &node_key(nid), node_placement_token(nid))
        {
            Ok(Some(bytes)) => Some(decode_eventlist(&bytes).expect("stored eventlist decodes")),
            _ => None,
        }
    }

    fn node_state(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        let el = self.node_events(nid)?;
        let mut scratch = Delta::new();
        for e in el.events().iter().take_while(|e| e.time <= t) {
            crate::scoped_apply(&mut scratch, &e.kind, nid);
        }
        scratch.remove(nid)
    }

    /// All node-ids ever seen.
    pub fn universe(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl HistoricalIndex for NodeCentricIndex {
    fn name(&self) -> &'static str {
        "node-centric"
    }

    fn store(&self) -> &Arc<SimStore> {
        &self.store
    }

    fn snapshot(&self, t: Time) -> Delta {
        // The pathological case: one fetch per node in the universe.
        let mut out = Delta::new();
        for &nid in &self.nodes {
            if let Some(n) = self.node_state(nid, t) {
                out.insert(n);
            }
        }
        out
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        self.node_state(nid, t)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        // One direct fetch serves both parts — the vertex-centric
        // index's sweet spot.
        let Some(el) = self.node_events(nid) else {
            return (None, Vec::new());
        };
        let mut scratch = Delta::new();
        let mut events = Vec::new();
        for e in el.events() {
            if e.time <= range.start {
                crate::scoped_apply(&mut scratch, &e.kind, nid);
            } else if e.time < range.end {
                events.push(e.clone());
            }
        }
        (scratch.remove(nid), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::node_events_in;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn node_centric_matches_replay() {
        let events = WikiGrowth::sized(800).generate();
        let idx = NodeCentricIndex::build(StoreConfig::new(2, 1), &events);
        let end = events.last().unwrap().time;
        for t in [end / 2, end] {
            assert_eq!(
                idx.snapshot(t),
                Delta::snapshot_by_replay(&events, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn node_versions_is_single_fetch() {
        let events = WikiGrowth::sized(800).generate();
        let idx = NodeCentricIndex::build(StoreConfig::new(2, 1), &events);
        let end = events.last().unwrap().time;
        let before = idx.store().stats_snapshot();
        let (initial, evs) = idx.node_versions(0, TimeRange::new(end / 4, end));
        let diff = SimStore::stats_since(&idx.store().stats_snapshot(), &before);
        let gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(gets, 1, "vertex-centric = direct version access");
        assert_eq!(
            initial.as_ref(),
            Delta::snapshot_by_replay(&events, end / 4).node(0)
        );
        assert_eq!(
            evs,
            node_events_in(&events, 0, TimeRange::new(end / 4, end))
        );
    }

    #[test]
    fn snapshot_touches_every_node() {
        let events = WikiGrowth::sized(500).generate();
        let idx = NodeCentricIndex::build(StoreConfig::new(2, 1), &events);
        let before = idx.store().stats_snapshot();
        let _ = idx.snapshot(events.last().unwrap().time);
        let diff = SimStore::stats_since(&idx.store().stats_snapshot(), &before);
        let gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(gets as usize, idx.universe().len());
    }

    #[test]
    fn edge_replication_doubles_storage_vs_log() {
        use crate::LogIndex;
        let events = WikiGrowth::sized(600).generate();
        let log = LogIndex::build(StoreConfig::new(1, 1), &events, 100);
        let nc = NodeCentricIndex::build(StoreConfig::new(1, 1), &events);
        let ratio = nc.storage_bytes() as f64 / log.storage_bytes() as f64;
        assert!(
            ratio > 1.4 && ratio < 3.0,
            "~2x from replication, got {ratio}"
        );
    }
}

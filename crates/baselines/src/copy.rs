//! The Copy approach: "storing new copies of a snapshot upon every
//! point of change".
//!
//! A full materialized snapshot per distinct event timestamp: any
//! point query is a single direct fetch, but storage is
//! `O(|G| · |S|)` — the quadratic blow-up of Table 1's first column.
//! Only feasible for short histories, which is exactly the paper's
//! point.

use std::sync::Arc;

use hgs_delta::codec::{decode_delta, encode_delta};
use hgs_delta::{Delta, Event, NodeId, StaticNode, Time, TimeRange};
use hgs_store::{SimStore, StoreConfig, Table};

use crate::traits::{node_events_in, HistoricalIndex};

/// Snapshot-per-change-point index.
pub struct CopyIndex {
    store: Arc<SimStore>,
    /// Distinct change timestamps, ascending.
    times: Vec<Time>,
    /// Retained events for version queries (the Copy approach can
    /// reconstruct them as state diffs; we keep the trace to avoid
    /// charging Copy for diffing work Table 1 does not charge it for).
    events: Vec<Event>,
}

impl CopyIndex {
    fn key(t: Time) -> [u8; 8] {
        t.to_be_bytes()
    }

    fn token(t: Time) -> u64 {
        hgs_delta::hash::hash_u64(t)
    }

    /// Materialize a snapshot at every distinct event timestamp.
    pub fn build(store_cfg: StoreConfig, events: &[Event]) -> CopyIndex {
        let store = Arc::new(SimStore::new(store_cfg));
        let mut state = Delta::new();
        let mut times = Vec::new();
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].time;
            while i < events.len() && events[i].time == t {
                state.apply_event(&events[i].kind);
                i += 1;
            }
            times.push(t);
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy baseline is the paper's comparison target, not a batched hot path")
            // hgs-lint: allow(bounded-retry, "the while walks a finite event stream, the cursor advances every iteration; each put writes a new key, nothing is re-issued")
            store.put(
                Table::Deltas,
                &Self::key(t),
                Self::token(t),
                encode_delta(&state),
            );
        }
        CopyIndex {
            store,
            times,
            events: events.to_vec(),
        }
    }

    /// Latest change point at or before `t`.
    fn change_point(&self, t: Time) -> Option<Time> {
        let i = self.times.partition_point(|&c| c <= t);
        (i > 0).then(|| self.times[i - 1])
    }
}

impl HistoricalIndex for CopyIndex {
    fn name(&self) -> &'static str {
        "copy"
    }

    fn store(&self) -> &Arc<SimStore> {
        &self.store
    }

    fn snapshot(&self, t: Time) -> Delta {
        match self.change_point(t) {
            Some(c) => {
                let bytes = self
                    .store
                    // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy baseline is the paper's comparison target, not a batched hot path")
                    .get(Table::Deltas, &Self::key(c), Self::token(c))
                    .expect("store up")
                    .expect("snapshot exists");
                decode_delta(&bytes).expect("stored snapshot decodes")
            }
            None => Delta::new(),
        }
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        // Direct access, but the whole snapshot row is read — that is
        // the Copy approach's cost profile.
        self.snapshot(t).remove(nid)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        (
            self.node_at(nid, range.start),
            node_events_in(&self.events, nid, range),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn copy_matches_replay() {
        let events = WikiGrowth::sized(400).generate();
        let idx = CopyIndex::build(StoreConfig::new(2, 1), &events);
        let end = events.last().unwrap().time;
        for t in [0, end / 3, end] {
            assert_eq!(
                idx.snapshot(t),
                Delta::snapshot_by_replay(&events, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn point_queries_are_single_fetch() {
        let events = WikiGrowth::sized(400).generate();
        let idx = CopyIndex::build(StoreConfig::new(2, 1), &events);
        let before = idx.store().stats_snapshot();
        let _ = idx.snapshot(events.last().unwrap().time / 2);
        let diff = SimStore::stats_since(&idx.store().stats_snapshot(), &before);
        let gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(gets, 1, "Copy = direct access");
    }

    #[test]
    fn storage_is_superlinear() {
        let e1 = WikiGrowth::sized(200).generate();
        let e2 = WikiGrowth::sized(400).generate();
        let i1 = CopyIndex::build(StoreConfig::new(1, 1), &e1);
        let i2 = CopyIndex::build(StoreConfig::new(1, 1), &e2);
        let ratio = i2.storage_bytes() as f64 / i1.storage_bytes() as f64;
        assert!(
            ratio > 3.0,
            "copy must blow up superlinearly, ratio {ratio}"
        );
    }

    #[test]
    fn before_first_event_is_empty() {
        let mut events = WikiGrowth::sized(100).generate();
        // Shift history so it starts at t=50.
        for e in &mut events {
            e.time += 50;
        }
        let idx = CopyIndex::build(StoreConfig::new(1, 1), &events);
        assert!(idx.snapshot(10).is_empty());
    }
}

//! The Copy+Log hybrid: periodic snapshots plus connecting eventlists.
//!
//! A snapshot delta every `k` events, and eventlist deltas capturing
//! the changes between successive snapshots: any point query costs one
//! snapshot fetch plus one eventlist replay (Table 1, row 3).

use std::sync::Arc;

use hgs_delta::codec::{decode_delta, decode_eventlist, encode_delta, encode_eventlist};
use hgs_delta::{Delta, Event, Eventlist, NodeId, StaticNode, Time, TimeRange};
use hgs_store::{SimStore, StoreConfig, Table};

use crate::traits::{node_events_in, HistoricalIndex};

/// Periodic-snapshot index.
pub struct CopyLogIndex {
    store: Arc<SimStore>,
    /// Checkpoint times: snapshot i is the state *before* eventlist i.
    checkpoints: Vec<Time>,
}

const SNAP_TAG: u8 = 0;
const ELIST_TAG: u8 = 1;

impl CopyLogIndex {
    fn key(tag: u8, i: usize) -> [u8; 9] {
        let mut k = [0u8; 9];
        k[0] = tag;
        k[1..9].copy_from_slice(&(i as u64).to_be_bytes());
        k
    }

    fn token(i: usize) -> u64 {
        hgs_delta::hash::hash_u64(i as u64)
    }

    /// Build with a snapshot every `k` events (timestamp groups are
    /// never split).
    pub fn build(store_cfg: StoreConfig, events: &[Event], k: usize) -> CopyLogIndex {
        assert!(k > 0);
        let store = Arc::new(SimStore::new(store_cfg));
        let mut state = Delta::new();
        let mut checkpoints = Vec::new();
        let mut start = 0usize;
        let mut i = 0usize;
        while start < events.len() {
            // Chunk [start, end) snapped to timestamp boundaries.
            let want = (start + k).min(events.len());
            let end = if want >= events.len() {
                events.len()
            } else {
                let t = events[want].time;
                let mut e = want;
                if events[want - 1].time == t {
                    while e < events.len() && events[e].time == t {
                        e += 1;
                    }
                }
                e
            };
            checkpoints.push(if start == 0 { 0 } else { events[start].time });
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy+Log baseline is the paper's comparison target, not a batched hot path")
            // hgs-lint: allow(bounded-retry, "the while walks a finite event stream, the cursor advances every iteration; each put writes a new key, nothing is re-issued")
            store.put(
                Table::Deltas,
                &Self::key(SNAP_TAG, i),
                Self::token(i),
                encode_delta(&state),
            );
            let el = Eventlist::from_sorted(events[start..end].to_vec());
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy+Log baseline is the paper's comparison target, not a batched hot path")
            // hgs-lint: allow(bounded-retry, "the while walks a finite event stream, the cursor advances every iteration; each put writes a new key, nothing is re-issued")
            store.put(
                Table::Deltas,
                &Self::key(ELIST_TAG, i),
                Self::token(i),
                encode_eventlist(&el),
            );
            for e in &events[start..end] {
                state.apply_event(&e.kind);
            }
            start = end;
            i += 1;
        }
        if checkpoints.is_empty() {
            checkpoints.push(0);
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy+Log baseline is the paper's comparison target, not a batched hot path")
            store.put(
                Table::Deltas,
                &Self::key(SNAP_TAG, 0),
                Self::token(0),
                encode_delta(&Delta::new()),
            );
        }
        CopyLogIndex { store, checkpoints }
    }

    fn checkpoint_for(&self, t: Time) -> usize {
        self.checkpoints
            .partition_point(|&c| c <= t)
            .saturating_sub(1)
    }

    fn fetch_snapshot(&self, i: usize) -> Delta {
        match self
            .store
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy+Log baseline is the paper's comparison target, not a batched hot path")
            .get(Table::Deltas, &Self::key(SNAP_TAG, i), Self::token(i))
        {
            Ok(Some(bytes)) => decode_delta(&bytes).expect("stored snapshot decodes"),
            _ => Delta::new(),
        }
    }

    fn fetch_elist(&self, i: usize) -> Option<Eventlist> {
        match self
            .store
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Copy+Log baseline is the paper's comparison target, not a batched hot path")
            .get(Table::Deltas, &Self::key(ELIST_TAG, i), Self::token(i))
        {
            Ok(Some(bytes)) => Some(decode_eventlist(&bytes).expect("stored eventlist decodes")),
            _ => None,
        }
    }
}

impl HistoricalIndex for CopyLogIndex {
    fn name(&self) -> &'static str {
        "copy+log"
    }

    fn store(&self) -> &Arc<SimStore> {
        &self.store
    }

    fn snapshot(&self, t: Time) -> Delta {
        let i = self.checkpoint_for(t);
        let mut state = self.fetch_snapshot(i);
        if let Some(el) = self.fetch_elist(i) {
            for e in el.events().iter().take_while(|e| e.time <= t) {
                state.apply_event(&e.kind);
            }
        }
        state
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        self.snapshot(t).remove(nid)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        let initial = self.node_at(nid, range.start);
        // Replay eventlists from the range start's checkpoint on —
        // Copy+Log has no per-node access path (Table 1: |G| cost).
        let mut events = Vec::new();
        let from = self.checkpoint_for(range.start);
        for i in from..self.checkpoints.len() {
            if self.checkpoints[i] >= range.end {
                break;
            }
            if let Some(el) = self.fetch_elist(i) {
                events.extend(node_events_in(el.events(), nid, range));
            }
        }
        (initial, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn copylog_matches_replay() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = CopyLogIndex::build(StoreConfig::new(2, 1), &events, 100);
        let end = events.last().unwrap().time;
        for t in [0, end / 3, end / 2, end] {
            assert_eq!(
                idx.snapshot(t),
                Delta::snapshot_by_replay(&events, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn point_queries_cost_two_fetches() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = CopyLogIndex::build(StoreConfig::new(2, 1), &events, 100);
        let before = idx.store().stats_snapshot();
        let _ = idx.snapshot(events.last().unwrap().time / 2);
        let diff = SimStore::stats_since(&idx.store().stats_snapshot(), &before);
        let gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(gets, 2, "Copy+Log = snapshot + eventlist");
    }

    #[test]
    fn node_versions_match_filter() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = CopyLogIndex::build(StoreConfig::new(2, 1), &events, 128);
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 4, (3 * end) / 4);
        let (initial, evs) = idx.node_versions(0, range);
        assert_eq!(
            initial.as_ref(),
            Delta::snapshot_by_replay(&events, range.start).node(0)
        );
        assert_eq!(evs, node_events_in(&events, 0, range));
    }

    #[test]
    fn storage_between_log_and_copy() {
        use crate::{CopyIndex, LogIndex};
        let events = WikiGrowth::sized(300).generate();
        let log = LogIndex::build(StoreConfig::new(1, 1), &events, 50);
        let cl = CopyLogIndex::build(StoreConfig::new(1, 1), &events, 50);
        let copy = CopyIndex::build(StoreConfig::new(1, 1), &events);
        assert!(log.storage_bytes() < cl.storage_bytes());
        assert!(cl.storage_bytes() < copy.storage_bytes());
    }
}

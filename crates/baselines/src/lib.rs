//! # hgs-baselines — the temporal indexes TGI is compared against
//!
//! §4.2 of the paper expresses the prior techniques in the delta
//! framework; this crate implements each of them as a real index over
//! the same simulated store, behind one trait, so that access costs
//! (store lookups, bytes, latencies) are directly comparable:
//!
//! * [`LogIndex`] — the Log approach: a single chronological event log
//!   (chunked for feasibility); every query replays from the start.
//! * [`CopyIndex`] — the Copy approach: a materialized snapshot at
//!   every change point; direct access, quadratic storage.
//! * [`CopyLogIndex`] — Copy+Log: periodic snapshots plus connecting
//!   eventlists.
//! * [`NodeCentricIndex`] — the vertex-centric approach: one eventlist
//!   per node (edges replicated to both endpoints); perfect for node
//!   versions, terrible for snapshots.
//! * [`DeltaGraphIndex`] — the authors' prior DeltaGraph system,
//!   realized as TGI converged to one horizontal partition, monolithic
//!   micro-deltas and no version chains (§4.2's generalization claim).
//!
//! All of them — and TGI itself — implement [`HistoricalIndex`].

pub mod copy;
pub mod copylog;
pub mod deltagraph;
pub mod log;
pub mod nodecentric;
pub mod traits;

pub use copy::CopyIndex;
pub use copylog::CopyLogIndex;
pub use deltagraph::DeltaGraphIndex;
pub use log::LogIndex;
pub use nodecentric::NodeCentricIndex;
pub use traits::HistoricalIndex;

use hgs_delta::{Delta, EventKind, NodeId};

/// Apply an event restricted to a single node's description (used by
/// the per-node replay paths of the baselines).
pub(crate) fn scoped_apply(state: &mut Delta, kind: &EventKind, nid: NodeId) {
    hgs_core::scope::apply_event_scoped(state, kind, |id| id == nid);
}

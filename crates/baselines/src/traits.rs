//! The common interface of all historical graph indexes.

use hgs_delta::{Delta, Event, NodeId, StaticNode, Time, TimeRange};
use hgs_store::{SimStore, StoreError};
use std::sync::Arc;

/// A historical graph index: anything that can answer the paper's
/// retrieval primitives over an immutable event history.
///
/// Every retrieval primitive also has a fallible `try_*` twin so that
/// baselines and TGI share one error contract in the bench harness.
/// The default `try_*` implementations are *panicking bridges*: they
/// delegate to the infallible methods, which on a degraded cluster
/// panic rather than return `Err`. Indexes with a genuinely fallible
/// read path (TGI) override them to surface
/// [`StoreError::Unavailable`] instead.
pub trait HistoricalIndex {
    /// Short name for experiment output ("log", "copy", ...).
    fn name(&self) -> &'static str;

    /// The backing store (for access accounting).
    fn store(&self) -> &Arc<SimStore>;

    /// Graph state as of `t`.
    fn snapshot(&self, t: Time) -> Delta;

    /// One node's state as of `t`.
    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode>;

    /// One node's history over `range`: initial state plus in-range
    /// events touching it.
    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>);

    /// Fallible [`HistoricalIndex::snapshot`]. Default: panicking
    /// bridge through the infallible method.
    fn try_snapshot(&self, t: Time) -> Result<Delta, StoreError> {
        Ok(self.snapshot(t))
    }

    /// Fallible [`HistoricalIndex::node_at`]. Default: panicking
    /// bridge through the infallible method.
    fn try_node_at(&self, nid: NodeId, t: Time) -> Result<Option<StaticNode>, StoreError> {
        Ok(self.node_at(nid, t))
    }

    /// Fallible [`HistoricalIndex::node_versions`]. Default: panicking
    /// bridge through the infallible method.
    fn try_node_versions(
        &self,
        nid: NodeId,
        range: TimeRange,
    ) -> Result<(Option<StaticNode>, Vec<Event>), StoreError> {
        Ok(self.node_versions(nid, range))
    }

    /// Fallible [`HistoricalIndex::one_hop`]. Default: panicking
    /// bridge through the infallible method.
    fn try_one_hop(&self, nid: NodeId, t: Time) -> Result<Delta, StoreError> {
        Ok(self.one_hop(nid, t))
    }

    /// Total stored bytes — the index-size column of Table 1.
    fn storage_bytes(&self) -> usize {
        self.store().stored_bytes()
    }

    /// 1-hop neighborhood of `nid` as of `t` (default: via snapshot).
    fn one_hop(&self, nid: NodeId, t: Time) -> Delta {
        let snap = self.snapshot(t);
        let Some(center) = snap.node(nid) else {
            return Delta::new();
        };
        let mut keep: Vec<NodeId> = center.all_neighbors().collect();
        keep.push(nid);
        snap.restrict(|id| keep.contains(&id))
    }
}

/// Filter `events` to those touching `nid` strictly inside `range`.
pub(crate) fn node_events_in(events: &[Event], nid: NodeId, range: TimeRange) -> Vec<Event> {
    events
        .iter()
        .filter(|e| {
            let (a, b) = e.kind.touched();
            (a == nid || b == Some(nid)) && e.time > range.start && e.time < range.end
        })
        .cloned()
        .collect()
}

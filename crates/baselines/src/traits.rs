//! The common interface of all historical graph indexes.

use hgs_delta::{Delta, Event, NodeId, StaticNode, Time, TimeRange};
use hgs_store::SimStore;
use std::sync::Arc;

/// A historical graph index: anything that can answer the paper's
/// retrieval primitives over an immutable event history.
pub trait HistoricalIndex {
    /// Short name for experiment output ("log", "copy", ...).
    fn name(&self) -> &'static str;

    /// The backing store (for access accounting).
    fn store(&self) -> &Arc<SimStore>;

    /// Graph state as of `t`.
    fn snapshot(&self, t: Time) -> Delta;

    /// One node's state as of `t`.
    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode>;

    /// One node's history over `range`: initial state plus in-range
    /// events touching it.
    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>);

    /// Total stored bytes — the index-size column of Table 1.
    fn storage_bytes(&self) -> usize {
        self.store().stored_bytes()
    }

    /// 1-hop neighborhood of `nid` as of `t` (default: via snapshot).
    fn one_hop(&self, nid: NodeId, t: Time) -> Delta {
        let snap = self.snapshot(t);
        let Some(center) = snap.node(nid) else {
            return Delta::new();
        };
        let mut keep: Vec<NodeId> = center.all_neighbors().collect();
        keep.push(nid);
        snap.restrict(|id| keep.contains(&id))
    }
}

/// Filter `events` to those touching `nid` strictly inside `range`.
pub(crate) fn node_events_in(events: &[Event], nid: NodeId, range: TimeRange) -> Vec<Event> {
    events
        .iter()
        .filter(|e| {
            let (a, b) = e.kind.touched();
            (a == nid || b == Some(nid)) && e.time > range.start && e.time < range.end
        })
        .cloned()
        .collect()
}

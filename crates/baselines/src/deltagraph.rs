//! DeltaGraph — the authors' prior index (ICDE'13) — realized through
//! TGI's tunability (§4.2/§4.3: "This is the same as DeltaGraph, with
//! the exception of partitioning").
//!
//! One horizontal partition, monolithic (unbounded) micro-deltas, no
//! version chains: excellent snapshots via the intersection tree, but
//! node-version queries degrade to replay.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig};
use hgs_delta::{Delta, Event, NodeId, StaticNode, Time, TimeRange};
use hgs_store::{SimStore, StoreConfig};

use crate::traits::{node_events_in, HistoricalIndex};

/// DeltaGraph = TGI with the degenerate partitioning configuration.
pub struct DeltaGraphIndex {
    tgi: Tgi,
    /// Retained trace for version queries (DeltaGraph has no version
    /// chains; the paper charges it `|G|` for those queries — we
    /// replay the kept trace, charging the same asymptotics in-memory).
    events: Vec<Event>,
}

impl DeltaGraphIndex {
    /// Build with eventlist size `l` and tree arity `arity`.
    pub fn build(
        store_cfg: StoreConfig,
        events: &[Event],
        l: usize,
        arity: usize,
    ) -> DeltaGraphIndex {
        let cfg = TgiConfig {
            eventlist_size: l,
            arity,
            ..TgiConfig::deltagraph()
        };
        let tgi = Tgi::build(cfg, store_cfg, events);
        DeltaGraphIndex {
            tgi,
            events: events.to_vec(),
        }
    }

    /// The underlying TGI handle.
    pub fn tgi(&self) -> &Tgi {
        &self.tgi
    }
}

impl HistoricalIndex for DeltaGraphIndex {
    fn name(&self) -> &'static str {
        "deltagraph"
    }

    fn store(&self) -> &Arc<SimStore> {
        self.tgi.store()
    }

    fn snapshot(&self, t: Time) -> Delta {
        self.tgi.snapshot(t)
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        // Monolithic deltas: fetching a node still reads whole deltas
        // along the path; TGI's node_at on a single-pid config does
        // exactly that.
        self.tgi.node_at(nid, t)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        // No version chains: scan the history (the |G| cost of Table 1).
        (
            self.node_at(nid, range.start),
            node_events_in(&self.events, nid, range),
        )
    }
}

/// TGI itself as a [`HistoricalIndex`], closing the comparison set.
impl HistoricalIndex for Tgi {
    fn name(&self) -> &'static str {
        "tgi"
    }

    fn store(&self) -> &Arc<SimStore> {
        hgs_core::TgiView::store(self)
    }

    fn snapshot(&self, t: Time) -> Delta {
        hgs_core::TgiView::snapshot(self, t)
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        hgs_core::TgiView::node_at(self, nid, t)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        let h = hgs_core::TgiView::node_history(self, nid, range);
        (h.initial, h.events)
    }

    fn one_hop(&self, nid: NodeId, t: Time) -> Delta {
        hgs_core::TgiView::khop_with(self, nid, t, 1, hgs_core::KhopStrategy::Recursive)
    }

    // TGI has a real fallible read path: override the panicking
    // bridges so a degraded cluster yields `Err` through the trait.
    fn try_snapshot(&self, t: Time) -> Result<Delta, hgs_store::StoreError> {
        hgs_core::TgiView::try_snapshot(self, t)
    }

    fn try_node_at(
        &self,
        nid: NodeId,
        t: Time,
    ) -> Result<Option<StaticNode>, hgs_store::StoreError> {
        hgs_core::TgiView::try_node_at(self, nid, t)
    }

    fn try_node_versions(
        &self,
        nid: NodeId,
        range: TimeRange,
    ) -> Result<(Option<StaticNode>, Vec<Event>), hgs_store::StoreError> {
        let h = hgs_core::TgiView::try_node_history(self, nid, range)?;
        Ok((h.initial, h.events))
    }

    fn try_one_hop(&self, nid: NodeId, t: Time) -> Result<Delta, hgs_store::StoreError> {
        hgs_core::TgiView::try_khop_with(self, nid, t, 1, hgs_core::KhopStrategy::Recursive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn deltagraph_matches_replay() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = DeltaGraphIndex::build(StoreConfig::new(2, 1), &events, 100, 2);
        let end = events.last().unwrap().time;
        for t in [0, end / 2, end] {
            assert_eq!(
                idx.snapshot(t),
                Delta::snapshot_by_replay(&events, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn deltagraph_stores_monolithic_deltas() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = DeltaGraphIndex::build(StoreConfig::new(2, 1), &events, 200, 2);
        // Exactly one pid per delta: scan counts and row counts match
        // the tree structure, far fewer rows than a partitioned TGI.
        let tgi_cfg = hgs_core::TgiConfig {
            eventlist_size: 200,
            partition_size: 50,
            ..hgs_core::TgiConfig::default()
        };
        let tgi = Tgi::build(tgi_cfg, StoreConfig::new(2, 1), &events);
        assert!(idx.store().row_count() < tgi.store().row_count() / 2);
    }

    #[test]
    fn tgi_as_historical_index() {
        let events = WikiGrowth::sized(800).generate();
        let tgi = Tgi::build(
            hgs_core::TgiConfig {
                events_per_timespan: 500,
                eventlist_size: 100,
                partition_size: 80,
                ..hgs_core::TgiConfig::default()
            },
            StoreConfig::new(2, 1),
            &events,
        );
        let idx: &dyn HistoricalIndex = &tgi;
        let end = events.last().unwrap().time;
        assert_eq!(idx.snapshot(end), Delta::snapshot_by_replay(&events, end));
        assert_eq!(idx.name(), "tgi");
    }

    /// The shared fallible trait surface: baselines answer through the
    /// default bridge; TGI's override turns a dead cluster into `Err`
    /// where the bridge (or the infallible name) would panic.
    #[test]
    fn try_surface_is_shared_and_fallible_for_tgi() {
        let events = WikiGrowth::sized(800).generate();
        let tgi = Tgi::build(
            hgs_core::TgiConfig {
                events_per_timespan: 500,
                eventlist_size: 100,
                partition_size: 80,
                ..hgs_core::TgiConfig::default()
            },
            StoreConfig::new(2, 1),
            &events,
        );
        let log = crate::LogIndex::build(StoreConfig::new(2, 1), &events, 128);
        let end = events.last().unwrap().time;
        for idx in [&tgi as &dyn HistoricalIndex, &log] {
            assert_eq!(
                idx.try_snapshot(end / 2).expect("healthy cluster"),
                idx.snapshot(end / 2),
                "{}: try_snapshot must agree with snapshot",
                idx.name()
            );
            assert_eq!(
                idx.try_node_at(0, end / 2).expect("healthy cluster"),
                idx.node_at(0, end / 2),
                "{}",
                idx.name()
            );
        }
        // Dead cluster: TGI's override errors instead of panicking.
        for m in 0..tgi.store().machine_count() {
            tgi.store().fail_machine(m);
        }
        let idx: &dyn HistoricalIndex = &tgi;
        assert!(matches!(
            idx.try_snapshot(end / 2),
            Err(hgs_store::StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            idx.try_node_versions(0, hgs_delta::TimeRange::new(0, end)),
            Err(hgs_store::StoreError::Unavailable { .. })
        ));
    }
}

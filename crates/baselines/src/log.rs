//! The Log approach: "storing everything through changes".
//!
//! The whole history is one chronological event log, stored as fixed
//! size eventlist chunks (a single multi-gigabyte value would be
//! unusable in any real store). Every retrieval — snapshot, node,
//! versions — replays the log from the beginning: minimal storage,
//! maximal reconstruction cost (Table 1, row 1).

use std::sync::Arc;

use hgs_delta::codec::{decode_eventlist, encode_eventlist};
use hgs_delta::{Delta, Event, Eventlist, NodeId, StaticNode, Time, TimeRange};
use hgs_store::{SimStore, StoreConfig, Table};

use crate::traits::HistoricalIndex;

/// Chunked chronological event log.
pub struct LogIndex {
    store: Arc<SimStore>,
    /// First event time of each chunk (chunk i covers
    /// `[starts[i], starts[i+1])`).
    starts: Vec<Time>,
    chunk: usize,
}

impl LogIndex {
    /// Store chunk key: big-endian chunk index under the Deltas table.
    fn key(i: usize) -> [u8; 8] {
        (i as u64).to_be_bytes()
    }

    fn token(i: usize) -> u64 {
        hgs_delta::hash::hash_u64(i as u64)
    }

    /// Build over `events` with `chunk`-sized eventlist values.
    pub fn build(store_cfg: StoreConfig, events: &[Event], chunk: usize) -> LogIndex {
        assert!(chunk > 0);
        let store = Arc::new(SimStore::new(store_cfg));
        let mut starts = Vec::new();
        for (i, c) in events.chunks(chunk).enumerate() {
            starts.push(c[0].time);
            let el = Eventlist::from_sorted(c.to_vec());
            // hgs-lint: allow(batched-store-discipline, "row-at-a-time Log baseline is the paper's comparison target, not a batched hot path")
            store.put(
                Table::Deltas,
                &Self::key(i),
                Self::token(i),
                encode_eventlist(&el),
            );
        }
        LogIndex {
            store,
            starts,
            chunk,
        }
    }

    /// Fetch and replay all events with `time <= t` through `f`.
    fn replay_until(&self, t: Time, mut f: impl FnMut(&Event)) {
        for i in 0..self.starts.len() {
            if self.starts[i] > t {
                break;
            }
            let bytes = self
                .store
                // hgs-lint: allow(batched-store-discipline, "row-at-a-time Log baseline is the paper's comparison target, not a batched hot path")
                .get(Table::Deltas, &Self::key(i), Self::token(i))
                .expect("store up")
                .expect("chunk exists");
            let el = decode_eventlist(&bytes).expect("stored eventlist decodes");
            for e in el.events() {
                if e.time > t {
                    return;
                }
                f(e);
            }
        }
    }

    /// Configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }
}

impl HistoricalIndex for LogIndex {
    fn name(&self) -> &'static str {
        "log"
    }

    fn store(&self) -> &Arc<SimStore> {
        &self.store
    }

    fn snapshot(&self, t: Time) -> Delta {
        let mut d = Delta::new();
        self.replay_until(t, |e| d.apply_event(&e.kind));
        d
    }

    fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        // The log has no per-node access path: full replay.
        self.snapshot(t).remove(nid)
    }

    fn node_versions(&self, nid: NodeId, range: TimeRange) -> (Option<StaticNode>, Vec<Event>) {
        let initial = self.node_at(nid, range.start);
        // Full scan of the remaining log for the node's events.
        let mut events = Vec::new();
        self.replay_until(range.end.saturating_sub(1), |e| {
            let (a, b) = e.kind.touched();
            if (a == nid || b == Some(nid)) && e.time > range.start {
                events.push(e.clone());
            }
        });
        (initial, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::node_events_in;
    use hgs_datagen::WikiGrowth;

    #[test]
    fn log_matches_replay() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = LogIndex::build(StoreConfig::new(2, 1), &events, 100);
        let end = events.last().unwrap().time;
        for t in [0, end / 2, end] {
            assert_eq!(idx.snapshot(t), Delta::snapshot_by_replay(&events, t));
        }
    }

    #[test]
    fn node_versions_match_filter() {
        let events = WikiGrowth::sized(1_000).generate();
        let idx = LogIndex::build(StoreConfig::new(2, 1), &events, 128);
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 4, end);
        let (initial, evs) = idx.node_versions(0, range);
        assert_eq!(
            initial.as_ref(),
            Delta::snapshot_by_replay(&events, range.start).node(0)
        );
        assert_eq!(evs, node_events_in(&events, 0, range));
    }

    #[test]
    fn storage_is_linear_in_history() {
        let e1 = WikiGrowth::sized(500).generate();
        let e2 = WikiGrowth::sized(1_000).generate();
        let i1 = LogIndex::build(StoreConfig::new(1, 1), &e1, 100);
        let i2 = LogIndex::build(StoreConfig::new(1, 1), &e2, 100);
        let ratio = i2.storage_bytes() as f64 / i1.storage_bytes() as f64;
        assert!(ratio > 1.5 && ratio < 3.0, "ratio {ratio}");
    }
}

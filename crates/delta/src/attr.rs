//! Key-value attributes for nodes and edges.
//!
//! Definition 1 of the paper gives every node (and edge) "an arbitrary
//! number of key-value attribute pairs". Most nodes carry zero or a
//! handful of attributes, so [`Attrs`] is a sorted `Vec` rather than a
//! hash map: an empty attribute set allocates nothing, lookups are a
//! binary search, and iteration order is deterministic (which the
//! delta-intersection logic relies on for equality).

use std::fmt;

/// An attribute value. Deliberately small: the four scalar types cover
/// every workload in the paper's evaluation (labels, weights, counters,
/// flags).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl AttrValue {
    /// Integer view, if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view; ints are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Text view, if the value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// Bool view, if the value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes (used for the storage
    /// accounting in Table 1 reproductions).
    pub fn weight_bytes(&self) -> usize {
        match self {
            AttrValue::Int(_) | AttrValue::Float(_) => 8,
            AttrValue::Bool(_) => 1,
            AttrValue::Text(s) => s.len(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A set of key-value attribute pairs, kept sorted by key.
///
/// Equality is structural; two `Attrs` with the same pairs are equal
/// regardless of insertion order, which makes them usable inside the
/// component-equality tests of delta intersection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attrs {
    pairs: Vec<(String, AttrValue)>,
}

impl Attrs {
    /// Empty attribute set; does not allocate.
    #[inline]
    pub fn new() -> Attrs {
        Attrs { pairs: Vec::new() }
    }

    /// Build from an iterator of pairs; later duplicates win.
    pub fn from_pairs<I, K>(pairs: I) -> Attrs
    where
        I: IntoIterator<Item = (K, AttrValue)>,
        K: Into<String>,
    {
        let mut a = Attrs::new();
        for (k, v) in pairs {
            a.set(k.into(), v);
        }
        a
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no attributes are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Look up an attribute by key.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.pairs[i].1)
    }

    /// Insert or replace an attribute. Returns the previous value if
    /// one existed.
    pub fn set(&mut self, key: impl Into<String>, value: AttrValue) -> Option<AttrValue> {
        let key = key.into();
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut self.pairs[i].1, value)),
            Err(i) => {
                self.pairs.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove an attribute by key, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<AttrValue> {
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => Some(self.pairs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterate pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Approximate serialized footprint (keys + values), for storage
    /// accounting.
    pub fn weight_bytes(&self) -> usize {
        self.pairs
            .iter()
            .map(|(k, v)| k.len() + v.weight_bytes() + 2)
            .sum()
    }
}

impl<K: Into<String>> FromIterator<(K, AttrValue)> for Attrs {
    fn from_iter<I: IntoIterator<Item = (K, AttrValue)>>(iter: I) -> Attrs {
        Attrs::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut a = Attrs::new();
        assert!(a.is_empty());
        assert_eq!(a.set("color", "red".into()), None);
        assert_eq!(a.set("size", AttrValue::Int(10)), None);
        assert_eq!(a.get("color").and_then(|v| v.as_text()), Some("red"));
        let old = a.set("color", "blue".into());
        assert_eq!(
            old.and_then(|v| v.as_text().map(|s| s.to_owned()))
                .as_deref(),
            Some("red")
        );
        assert_eq!(a.remove("size").and_then(|v| v.as_int()), Some(10));
        assert_eq!(a.remove("size"), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Attrs::from_pairs([("x", AttrValue::Int(1)), ("y", AttrValue::Int(2))]);
        let b = Attrs::from_pairs([("y", AttrValue::Int(2)), ("x", AttrValue::Int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let a = Attrs::from_pairs([("k", AttrValue::Int(1)), ("k", AttrValue::Int(2))]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get("k").and_then(|v| v.as_int()), Some(2));
    }

    #[test]
    fn value_views() {
        assert_eq!(AttrValue::Int(3).as_float(), Some(3.0));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Text("t".into()).as_text(), Some("t"));
        assert_eq!(AttrValue::Float(1.5).as_int(), None);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let a = Attrs::from_pairs([("b", AttrValue::Int(2)), ("a", AttrValue::Int(1))]);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}

//! Fundamental scalar types of the temporal graph model.

/// Unique identifier of a vertex. The paper's Definition 1 uses an
/// integer identifier; we use `u64` throughout.
pub type NodeId = u64;

/// A discrete timepoint. The paper works under "a discreet notion of
/// time": the history of the graph is a sequence of events at integer
/// timepoints. `Time` is also used as an event sequence number by the
/// generators (each event gets a distinct, monotonically non-decreasing
/// timestamp).
pub type Time = u64;

/// Direction of an edge relative to the node whose edge-list carries it.
///
/// The node-centric model stores each edge with both endpoints, so a
/// directed edge `u -> v` appears as `Out` in `u`'s list and `In` in
/// `v`'s list. Undirected edges appear as `Both` in both lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeDir {
    /// Edge leaves this node (this node is the source).
    Out,
    /// Edge enters this node (this node is the destination).
    In,
    /// Undirected edge.
    Both,
}

impl EdgeDir {
    /// The direction the same edge has in the other endpoint's list.
    #[inline]
    pub fn flip(self) -> EdgeDir {
        match self {
            EdgeDir::Out => EdgeDir::In,
            EdgeDir::In => EdgeDir::Out,
            EdgeDir::Both => EdgeDir::Both,
        }
    }

    /// Compact wire tag used by the binary codec.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            EdgeDir::Out => 0,
            EdgeDir::In => 1,
            EdgeDir::Both => 2,
        }
    }

    /// Inverse of [`EdgeDir::tag`].
    #[inline]
    pub fn from_tag(t: u8) -> Option<EdgeDir> {
        match t {
            0 => Some(EdgeDir::Out),
            1 => Some(EdgeDir::In),
            2 => Some(EdgeDir::Both),
            _ => None,
        }
    }
}

/// A half-open time interval `[start, end)`.
///
/// All interval semantics in HGS are half-open: an event at time `t`
/// is *included* in a query over `[t, t')` and excluded from `[t'', t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    pub start: Time,
    pub end: Time,
}

impl TimeRange {
    /// Create `[start, end)`. `start <= end` is required.
    #[inline]
    pub fn new(start: Time, end: Time) -> TimeRange {
        assert!(start <= end, "TimeRange requires start <= end");
        TimeRange { start, end }
    }

    /// The full history `[0, Time::MAX)`.
    #[inline]
    pub fn all() -> TimeRange {
        TimeRange {
            start: 0,
            end: Time::MAX,
        }
    }

    /// Single-point range `[t, t+1)`.
    #[inline]
    pub fn at(t: Time) -> TimeRange {
        TimeRange {
            start: t,
            end: t.saturating_add(1),
        }
    }

    /// Whether `t` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether the two half-open ranges intersect.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Length of the range.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range is empty (`start == end`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Intersection of two ranges, or `None` when disjoint.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeRange { start, end })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_dir_flip_is_involution() {
        for d in [EdgeDir::Out, EdgeDir::In, EdgeDir::Both] {
            assert_eq!(d.flip().flip(), d);
        }
    }

    #[test]
    fn edge_dir_tag_roundtrip() {
        for d in [EdgeDir::Out, EdgeDir::In, EdgeDir::Both] {
            assert_eq!(EdgeDir::from_tag(d.tag()), Some(d));
        }
        assert_eq!(EdgeDir::from_tag(7), None);
    }

    #[test]
    fn range_contains_half_open() {
        let r = TimeRange::new(5, 10);
        assert!(!r.contains(4));
        assert!(r.contains(5));
        assert!(r.contains(9));
        assert!(!r.contains(10));
    }

    #[test]
    fn range_overlap_and_intersection() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 15);
        let c = TimeRange::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), Some(TimeRange::new(5, 10)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn range_at_is_single_point() {
        let r = TimeRange::at(7);
        assert!(r.contains(7));
        assert!(!r.contains(8));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic]
    fn range_rejects_inverted_bounds() {
        let _ = TimeRange::new(10, 5);
    }
}

//! # hgs-delta — the delta framework of the Historical Graph Store
//!
//! This crate implements the temporal graph data model and the *delta
//! framework* of Section 4.1 of "Storing and Analyzing Historical Graph
//! Data at Scale" (Khurana & Deshpande, EDBT 2016):
//!
//! * [`StaticNode`] — the state of a vertex at one point in time
//!   (Definition 1): node-id, edge-list, attributes. Edges are modelled
//!   as attributes of their endpoint nodes (node-centric logical model).
//! * [`Event`] — the smallest change to a graph (Example 1): structural
//!   (node/edge addition/removal) or attribute-level.
//! * [`Eventlist`] — a chronologically sorted run of events (Example 2),
//!   optionally scoped to a node partition (Example 3).
//! * [`Delta`] — a set of static graph components closed under *sum*,
//!   *difference*, *union* and *intersection* (Definitions 2–5). Graph
//!   snapshots (Example 4) and partitioned snapshots (Example 5) are
//!   deltas from the empty graph.
//! * [`codec`] — a compact binary serialization for all of the above;
//!   serialized size is the storage cost that every index in the paper
//!   (Table 1) is measured by.
//!
//! Everything higher in the stack (the simulated distributed store, the
//! Temporal Graph Index, the baselines and the analytics framework) is
//! built out of these primitives.

pub mod attr;
pub mod attr_index;
pub mod codec;
pub mod columnar;
pub mod compress;
pub mod delta;
pub mod error;
pub mod event;
pub mod hash;
pub mod node;
pub mod normalize;
pub mod types;

pub use attr::{AttrValue, Attrs};
pub use attr_index::{KeyPoint, TermPoint, TERM_KIND_KEY, TERM_KIND_VALUE};
pub use columnar::{ColumnarDelta, ColumnarEventlist, StorageLayout};
pub use delta::Delta;
pub use error::{CodecError, DeltaError};
pub use event::{Event, EventKind, Eventlist};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use node::{Neighbor, StaticNode};
pub use normalize::{is_normalized, normalize_events};
pub use types::{EdgeDir, NodeId, Time, TimeRange};

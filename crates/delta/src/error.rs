//! Error types shared across the HGS stack.

use std::fmt;

/// Errors arising from delta algebra misuse or inconsistent histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An event referenced a node that does not exist in the state it
    /// was applied to (e.g. `AddEdge` before `AddNode`).
    UnknownNode { node: u64, context: &'static str },
    /// An event referenced an edge that does not exist.
    UnknownEdge {
        src: u64,
        dst: u64,
        context: &'static str,
    },
    /// An event re-created something that already exists.
    AlreadyExists { what: &'static str, id: u64 },
    /// Events were supplied out of chronological order where order is
    /// required.
    OutOfOrder { prev: u64, next: u64 },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNode { node, context } => {
                write!(f, "unknown node {node} in {context}")
            }
            DeltaError::UnknownEdge { src, dst, context } => {
                write!(f, "unknown edge {src}->{dst} in {context}")
            }
            DeltaError::AlreadyExists { what, id } => {
                write!(f, "{what} {id} already exists")
            }
            DeltaError::OutOfOrder { prev, next } => {
                write!(f, "events out of order: {next} after {prev}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Errors from the binary codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a value.
    UnexpectedEof { needed: usize, remaining: usize },
    /// A varint ran longer than 10 bytes.
    VarintOverflow,
    /// An enum tag byte had no corresponding variant.
    BadTag { what: &'static str, tag: u8 },
    /// A length prefix exceeded a sanity bound.
    LengthOverflow { what: &'static str, len: u64 },
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// Trailing garbage after a complete value (strict decodes only).
    TrailingBytes { remaining: usize },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected EOF: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            CodecError::LengthOverflow { what, len } => {
                write!(f, "{what} length {len} exceeds sanity bound")
            }
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = DeltaError::UnknownNode {
            node: 7,
            context: "AddEdge",
        };
        assert!(e.to_string().contains("unknown node 7"));
        let c = CodecError::BadTag {
            what: "EventKind",
            tag: 99,
        };
        assert!(c.to_string().contains("EventKind"));
    }
}

//! Static graph components: the state of a node (with its edge-list) at
//! one point in time — Definition 1 of the paper.

use crate::attr::Attrs;
use crate::types::{EdgeDir, NodeId};

/// One entry of a node's edge-list: a reference to a neighbor, the edge
/// direction relative to the owning node, an edge weight, and optional
/// edge attributes.
///
/// The paper's node-centric model treats edges as attributes of their
/// endpoint nodes; an edge is stored with *both* endpoints so that any
/// single node's state is self-contained (this replication is also what
/// the vertex-centric baseline in Table 1 assumes).
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The other endpoint.
    pub nbr: NodeId,
    /// Direction of the edge relative to the owning node.
    pub dir: EdgeDir,
    /// Edge weight; defaults to 1.0. Used by the locality-aware
    /// partitioner's Ω collapse functions.
    pub weight: f32,
    /// Edge attributes; boxed so the common attribute-free case costs
    /// one machine word.
    pub attrs: Option<Box<Attrs>>,
}

impl Neighbor {
    /// Unweighted, attribute-free neighbor entry.
    pub fn new(nbr: NodeId, dir: EdgeDir) -> Neighbor {
        Neighbor {
            nbr,
            dir,
            weight: 1.0,
            attrs: None,
        }
    }

    /// Weighted neighbor entry.
    pub fn weighted(nbr: NodeId, dir: EdgeDir, weight: f32) -> Neighbor {
        Neighbor {
            nbr,
            dir,
            weight,
            attrs: None,
        }
    }

    /// Edge attributes (empty view when none are set).
    pub fn attr(&self, key: &str) -> Option<&crate::attr::AttrValue> {
        self.attrs.as_ref().and_then(|a| a.get(key))
    }

    /// Set an edge attribute, allocating the attribute box on first use.
    pub fn set_attr(&mut self, key: impl Into<String>, value: crate::attr::AttrValue) {
        self.attrs
            .get_or_insert_with(Default::default)
            .set(key, value);
    }

    /// Remove an edge attribute.
    pub fn remove_attr(&mut self, key: &str) -> Option<crate::attr::AttrValue> {
        let out = self.attrs.as_mut().and_then(|a| a.remove(key));
        if self.attrs.as_ref().is_some_and(|a| a.is_empty()) {
            self.attrs = None;
        }
        out
    }
}

/// The state of a vertex at a specific time (Definition 1): node-id,
/// edge-list, attributes.
///
/// `PartialEq` is structural over the *sorted* edge-list, which is the
/// component-equality relation used by delta intersection (and hence by
/// the DeltaGraph-style temporal compression in TGI).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticNode {
    /// Unique identifier.
    pub id: NodeId,
    /// Edge-list, kept sorted by `(nbr, dir)`.
    pub edges: Vec<Neighbor>,
    /// Node attributes.
    pub attrs: Attrs,
}

impl StaticNode {
    /// A fresh node with no edges or attributes.
    pub fn new(id: NodeId) -> StaticNode {
        StaticNode {
            id,
            edges: Vec::new(),
            attrs: Attrs::new(),
        }
    }

    /// Number of edge-list entries (the node's degree in the stored
    /// representation; for undirected graphs this equals the degree).
    #[inline]
    pub fn degree(&self) -> usize {
        self.edges.len()
    }

    /// Binary-search the edge-list for `(nbr, dir)`.
    fn edge_pos(&self, nbr: NodeId, dir: EdgeDir) -> Result<usize, usize> {
        self.edges
            .binary_search_by(|e| (e.nbr, e.dir).cmp(&(nbr, dir)))
    }

    /// Look up an edge entry toward `nbr` with direction `dir`.
    pub fn edge(&self, nbr: NodeId, dir: EdgeDir) -> Option<&Neighbor> {
        self.edge_pos(nbr, dir).ok().map(|i| &self.edges[i])
    }

    /// Mutable edge lookup.
    pub fn edge_mut(&mut self, nbr: NodeId, dir: EdgeDir) -> Option<&mut Neighbor> {
        match self.edge_pos(nbr, dir) {
            Ok(i) => Some(&mut self.edges[i]),
            Err(_) => None,
        }
    }

    /// Whether any edge (any direction) connects to `nbr`.
    pub fn has_neighbor(&self, nbr: NodeId) -> bool {
        // Partition point = first index with e.nbr > nbr; a match, if
        // any, sits immediately before it.
        let i = self.edges.partition_point(|e| e.nbr <= nbr);
        i > 0 && self.edges[i - 1].nbr == nbr
    }

    /// Insert an edge entry, keeping the list sorted. Returns `false`
    /// if an identical `(nbr, dir)` entry already existed (in which
    /// case it is replaced).
    pub fn insert_edge(&mut self, e: Neighbor) -> bool {
        match self.edge_pos(e.nbr, e.dir) {
            Ok(i) => {
                self.edges[i] = e;
                false
            }
            Err(i) => {
                self.edges.insert(i, e);
                true
            }
        }
    }

    /// Remove the `(nbr, dir)` edge entry, returning it if present.
    pub fn remove_edge(&mut self, nbr: NodeId, dir: EdgeDir) -> Option<Neighbor> {
        match self.edge_pos(nbr, dir) {
            Ok(i) => Some(self.edges.remove(i)),
            Err(_) => None,
        }
    }

    /// Remove *all* entries that reference `nbr`, regardless of
    /// direction; returns how many were removed. Used when a neighbor
    /// node is deleted.
    pub fn remove_all_edges_to(&mut self, nbr: NodeId) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| e.nbr != nbr);
        before - self.edges.len()
    }

    /// Iterate over neighbor ids of out-going or undirected edges
    /// (i.e. nodes reachable *from* this node).
    pub fn out_neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(|e| matches!(e.dir, EdgeDir::Out | EdgeDir::Both))
            .map(|e| e.nbr)
    }

    /// Iterate over all neighbor ids (any direction), deduplicated
    /// thanks to the sort order.
    pub fn all_neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut last: Option<NodeId> = None;
        self.edges.iter().filter_map(move |e| {
            if last == Some(e.nbr) {
                None
            } else {
                last = Some(e.nbr);
                Some(e.nbr)
            }
        })
    }

    /// Approximate serialized footprint in bytes; this is the "size of
    /// a static node description" that the paper's Definition 3 counts.
    pub fn weight_bytes(&self) -> usize {
        let edges: usize = self
            .edges
            .iter()
            .map(|e| 8 + 1 + 4 + e.attrs.as_ref().map_or(0, |a| a.weight_bytes()))
            .sum();
        8 + edges + self.attrs.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_edges_keeps_sorted() {
        let mut n = StaticNode::new(1);
        assert!(n.insert_edge(Neighbor::new(5, EdgeDir::Both)));
        assert!(n.insert_edge(Neighbor::new(2, EdgeDir::Both)));
        assert!(n.insert_edge(Neighbor::new(9, EdgeDir::Out)));
        let ids: Vec<NodeId> = n.edges.iter().map(|e| e.nbr).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert!(n.remove_edge(5, EdgeDir::Both).is_some());
        assert!(n.remove_edge(5, EdgeDir::Both).is_none());
        assert_eq!(n.degree(), 2);
    }

    #[test]
    fn duplicate_insert_replaces() {
        let mut n = StaticNode::new(1);
        n.insert_edge(Neighbor::weighted(2, EdgeDir::Both, 1.0));
        assert!(!n.insert_edge(Neighbor::weighted(2, EdgeDir::Both, 3.0)));
        assert_eq!(n.degree(), 1);
        assert_eq!(n.edge(2, EdgeDir::Both).unwrap().weight, 3.0);
    }

    #[test]
    fn has_neighbor_any_direction() {
        let mut n = StaticNode::new(1);
        n.insert_edge(Neighbor::new(4, EdgeDir::In));
        assert!(n.has_neighbor(4));
        assert!(!n.has_neighbor(5));
    }

    #[test]
    fn remove_all_edges_to_neighbor() {
        let mut n = StaticNode::new(1);
        n.insert_edge(Neighbor::new(4, EdgeDir::In));
        n.insert_edge(Neighbor::new(4, EdgeDir::Out));
        n.insert_edge(Neighbor::new(6, EdgeDir::Both));
        assert_eq!(n.remove_all_edges_to(4), 2);
        assert_eq!(n.degree(), 1);
    }

    #[test]
    fn out_neighbors_excludes_in_edges() {
        let mut n = StaticNode::new(1);
        n.insert_edge(Neighbor::new(2, EdgeDir::In));
        n.insert_edge(Neighbor::new(3, EdgeDir::Out));
        n.insert_edge(Neighbor::new(4, EdgeDir::Both));
        let out: Vec<NodeId> = n.out_neighbors().collect();
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn all_neighbors_dedups() {
        let mut n = StaticNode::new(1);
        n.insert_edge(Neighbor::new(2, EdgeDir::In));
        n.insert_edge(Neighbor::new(2, EdgeDir::Out));
        n.insert_edge(Neighbor::new(3, EdgeDir::Both));
        let all: Vec<NodeId> = n.all_neighbors().collect();
        assert_eq!(all, vec![2, 3]);
    }

    #[test]
    fn edge_attrs_lazily_boxed() {
        let mut e = Neighbor::new(2, EdgeDir::Both);
        assert!(e.attrs.is_none());
        e.set_attr("type", "friend".into());
        assert_eq!(e.attr("type").and_then(|v| v.as_text()), Some("friend"));
        e.remove_attr("type");
        assert!(e.attrs.is_none(), "empty attr box should be dropped");
    }

    #[test]
    fn structural_equality() {
        let mut a = StaticNode::new(1);
        a.insert_edge(Neighbor::new(2, EdgeDir::Both));
        let mut b = StaticNode::new(1);
        b.insert_edge(Neighbor::new(2, EdgeDir::Both));
        assert_eq!(a, b);
        b.attrs.set("x", AttrsVal(1));
        assert_ne!(a, b);
    }

    // small helper to keep the test above terse
    #[allow(non_snake_case)]
    fn AttrsVal(v: i64) -> crate::attr::AttrValue {
        crate::attr::AttrValue::Int(v)
    }
}

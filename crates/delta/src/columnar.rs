//! Columnar storage layout for eventlists and deltas.
//!
//! The row-wise codec ([`crate::codec`]) interleaves every field of
//! every event/node, so a reader pays full decode cost even when it
//! only needs one node's structural history. This module stores the
//! same data as **separately LZSS-compressed column segments** behind
//! one backing [`Bytes`] value:
//!
//! * an eventlist row holds a node-id dictionary, a delta-varint
//!   timestamp column, a kind-tag column, dictionary-index id columns,
//!   and payload columns (edge weights, interned attribute keys,
//!   attribute values);
//! * a delta row holds a sorted node-id column, a record-length
//!   column, an interned attribute-key dictionary, and a concatenated
//!   per-node record segment; full replays stream ids + records only
//!   (records are self-delimiting), while pruned per-node lookups
//!   binary-search ids and use the length column to slice one record.
//!
//! Segments are decompressed lazily and memoized, so a query
//! materializes only the columns it touches: a `node_at` probe whose
//! node is absent from the dictionary stops after the dictionary
//! segment; a structural replay never decompresses attribute values.
//! Every decompressed segment is charged to
//! [`crate::codec::decoded_bytes`], which is how the decode benches
//! compare layouts honestly.
//!
//! Corrupt input is an error, never a panic: all lengths are validated
//! against the codec's `MAX_LEN` cap before allocation, segment ranges
//! are bounds-checked against the backing buffer, and dictionary
//! indexes are range-checked on use.

use std::ops::Range;
use std::sync::OnceLock;

use bytes::{BufMut, Bytes, BytesMut};

use crate::attr::{AttrValue, Attrs};
use crate::codec::{
    get_attr_value, get_f32, get_len, get_str, get_varint, note_decoded, put_attr_value, put_f32,
    put_str, put_varint,
};
use crate::compress::{compress, decompress, decompressed_len};
use crate::delta::Delta;
use crate::error::CodecError;
use crate::event::{Event, EventKind, Eventlist};
use crate::node::{Neighbor, StaticNode};
use crate::types::{EdgeDir, NodeId, Time};

/// Which physical row format index rows are written in.
///
/// The layout is a build-time property of the whole index (persisted
/// with the configuration; rows are not self-describing) — both
/// layouts answer every query identically, which the cross-layout
/// equality suite verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageLayout {
    /// The original interleaved tag-byte format of [`crate::codec`].
    RowWise,
    /// Per-column LZSS-compressed segments, decoded lazily.
    Columnar,
}

const ELIST_MAGIC: u8 = 0xC1;
const DELTA_MAGIC: u8 = 0xC2;

const ELIST_SEGS: usize = 8;
const SEG_NODE_DICT: usize = 0;
const SEG_TIMES: usize = 1;
const SEG_KINDS: usize = 2;
const SEG_IDS: usize = 3;
const SEG_WEIGHTS: usize = 4;
const SEG_KEY_DICT: usize = 5;
const SEG_ATTR_KEYS: usize = 6;
const SEG_ATTR_VALS: usize = 7;

const DELTA_SEGS: usize = 4;
const SEG_NODE_IDS: usize = 0;
const SEG_RECORD_LENS: usize = 1;
const SEG_DKEY_DICT: usize = 2;
const SEG_RECORDS: usize = 3;

// ----------------------------------------------------------------------
// kind-tag helpers (tags match the row-wise codec's event tags)
// ----------------------------------------------------------------------

fn kind_tag(k: &EventKind) -> u8 {
    match k {
        EventKind::AddNode { .. } => 0,
        EventKind::RemoveNode { .. } => 1,
        EventKind::AddEdge { .. } => 2,
        EventKind::RemoveEdge { .. } => 3,
        EventKind::SetEdgeWeight { .. } => 4,
        EventKind::SetNodeAttr { .. } => 5,
        EventKind::RemoveNodeAttr { .. } => 6,
        EventKind::SetEdgeAttr { .. } => 7,
        EventKind::RemoveEdgeAttr { .. } => 8,
    }
}

/// Tags whose events reference two node ids.
#[inline]
fn has_two_ids(tag: u8) -> bool {
    matches!(tag, 2 | 3 | 4 | 7 | 8)
}

/// Tags that consume one entry of the weights column.
#[inline]
fn has_weight(tag: u8) -> bool {
    matches!(tag, 2 | 4)
}

/// Tags that consume one entry of the attr-key column.
#[inline]
fn has_attr_key(tag: u8) -> bool {
    matches!(tag, 5..=8)
}

/// Tags that consume one entry of the attr-value column.
#[inline]
fn has_attr_val(tag: u8) -> bool {
    matches!(tag, 5 | 7)
}

fn attr_key_of(k: &EventKind) -> Option<&str> {
    match k {
        EventKind::SetNodeAttr { key, .. }
        | EventKind::RemoveNodeAttr { key, .. }
        | EventKind::SetEdgeAttr { key, .. }
        | EventKind::RemoveEdgeAttr { key, .. } => Some(key),
        _ => None,
    }
}

#[inline]
fn dict_idx<T: Ord>(dict: &[T], v: &T) -> u64 {
    dict.binary_search(v)
        // hgs-lint: allow(no-panic-in-try, "every looked-up value was interned into this dict during the same encode")
        .expect("value interned at encode time") as u64
}

fn dict_node(dict: &[NodeId], idx: u32) -> Result<NodeId, CodecError> {
    dict.get(idx as usize)
        .copied()
        .ok_or(CodecError::LengthOverflow {
            what: "node-dict-index",
            len: idx as u64,
        })
}

// ----------------------------------------------------------------------
// shared header: magic, count, per-segment compressed lengths
// ----------------------------------------------------------------------

/// Per-segment policy marker: never emit an LZSS stream for this
/// segment (see `assemble`).
const NEVER_COMPRESS: usize = usize::MAX;

fn assemble(magic: u8, count: usize, segs: &[&[u8]], min_save_num: &[usize]) -> Bytes {
    // Adaptive per-segment compression: keep the LZSS stream only when
    // it buys the segment's required saving (`min_save_num[i]` / 16 of
    // its bytes); otherwise store the segment raw, which decodes as a
    // zero-copy sub-slice of the backing buffer. Encoders pass
    // [`NEVER_COMPRESS`] for segments whose decompression time a cold
    // full replay cannot afford. The per-segment length varint carries
    // the choice in its low bit: `(stored_len << 1) | compressed`.
    let comp: Vec<Option<Bytes>> = segs
        .iter()
        .zip(min_save_num)
        .map(|(s, &num)| {
            if num == NEVER_COMPRESS {
                return None;
            }
            let c = compress(s);
            (c.len() <= s.len() - s.len() / 16 * num).then_some(c)
        })
        .collect();
    let total: usize = segs
        .iter()
        .zip(&comp)
        .map(|(s, c)| c.as_ref().map_or(s.len(), |c| c.len()))
        .sum();
    let mut out = BytesMut::with_capacity(total + 8 + 2 * segs.len());
    out.put_u8(magic);
    put_varint(&mut out, count as u64);
    put_varint(&mut out, segs.len() as u64);
    for (s, c) in segs.iter().zip(&comp) {
        match c {
            Some(c) => put_varint(&mut out, (c.len() as u64) << 1 | 1),
            None => put_varint(&mut out, (s.len() as u64) << 1),
        }
    }
    for (s, c) in segs.iter().zip(&comp) {
        out.put_slice(c.as_deref().unwrap_or(s));
    }
    out.freeze()
}

/// Parse the common header and bounds-check every segment range. Also
/// peeks each compressed segment's decompressed length (O(1) thanks
/// to the LZSS raw-length prefix) so cache weight is known before any
/// lazy decode; raw-stored segments report their stored length.
#[allow(clippy::type_complexity)]
fn parse_header(
    backing: &Bytes,
    magic: u8,
    n_segs: usize,
    what: &'static str,
) -> Result<(usize, Vec<Range<usize>>, Vec<usize>, Vec<bool>), CodecError> {
    let mut buf: &[u8] = backing;
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(CodecError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        });
    };
    buf = rest;
    if tag != magic {
        return Err(CodecError::BadTag { what, tag });
    }
    let count = get_len(&mut buf, what)?;
    let got_segs = get_len(&mut buf, "segment-count")?;
    if got_segs != n_segs {
        return Err(CodecError::LengthOverflow {
            what: "segment-count",
            len: got_segs as u64,
        });
    }
    let mut lens = Vec::with_capacity(n_segs);
    for _ in 0..n_segs {
        // Low bit: segment is LZSS-compressed; high bits: stored size.
        let lv = get_len(&mut buf, "segment")?;
        lens.push((lv >> 1, lv & 1 == 1));
    }
    let mut pos = backing.len() - buf.len();
    let mut segs = Vec::with_capacity(n_segs);
    let mut raw_lens = Vec::with_capacity(n_segs);
    let mut comp = Vec::with_capacity(n_segs);
    for (len, compressed) in lens {
        let end = pos.checked_add(len).ok_or(CodecError::LengthOverflow {
            what: "segment",
            len: len as u64,
        })?;
        if end > backing.len() {
            return Err(CodecError::UnexpectedEof {
                needed: len,
                remaining: backing.len() - pos,
            });
        }
        let raw = if compressed {
            let mut head: &[u8] = &backing[pos..end];
            // `get_len` re-applies the MAX_LEN cap to the raw length,
            // so a corrupt prefix cannot make a lazy decode
            // over-allocate.
            let raw = get_len(&mut head, "segment-raw")?;
            debug_assert_eq!(raw, decompressed_len(&backing[pos..end]).unwrap_or(raw));
            raw
        } else {
            len
        };
        segs.push(pos..end);
        raw_lens.push(raw);
        comp.push(compressed);
        pos = end;
    }
    if pos != backing.len() {
        return Err(CodecError::TrailingBytes {
            remaining: backing.len() - pos,
        });
    }
    Ok((count, segs, raw_lens, comp))
}

// ----------------------------------------------------------------------
// columnar eventlists
// ----------------------------------------------------------------------

/// Serialize an eventlist in the columnar layout.
pub fn encode_columnar_eventlist(el: &Eventlist) -> Bytes {
    let events = el.events();
    let mut nids: Vec<NodeId> = Vec::with_capacity(events.len() * 2);
    let mut keys: Vec<&str> = Vec::new();
    for e in events {
        let (a, b) = e.kind.touched();
        nids.push(a);
        if let Some(b) = b {
            nids.push(b);
        }
        if let Some(k) = attr_key_of(&e.kind) {
            keys.push(k);
        }
    }
    nids.sort_unstable();
    nids.dedup();
    keys.sort_unstable();
    keys.dedup();

    let mut node_dict = BytesMut::new();
    put_varint(&mut node_dict, nids.len() as u64);
    let mut prev = 0u64;
    for &id in &nids {
        put_varint(&mut node_dict, id.wrapping_sub(prev));
        prev = id;
    }

    let mut key_dict = BytesMut::new();
    put_varint(&mut key_dict, keys.len() as u64);
    for k in &keys {
        put_str(&mut key_dict, k);
    }

    let mut times = BytesMut::with_capacity(events.len() * 2);
    let mut kinds = BytesMut::with_capacity(events.len());
    let mut ids = BytesMut::with_capacity(events.len() * 2);
    let mut weights = BytesMut::new();
    let mut attr_keys = BytesMut::new();
    let mut attr_vals = BytesMut::new();
    let mut prev_t = 0u64;
    for e in events {
        put_varint(&mut times, e.time.wrapping_sub(prev_t));
        prev_t = e.time;
        kinds.put_u8(kind_tag(&e.kind));
        let (a, b) = e.kind.touched();
        put_varint(&mut ids, dict_idx(&nids, &a));
        if let Some(b) = b {
            put_varint(&mut ids, dict_idx(&nids, &b));
        }
        match &e.kind {
            EventKind::AddEdge {
                weight, directed, ..
            } => {
                put_f32(&mut weights, *weight);
                weights.put_u8(*directed as u8);
            }
            EventKind::SetEdgeWeight { weight, .. } => {
                put_f32(&mut weights, *weight);
                weights.put_u8(0);
            }
            _ => {}
        }
        if let Some(k) = attr_key_of(&e.kind) {
            put_varint(&mut attr_keys, dict_idx(&keys, &k));
        }
        match &e.kind {
            EventKind::SetNodeAttr { value, .. } | EventKind::SetEdgeAttr { value, .. } => {
                put_attr_value(&mut attr_vals, value);
            }
            _ => {}
        }
    }

    assemble(
        ELIST_MAGIC,
        events.len(),
        &[
            &node_dict, &times, &kinds, &ids, &weights, &key_dict, &attr_keys, &attr_vals,
        ],
        &{
            // Role-aware policy, mirroring the delta encoder below: the
            // columns a structural replay always streams (times, kinds,
            // ids) stay raw so a cold snapshot never pays decompression
            // the row-wise baseline doesn't; dictionary and payload
            // columns — where the textual redundancy lives — compress
            // adaptively. Weights qualify too: repeated defaults make
            // it a run-length column that LZSS restores at memcpy
            // speed.
            let mut min_save = [NEVER_COMPRESS; ELIST_SEGS];
            min_save[SEG_NODE_DICT] = 1;
            min_save[SEG_WEIGHTS] = 1;
            min_save[SEG_KEY_DICT] = 1;
            min_save[SEG_ATTR_KEYS] = 1;
            min_save[SEG_ATTR_VALS] = 1;
            min_save
        },
    )
}

/// The cheap always-decoded columns: timestamps, kind tags and
/// dictionary-index id pairs (second index is `u32::MAX` filler for
/// single-node kinds).
#[derive(Debug)]
struct CoreColumns {
    times: Vec<Time>,
    kinds: Vec<u8>,
    ids: Vec<(u32, u32)>,
}

/// A parsed columnar eventlist row: one backing buffer, per-segment
/// sub-ranges, and lazily decoded (memoized) columns.
#[derive(Debug)]
pub struct ColumnarEventlist {
    backing: Bytes,
    n_events: usize,
    segs: [Range<usize>; ELIST_SEGS],
    raw_lens: [usize; ELIST_SEGS],
    comp: [bool; ELIST_SEGS],
    node_dict: OnceLock<Result<Vec<NodeId>, CodecError>>,
    core: OnceLock<Result<CoreColumns, CodecError>>,
    weights: OnceLock<Result<Vec<(f32, bool)>, CodecError>>,
    key_dict: OnceLock<Result<Vec<String>, CodecError>>,
    attr_keys: OnceLock<Result<Vec<u32>, CodecError>>,
    attr_vals: OnceLock<Result<Vec<AttrValue>, CodecError>>,
}

impl ColumnarEventlist {
    /// Parse the header of an encoded row. Only the header is read;
    /// column segments stay compressed until first use.
    pub fn parse(backing: Bytes) -> Result<ColumnarEventlist, CodecError> {
        let (n_events, segs, raw_lens, comp) =
            parse_header(&backing, ELIST_MAGIC, ELIST_SEGS, "columnar-eventlist")?;
        Ok(ColumnarEventlist {
            backing,
            n_events,
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            segs: segs.try_into().expect("segment count checked"),
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            raw_lens: raw_lens.try_into().expect("segment count checked"),
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            comp: comp.try_into().expect("segment count checked"),
            node_dict: OnceLock::new(),
            core: OnceLock::new(),
            weights: OnceLock::new(),
            key_dict: OnceLock::new(),
            attr_keys: OnceLock::new(),
            attr_vals: OnceLock::new(),
        })
    }

    /// Number of events in the row.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Size of the shared backing buffer.
    pub fn backing_len(&self) -> usize {
        self.backing.len()
    }

    /// Sum of all segments' decompressed lengths — the upper bound of
    /// what lazy decoding can ever materialize. Known without
    /// decompressing anything; the read cache charges this up front.
    pub fn raw_len_total(&self) -> usize {
        self.raw_lens.iter().sum()
    }

    fn decode_seg(&self, i: usize) -> Result<Bytes, CodecError> {
        let raw = if self.comp[i] {
            decompress(&self.backing[self.segs[i].clone()])?
        } else {
            // Raw-stored segment: a zero-copy sub-slice of the
            // shared backing buffer.
            self.backing.slice(self.segs[i].clone())
        };
        note_decoded(raw.len());
        Ok(raw)
    }

    fn node_dict(&self) -> Result<&[NodeId], CodecError> {
        self.node_dict
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_NODE_DICT)?;
                let mut b: &[u8] = &raw;
                let n = get_len(&mut b, "node-dict")?;
                let mut out = Vec::with_capacity(n.min(1 << 20));
                let mut prev = 0u64;
                for _ in 0..n {
                    prev = prev.wrapping_add(get_varint(&mut b)?);
                    out.push(prev);
                }
                if !b.is_empty() {
                    return Err(CodecError::TrailingBytes { remaining: b.len() });
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn core(&self) -> Result<&CoreColumns, CodecError> {
        self.core
            .get_or_init(|| {
                let n = self.n_events;
                let raw = self.decode_seg(SEG_TIMES)?;
                let mut b: &[u8] = &raw;
                let mut times = Vec::with_capacity(n.min(1 << 20));
                let mut prev = 0u64;
                for _ in 0..n {
                    prev = prev.wrapping_add(get_varint(&mut b)?);
                    times.push(prev);
                }
                if !b.is_empty() {
                    return Err(CodecError::TrailingBytes { remaining: b.len() });
                }

                let kraw = self.decode_seg(SEG_KINDS)?;
                if kraw.len() != n {
                    return Err(CodecError::UnexpectedEof {
                        needed: n,
                        remaining: kraw.len(),
                    });
                }
                let kinds: Vec<u8> = kraw.to_vec();
                for &t in &kinds {
                    if t > 8 {
                        return Err(CodecError::BadTag {
                            what: "EventKind",
                            tag: t,
                        });
                    }
                }

                let iraw = self.decode_seg(SEG_IDS)?;
                let mut b: &[u8] = &iraw;
                let mut ids = Vec::with_capacity(n.min(1 << 20));
                for &t in &kinds {
                    let a = get_varint(&mut b)?;
                    let bb = if has_two_ids(t) {
                        get_varint(&mut b)?
                    } else {
                        u32::MAX as u64
                    };
                    if a > u32::MAX as u64 || bb > u32::MAX as u64 {
                        return Err(CodecError::LengthOverflow {
                            what: "node-dict-index",
                            len: a.max(bb),
                        });
                    }
                    ids.push((a as u32, bb as u32));
                }
                if !b.is_empty() {
                    return Err(CodecError::TrailingBytes { remaining: b.len() });
                }
                Ok(CoreColumns { times, kinds, ids })
            })
            .as_ref()
            .map_err(|e| e.clone())
    }

    fn weights(&self) -> Result<&[(f32, bool)], CodecError> {
        self.weights
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_WEIGHTS)?;
                let mut b: &[u8] = &raw;
                let mut out = Vec::with_capacity((raw.len() / 5).min(1 << 20));
                while !b.is_empty() {
                    let w = get_f32(&mut b)?;
                    let Some((&flag, rest)) = b.split_first() else {
                        return Err(CodecError::UnexpectedEof {
                            needed: 1,
                            remaining: 0,
                        });
                    };
                    b = rest;
                    out.push((w, flag != 0));
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn key_dict(&self) -> Result<&[String], CodecError> {
        self.key_dict
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_KEY_DICT)?;
                let mut b: &[u8] = &raw;
                let n = get_len(&mut b, "key-dict")?;
                let mut out = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    out.push(get_str(&mut b)?);
                }
                if !b.is_empty() {
                    return Err(CodecError::TrailingBytes { remaining: b.len() });
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn attr_keys(&self) -> Result<&[u32], CodecError> {
        self.attr_keys
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_ATTR_KEYS)?;
                let mut b: &[u8] = &raw;
                let mut out = Vec::with_capacity((raw.len()).min(1 << 20));
                while !b.is_empty() {
                    let idx = get_varint(&mut b)?;
                    if idx > u32::MAX as u64 {
                        return Err(CodecError::LengthOverflow {
                            what: "key-dict-index",
                            len: idx,
                        });
                    }
                    out.push(idx as u32);
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn attr_vals(&self) -> Result<&[AttrValue], CodecError> {
        self.attr_vals
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_ATTR_VALS)?;
                let mut b: &[u8] = &raw;
                let mut out = Vec::new();
                while !b.is_empty() {
                    out.push(get_attr_value(&mut b)?);
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn attr_key_at(&self, ord: usize) -> Result<String, CodecError> {
        let idx = *self
            .attr_keys()?
            .get(ord)
            .ok_or(CodecError::UnexpectedEof {
                needed: ord + 1,
                remaining: 0,
            })?;
        self.key_dict()?
            .get(idx as usize)
            .cloned()
            .ok_or(CodecError::LengthOverflow {
                what: "key-dict-index",
                len: idx as u64,
            })
    }

    fn build_kind(
        &self,
        tag: u8,
        a: NodeId,
        b: Option<NodeId>,
        w_ord: usize,
        ak_ord: usize,
        av_ord: usize,
    ) -> Result<EventKind, CodecError> {
        let two = |b: Option<NodeId>| {
            b.ok_or(CodecError::BadTag {
                what: "EventKind",
                tag,
            })
        };
        let weight = |ord: usize| -> Result<(f32, bool), CodecError> {
            self.weights()?
                .get(ord)
                .copied()
                .ok_or(CodecError::UnexpectedEof {
                    needed: ord + 1,
                    remaining: 0,
                })
        };
        let attr_val = |ord: usize| -> Result<AttrValue, CodecError> {
            self.attr_vals()?
                .get(ord)
                .cloned()
                .ok_or(CodecError::UnexpectedEof {
                    needed: ord + 1,
                    remaining: 0,
                })
        };
        Ok(match tag {
            0 => EventKind::AddNode { id: a },
            1 => EventKind::RemoveNode { id: a },
            2 => {
                let (w, directed) = weight(w_ord)?;
                EventKind::AddEdge {
                    src: a,
                    dst: two(b)?,
                    weight: w,
                    directed,
                }
            }
            3 => EventKind::RemoveEdge {
                src: a,
                dst: two(b)?,
            },
            4 => EventKind::SetEdgeWeight {
                src: a,
                dst: two(b)?,
                weight: weight(w_ord)?.0,
            },
            5 => EventKind::SetNodeAttr {
                id: a,
                key: self.attr_key_at(ak_ord)?,
                value: attr_val(av_ord)?,
            },
            6 => EventKind::RemoveNodeAttr {
                id: a,
                key: self.attr_key_at(ak_ord)?,
            },
            7 => EventKind::SetEdgeAttr {
                src: a,
                dst: two(b)?,
                key: self.attr_key_at(ak_ord)?,
                value: attr_val(av_ord)?,
            },
            8 => EventKind::RemoveEdgeAttr {
                src: a,
                dst: two(b)?,
                key: self.attr_key_at(ak_ord)?,
            },
            t => {
                return Err(CodecError::BadTag {
                    what: "EventKind",
                    tag: t,
                })
            }
        })
    }

    fn materialize(&self, filter: Option<NodeId>) -> Result<Vec<Event>, CodecError> {
        if let Some(nid) = filter {
            // Dictionary miss: nothing past the dictionary is decoded.
            if self.node_dict()?.binary_search(&nid).is_err() {
                return Ok(Vec::new());
            }
        }
        let dict = self.node_dict()?;
        let core = self.core()?;
        let mut out = Vec::with_capacity(if filter.is_some() { 8 } else { self.n_events });
        let (mut w_ord, mut ak_ord, mut av_ord) = (0usize, 0usize, 0usize);
        for i in 0..self.n_events {
            let tag = core.kinds[i];
            let (ia, ib) = core.ids[i];
            let a = dict_node(dict, ia)?;
            let b = if has_two_ids(tag) {
                Some(dict_node(dict, ib)?)
            } else {
                None
            };
            let wanted = match filter {
                None => true,
                Some(nid) => a == nid || b == Some(nid),
            };
            if wanted {
                let kind = self.build_kind(tag, a, b, w_ord, ak_ord, av_ord)?;
                out.push(Event::new(core.times[i], kind));
            }
            if has_weight(tag) {
                w_ord += 1;
            }
            if has_attr_key(tag) {
                ak_ord += 1;
            }
            if has_attr_val(tag) {
                av_ord += 1;
            }
        }
        Ok(out)
    }

    /// Whether `nid` appears in this row's node dictionary (decodes
    /// only the dictionary segment).
    pub fn contains_node(&self, nid: NodeId) -> Result<bool, CodecError> {
        Ok(self.node_dict()?.binary_search(&nid).is_ok())
    }

    /// Events touching `nid`, in order. Decodes the dictionary plus —
    /// only on a dictionary hit — the core columns, and payload
    /// columns only if a touching event carries that payload.
    pub fn events_touching(&self, nid: NodeId) -> Result<Vec<Event>, CodecError> {
        self.materialize(Some(nid))
    }

    /// Decode every column and reassemble the full eventlist.
    ///
    /// Full materialization streams all column cursors in one pass —
    /// no memoized column vectors, no per-event ordinal lookups — so a
    /// cold full replay costs what the row-wise decoder costs plus the
    /// (adaptive) per-segment decompression.
    pub fn to_eventlist(&self) -> Result<Eventlist, CodecError> {
        let dict = self.node_dict()?;
        let key_dict = self.key_dict()?;
        let n = self.n_events;
        let traw = self.decode_seg(SEG_TIMES)?;
        let kraw = self.decode_seg(SEG_KINDS)?;
        let iraw = self.decode_seg(SEG_IDS)?;
        let wraw = self.decode_seg(SEG_WEIGHTS)?;
        let akraw = self.decode_seg(SEG_ATTR_KEYS)?;
        let avraw = self.decode_seg(SEG_ATTR_VALS)?;
        if kraw.len() != n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: kraw.len(),
            });
        }
        let mut tb: &[u8] = &traw;
        let mut ib: &[u8] = &iraw;
        let mut wb: &[u8] = &wraw;
        let mut akb: &[u8] = &akraw;
        let mut avb: &[u8] = &avraw;
        let one = |b: &mut &[u8], dict: &[NodeId]| -> Result<NodeId, CodecError> {
            let idx = get_varint(b)?;
            dict.get(idx as usize)
                .copied()
                .ok_or(CodecError::LengthOverflow {
                    what: "node-dict-index",
                    len: idx,
                })
        };
        let key = |b: &mut &[u8]| -> Result<String, CodecError> {
            let idx = get_varint(b)?;
            key_dict
                .get(idx as usize)
                .cloned()
                .ok_or(CodecError::LengthOverflow {
                    what: "key-dict-index",
                    len: idx,
                })
        };
        let flag = |b: &mut &[u8]| -> Result<bool, CodecError> {
            let Some((&f, rest)) = b.split_first() else {
                return Err(CodecError::UnexpectedEof {
                    needed: 1,
                    remaining: 0,
                });
            };
            *b = rest;
            Ok(f != 0)
        };
        let mut out = Vec::with_capacity(n);
        let mut t = 0u64;
        for &tag in kraw.iter() {
            // Checked, not wrapping: a corrupt gap that overflows the
            // clock is an error, never an out-of-order eventlist.
            t = t
                .checked_add(get_varint(&mut tb)?)
                .ok_or(CodecError::VarintOverflow)?;
            let a = one(&mut ib, dict)?;
            let kind = match tag {
                0 => EventKind::AddNode { id: a },
                1 => EventKind::RemoveNode { id: a },
                2 => EventKind::AddEdge {
                    src: a,
                    dst: one(&mut ib, dict)?,
                    weight: get_f32(&mut wb)?,
                    directed: flag(&mut wb)?,
                },
                3 => EventKind::RemoveEdge {
                    src: a,
                    dst: one(&mut ib, dict)?,
                },
                4 => {
                    let dst = one(&mut ib, dict)?;
                    let weight = get_f32(&mut wb)?;
                    flag(&mut wb)?;
                    EventKind::SetEdgeWeight {
                        src: a,
                        dst,
                        weight,
                    }
                }
                5 => EventKind::SetNodeAttr {
                    id: a,
                    key: key(&mut akb)?,
                    value: get_attr_value(&mut avb)?,
                },
                6 => EventKind::RemoveNodeAttr {
                    id: a,
                    key: key(&mut akb)?,
                },
                7 => {
                    let dst = one(&mut ib, dict)?;
                    EventKind::SetEdgeAttr {
                        src: a,
                        dst,
                        key: key(&mut akb)?,
                        value: get_attr_value(&mut avb)?,
                    }
                }
                8 => {
                    let dst = one(&mut ib, dict)?;
                    EventKind::RemoveEdgeAttr {
                        src: a,
                        dst,
                        key: key(&mut akb)?,
                    }
                }
                bad => {
                    return Err(CodecError::BadTag {
                        what: "EventKind",
                        tag: bad,
                    })
                }
            };
            out.push(Event::new(t, kind));
        }
        if !tb.is_empty() || !ib.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: tb.len() + ib.len(),
            });
        }
        Ok(Eventlist::from_sorted(out))
    }
}

// ----------------------------------------------------------------------
// columnar deltas
// ----------------------------------------------------------------------

fn put_interned_attrs(buf: &mut BytesMut, attrs: &Attrs, keys: &[&str]) {
    put_varint(buf, attrs.len() as u64);
    for (k, v) in attrs.iter() {
        put_varint(buf, dict_idx(keys, &k));
        put_attr_value(buf, v);
    }
}

fn get_interned_attrs(buf: &mut &[u8], keys: &[String]) -> Result<Attrs, CodecError> {
    let n = get_len(buf, "attrs")?;
    let mut pairs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let idx = get_varint(buf)?;
        let k = keys
            .get(idx as usize)
            .cloned()
            .ok_or(CodecError::LengthOverflow {
                what: "key-dict-index",
                len: idx,
            })?;
        pairs.push((k, get_attr_value(buf)?));
    }
    Ok(Attrs::from_pairs(pairs))
}

fn put_record(buf: &mut BytesMut, n: &StaticNode, keys: &[&str]) {
    put_varint(buf, n.edges.len() as u64);
    let mut prev = 0u64;
    for e in &n.edges {
        put_varint(buf, e.nbr.wrapping_sub(prev));
        prev = e.nbr;
        buf.put_u8(e.dir.tag());
        put_f32(buf, e.weight);
        match &e.attrs {
            Some(a) => {
                buf.put_u8(1);
                put_interned_attrs(buf, a, keys);
            }
            None => buf.put_u8(0),
        }
    }
    put_interned_attrs(buf, &n.attrs, keys);
}

fn parse_record(id: NodeId, mut buf: &[u8], keys: &[String]) -> Result<StaticNode, CodecError> {
    let node = parse_record_from(id, &mut buf, keys)?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(node)
}

/// Parse one record from a running cursor; records are
/// self-delimiting, so the caller needs no length column.
fn parse_record_from(id: NodeId, b: &mut &[u8], keys: &[String]) -> Result<StaticNode, CodecError> {
    let n_edges = get_len(b, "edges")?;
    let mut edges = Vec::with_capacity(n_edges.min(1 << 16));
    let mut prev = 0u64;
    for _ in 0..n_edges {
        let nbr = prev.wrapping_add(get_varint(b)?);
        prev = nbr;
        let Some((&dtag, rest)) = b.split_first() else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *b = rest;
        let dir = EdgeDir::from_tag(dtag).ok_or(CodecError::BadTag {
            what: "EdgeDir",
            tag: dtag,
        })?;
        let weight = get_f32(b)?;
        let Some((&has_attrs, rest)) = b.split_first() else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *b = rest;
        let attrs = if has_attrs != 0 {
            Some(Box::new(get_interned_attrs(b, keys)?))
        } else {
            None
        };
        edges.push(Neighbor {
            nbr,
            dir,
            weight,
            attrs,
        });
    }
    let attrs = get_interned_attrs(b, keys)?;
    Ok(StaticNode { id, edges, attrs })
}

/// Serialize a delta in the columnar layout: sorted node-id and
/// record-length columns, interned attribute-key dictionary,
/// concatenated per-node records.
pub fn encode_columnar_delta(d: &Delta) -> Bytes {
    let ids = d.sorted_ids();
    let mut keys: Vec<&str> = Vec::new();
    for n in d.iter() {
        for (k, _) in n.attrs.iter() {
            keys.push(k);
        }
        for e in &n.edges {
            if let Some(a) = &e.attrs {
                for (k, _) in a.iter() {
                    keys.push(k);
                }
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();

    let mut key_dict = BytesMut::new();
    put_varint(&mut key_dict, keys.len() as u64);
    for k in &keys {
        put_str(&mut key_dict, k);
    }

    let mut id_col = BytesMut::with_capacity(ids.len() * 2);
    let mut len_col = BytesMut::with_capacity(ids.len() * 2);
    let mut records = BytesMut::new();
    let mut prev = 0u64;
    for &id in &ids {
        let start = records.len();
        // hgs-lint: allow(no-panic-in-try, "sorted_ids yields only ids present in this delta")
        put_record(&mut records, d.node(id).expect("id from sorted_ids"), &keys);
        put_varint(&mut id_col, id.wrapping_sub(prev));
        prev = id;
        put_varint(&mut len_col, (records.len() - start) as u64);
    }

    // The record and node-id columns carry the bulk of every cold
    // full replay, and the row-wise baseline they compete with stores
    // its rows uncompressed — so they stay raw (zero-copy sub-slices
    // at decode time; `NEVER_COMPRESS`) rather than trading replay
    // wall time for ~20% fewer stored bytes. Store-level whole-row
    // compression can still be layered on when storage is the
    // priority. The length and key-dictionary columns are off the
    // full-replay path, so any saving is welcome there.
    let mut min_save = [1; DELTA_SEGS];
    min_save[SEG_RECORDS] = NEVER_COMPRESS;
    min_save[SEG_NODE_IDS] = NEVER_COMPRESS;
    assemble(
        DELTA_MAGIC,
        ids.len(),
        &[&id_col, &len_col, &key_dict, &records],
        &min_save,
    )
}

/// A parsed columnar delta row: node-id + record-length columns, key
/// dictionary, and record segment, decoded lazily. Supports per-node
/// record extraction without parsing unrelated records, and skips the
/// record segment entirely when the probed node is absent from the
/// id column.
/// Lazily-built record index: each present node id mapped to its
/// record's byte range within the (decoded) record segment.
type RecordIndex = Vec<(NodeId, Range<usize>)>;

#[derive(Debug)]
pub struct ColumnarDelta {
    backing: Bytes,
    n_nodes: usize,
    segs: [Range<usize>; DELTA_SEGS],
    raw_lens: [usize; DELTA_SEGS],
    comp: [bool; DELTA_SEGS],
    index: OnceLock<Result<RecordIndex, CodecError>>,
    key_dict: OnceLock<Result<Vec<String>, CodecError>>,
    records: OnceLock<Result<Bytes, CodecError>>,
}

impl ColumnarDelta {
    /// Parse the header of an encoded row (segments stay compressed).
    pub fn parse(backing: Bytes) -> Result<ColumnarDelta, CodecError> {
        let (n_nodes, segs, raw_lens, comp) =
            parse_header(&backing, DELTA_MAGIC, DELTA_SEGS, "columnar-delta")?;
        Ok(ColumnarDelta {
            backing,
            n_nodes,
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            segs: segs.try_into().expect("segment count checked"),
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            raw_lens: raw_lens.try_into().expect("segment count checked"),
            // hgs-lint: allow(no-panic-in-try, "segment vec length was checked against the fixed column count above")
            comp: comp.try_into().expect("segment count checked"),
            index: OnceLock::new(),
            key_dict: OnceLock::new(),
            records: OnceLock::new(),
        })
    }

    /// Number of node records in the row.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Size of the shared backing buffer.
    pub fn backing_len(&self) -> usize {
        self.backing.len()
    }

    /// Sum of all segments' decompressed lengths (see
    /// [`ColumnarEventlist::raw_len_total`]).
    pub fn raw_len_total(&self) -> usize {
        self.raw_lens.iter().sum()
    }

    fn decode_seg(&self, i: usize) -> Result<Bytes, CodecError> {
        let raw = if self.comp[i] {
            decompress(&self.backing[self.segs[i].clone()])?
        } else {
            // Raw-stored segment: a zero-copy sub-slice of the
            // shared backing buffer.
            self.backing.slice(self.segs[i].clone())
        };
        note_decoded(raw.len());
        Ok(raw)
    }

    fn index(&self) -> Result<&[(NodeId, Range<usize>)], CodecError> {
        self.index
            .get_or_init(|| {
                let ids_raw = self.decode_seg(SEG_NODE_IDS)?;
                let lens_raw = self.decode_seg(SEG_RECORD_LENS)?;
                let mut ib: &[u8] = &ids_raw;
                let mut lb: &[u8] = &lens_raw;
                let mut out = Vec::with_capacity(self.n_nodes.min(1 << 20));
                let mut prev = 0u64;
                let mut off = 0usize;
                for _ in 0..self.n_nodes {
                    prev = prev.wrapping_add(get_varint(&mut ib)?);
                    let len = get_len(&mut lb, "record")?;
                    let end = off.checked_add(len).ok_or(CodecError::LengthOverflow {
                        what: "record",
                        len: len as u64,
                    })?;
                    out.push((prev, off..end));
                    off = end;
                }
                if !ib.is_empty() || !lb.is_empty() {
                    return Err(CodecError::TrailingBytes {
                        remaining: ib.len() + lb.len(),
                    });
                }
                // Record extents must exactly tile the record segment
                // (checked against the peeked raw length, so corrupt
                // indexes are caught before the segment is decoded).
                if off != self.raw_lens[SEG_RECORDS] {
                    return Err(CodecError::LengthOverflow {
                        what: "record-extent",
                        len: off as u64,
                    });
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn key_dict(&self) -> Result<&[String], CodecError> {
        self.key_dict
            .get_or_init(|| {
                let raw = self.decode_seg(SEG_DKEY_DICT)?;
                let mut b: &[u8] = &raw;
                let n = get_len(&mut b, "key-dict")?;
                let mut out = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    out.push(get_str(&mut b)?);
                }
                if !b.is_empty() {
                    return Err(CodecError::TrailingBytes { remaining: b.len() });
                }
                Ok(out)
            })
            .as_ref()
            .map(|v| v.as_slice())
            .map_err(|e| e.clone())
    }

    fn records(&self) -> Result<&Bytes, CodecError> {
        self.records
            .get_or_init(|| self.decode_seg(SEG_RECORDS))
            .as_ref()
            .map_err(|e| e.clone())
    }

    /// Whether a record for `nid` is present (decodes only the index).
    pub fn contains(&self, nid: NodeId) -> Result<bool, CodecError> {
        Ok(self.index()?.binary_search_by_key(&nid, |e| e.0).is_ok())
    }

    /// Extract the record for one node, or `None` if absent. On an
    /// index miss neither the record segment nor the key dictionary is
    /// decoded; on a hit only `nid`'s record slice is parsed.
    pub fn node_record(&self, nid: NodeId) -> Result<Option<StaticNode>, CodecError> {
        let index = self.index()?;
        let Ok(i) = index.binary_search_by_key(&nid, |e| e.0) else {
            return Ok(None);
        };
        let range = index[i].1.clone();
        let records = self.records()?;
        let keys = self.key_dict()?;
        parse_record(nid, &records[range], keys).map(Some)
    }

    /// Decode every record and reassemble the full delta.
    ///
    /// Streams the id and record cursors in lockstep — records are
    /// self-delimiting, so the record-length column is never touched
    /// and a cold full replay pays exactly the row-wise parse plus one
    /// id varint per node.
    pub fn to_delta(&self) -> Result<Delta, CodecError> {
        let keys = self.key_dict()?;
        let iraw = self.decode_seg(SEG_NODE_IDS)?;
        let rraw = self.decode_seg(SEG_RECORDS)?;
        let mut ib: &[u8] = &iraw;
        let mut rb: &[u8] = &rraw;
        let mut d = Delta::with_capacity(self.n_nodes.min(1 << 20));
        let mut prev = 0u64;
        for _ in 0..self.n_nodes {
            prev = prev.wrapping_add(get_varint(&mut ib)?);
            d.insert(parse_record_from(prev, &mut rb, keys)?);
        }
        if !ib.is_empty() || !rb.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: ib.len() + rb.len(),
            });
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_delta, encode_eventlist};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(1, EventKind::AddNode { id: 7 }),
            Event::new(
                2,
                EventKind::AddEdge {
                    src: 7,
                    dst: 8,
                    weight: 0.5,
                    directed: true,
                },
            ),
            Event::new(
                2,
                EventKind::SetNodeAttr {
                    id: 7,
                    key: "k".into(),
                    value: AttrValue::Bool(true),
                },
            ),
            Event::new(
                3,
                EventKind::SetEdgeWeight {
                    src: 7,
                    dst: 8,
                    weight: 9.0,
                },
            ),
            Event::new(
                4,
                EventKind::SetEdgeAttr {
                    src: 7,
                    dst: 8,
                    key: "e".into(),
                    value: AttrValue::Float(0.25),
                },
            ),
            Event::new(
                5,
                EventKind::RemoveEdgeAttr {
                    src: 7,
                    dst: 8,
                    key: "e".into(),
                },
            ),
            Event::new(
                6,
                EventKind::RemoveNodeAttr {
                    id: 7,
                    key: "k".into(),
                },
            ),
            Event::new(7, EventKind::RemoveEdge { src: 7, dst: 8 }),
            Event::new(8, EventKind::RemoveNode { id: 7 }),
            Event::new(9, EventKind::AddNode { id: 40 }),
        ]
    }

    #[test]
    fn eventlist_roundtrip_all_kinds() {
        let el = Eventlist::from_sorted(sample_events());
        let enc = encode_columnar_eventlist(&el);
        let col = ColumnarEventlist::parse(enc).unwrap();
        assert_eq!(col.n_events(), el.len());
        assert_eq!(col.to_eventlist().unwrap(), el);
    }

    #[test]
    fn events_touching_matches_filter_by_node() {
        let el = Eventlist::from_sorted(sample_events());
        let col = ColumnarEventlist::parse(encode_columnar_eventlist(&el)).unwrap();
        for nid in [7u64, 8, 40, 999] {
            let want: Vec<Event> = el.filter_by_node(nid).cloned().collect();
            assert_eq!(col.events_touching(nid).unwrap(), want, "nid {nid}");
        }
    }

    #[test]
    fn dictionary_miss_decodes_only_the_dictionary() {
        let el = Eventlist::from_sorted(sample_events());
        let col = ColumnarEventlist::parse(encode_columnar_eventlist(&el)).unwrap();
        let before = crate::codec::decoded_bytes();
        assert!(col.events_touching(12345).unwrap().is_empty());
        let decoded = crate::codec::decoded_bytes() - before;
        assert!(
            (decoded as usize) <= col.raw_lens[SEG_NODE_DICT],
            "miss decoded {decoded} bytes, dict is {}",
            col.raw_lens[SEG_NODE_DICT]
        );
        assert!((decoded as usize) < col.raw_len_total());
    }

    #[test]
    fn structural_filter_skips_attr_value_column() {
        // Node 40's only event is AddNode: materializing its history
        // must not decompress weights or attribute columns.
        let el = Eventlist::from_sorted(sample_events());
        let col = ColumnarEventlist::parse(encode_columnar_eventlist(&el)).unwrap();
        let before = crate::codec::decoded_bytes();
        assert_eq!(col.events_touching(40).unwrap().len(), 1);
        let decoded = (crate::codec::decoded_bytes() - before) as usize;
        let core: usize = [SEG_NODE_DICT, SEG_TIMES, SEG_KINDS, SEG_IDS]
            .iter()
            .map(|&i| col.raw_lens[i])
            .sum();
        assert!(decoded <= core, "decoded {decoded} > core columns {core}");
    }

    #[test]
    fn empty_eventlist_roundtrip() {
        let el = Eventlist::new();
        let col = ColumnarEventlist::parse(encode_columnar_eventlist(&el)).unwrap();
        assert_eq!(col.to_eventlist().unwrap(), el);
        assert!(col.events_touching(1).unwrap().is_empty());
    }

    fn sample_delta() -> Delta {
        let mut d = Delta::new();
        for i in 0..20u64 {
            d.apply_event(&EventKind::AddEdge {
                src: i,
                dst: (i * 3) % 20,
                weight: i as f32,
                directed: i % 2 == 0,
            });
            d.apply_event(&EventKind::SetNodeAttr {
                id: i,
                key: "entity".into(),
                value: AttrValue::Text(format!("n{i}")),
            });
        }
        d.apply_event(&EventKind::SetEdgeAttr {
            src: 1,
            dst: 3,
            key: "since".into(),
            value: AttrValue::Int(1999),
        });
        d
    }

    #[test]
    fn delta_roundtrip() {
        let d = sample_delta();
        let col = ColumnarDelta::parse(encode_columnar_delta(&d)).unwrap();
        assert_eq!(col.n_nodes(), d.cardinality());
        assert_eq!(col.to_delta().unwrap(), d);
    }

    #[test]
    fn node_record_extracts_single_nodes() {
        let d = sample_delta();
        let col = ColumnarDelta::parse(encode_columnar_delta(&d)).unwrap();
        for nid in 0..20u64 {
            assert_eq!(col.node_record(nid).unwrap().as_ref(), d.node(nid));
        }
        assert_eq!(col.node_record(999).unwrap(), None);
    }

    #[test]
    fn index_miss_skips_record_segment() {
        let d = sample_delta();
        let col = ColumnarDelta::parse(encode_columnar_delta(&d)).unwrap();
        let before = crate::codec::decoded_bytes();
        assert!(!col.contains(999).unwrap());
        assert_eq!(col.node_record(999).unwrap(), None);
        let decoded = (crate::codec::decoded_bytes() - before) as usize;
        assert!(decoded <= col.raw_lens[SEG_NODE_IDS] + col.raw_lens[SEG_RECORD_LENS]);
        assert!(decoded < col.raw_len_total());
    }

    #[test]
    fn empty_delta_roundtrip() {
        let col = ColumnarDelta::parse(encode_columnar_delta(&Delta::new())).unwrap();
        assert_eq!(col.to_delta().unwrap(), Delta::new());
        assert_eq!(col.node_record(0).unwrap(), None);
    }

    #[test]
    fn interning_beats_rowwise_on_repeated_keys() {
        let d = sample_delta();
        let col = encode_columnar_delta(&d);
        let row = encode_delta(&d);
        // The columnar row as a whole is compressed, so it should not
        // be drastically larger than the row-wise encoding.
        assert!(
            col.len() < row.len() * 2,
            "columnar {} vs row-wise {}",
            col.len(),
            row.len()
        );
    }

    #[test]
    fn corrupt_headers_error_not_panic() {
        let el = Eventlist::from_sorted(sample_events());
        let enc = encode_columnar_eventlist(&el);
        // Wrong magic.
        let mut bad = enc.to_vec();
        bad[0] = 0x77;
        assert!(ColumnarEventlist::parse(Bytes::from(bad)).is_err());
        // Row-wise bytes fed to the columnar parser.
        let row = encode_eventlist(&el);
        assert!(ColumnarEventlist::parse(row).is_err());
        // Truncations anywhere must parse-fail or decode-fail.
        for cut in 0..enc.len() {
            let t = enc.slice(..cut);
            if let Ok(col) = ColumnarEventlist::parse(t) {
                let _ = col.to_eventlist();
            }
        }
    }

    #[test]
    fn corrupt_delta_headers_error_not_panic() {
        let enc = encode_columnar_delta(&sample_delta());
        let mut bad = enc.to_vec();
        bad[0] = 0x00;
        assert!(ColumnarDelta::parse(Bytes::from(bad)).is_err());
        for cut in 0..enc.len() {
            let t = enc.slice(..cut);
            if let Ok(col) = ColumnarDelta::parse(t) {
                let _ = col.to_delta();
                let _ = col.node_record(3);
            }
        }
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        // Hand-craft a header claiming a ludicrous event count and a
        // segment whose raw length exceeds MAX_LEN.
        let mut buf = BytesMut::new();
        buf.put_u8(ELIST_MAGIC);
        put_varint(&mut buf, u64::MAX); // event count
        assert!(matches!(
            ColumnarEventlist::parse(buf.freeze()),
            Err(CodecError::LengthOverflow { .. })
        ));

        let mut seg = BytesMut::new();
        put_varint(&mut seg, u64::MAX); // fake raw_len prefix
        let mut buf = BytesMut::new();
        buf.put_u8(ELIST_MAGIC);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, ELIST_SEGS as u64);
        for _ in 0..ELIST_SEGS {
            // Compressed flag set: the raw-length prefix is consulted.
            put_varint(&mut buf, (seg.len() as u64) << 1 | 1);
        }
        for _ in 0..ELIST_SEGS {
            buf.put_slice(&seg);
        }
        assert!(matches!(
            ColumnarEventlist::parse(buf.freeze()),
            Err(CodecError::LengthOverflow { .. })
        ));
    }
}

//! The Δ algebra — Definitions 2–5 and Examples 4–5 of the paper.
//!
//! A [`Delta`] is a set of static graph components (here: [`StaticNode`]
//! descriptions, since the node-centric model folds edges into their
//! endpoint nodes). The algebra provides:
//!
//! * **sum** (`+`, [`Delta::sum_assign`]): id-wise, right-biased
//!   overwrite — `∆1 + ∆2` keeps `∆2`'s description for every id in
//!   both. Non-commutative, associative, `∆ + ∅ = ∆`.
//! * **difference** ([`Delta::difference`]): set difference over
//!   `(id, value)` components — `∆ − ∆ = ∅`, `∆ − ∅ = ∆`.
//! * **intersection** ([`Delta::intersection`]): components present
//!   *and identical* in both — this is the temporal-compression
//!   operator of DeltaGraph/TGI (a tree parent is the intersection of
//!   its children).
//! * **union** ([`Delta::union`]): all components from both (left
//!   biased on conflicting ids).
//!
//! The key reconstruction identity used throughout TGI, which follows
//! from these definitions and is property-tested in this crate:
//!
//! ```text
//! child = parent + (child − parent)        where parent = ∩ children
//! ```
//!
//! A *snapshot* (Example 4) is the delta of the graph state from the
//! empty graph; [`Delta`] therefore doubles as HGS's in-memory graph
//! state representation, with [`Delta::apply_event`] implementing the
//! event semantics.

use std::sync::Arc;

use crate::error::DeltaError;
use crate::event::{Event, EventKind};
use crate::hash::FxHashMap;
use crate::node::{Neighbor, StaticNode};
use crate::types::{EdgeDir, NodeId};

/// A set of static node descriptions, keyed by node-id.
///
/// Node descriptions are stored behind [`Arc`]s with copy-on-write
/// mutation: cloning a delta, summing one into another
/// ([`Delta::sum_assign`]) and the TGI planner's clone-at-divergence
/// materialization all share descriptions by reference count, and a
/// description is deep-copied only when a mutation actually touches it
/// ([`Arc::make_mut`]). The public API is value-oriented throughout —
/// the sharing is invisible except as speed.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    nodes: FxHashMap<NodeId, Arc<StaticNode>>,
}

impl PartialEq for Delta {
    fn eq(&self, other: &Delta) -> bool {
        self.nodes.len() == other.nodes.len()
            && self.nodes.iter().all(|(id, n)| {
                other
                    .nodes
                    .get(id)
                    .is_some_and(|m| Arc::ptr_eq(n, m) || n == m)
            })
    }
}

/// Unwrap a node out of its `Arc`, cloning only if it is shared.
fn unwrap_node(node: Arc<StaticNode>) -> StaticNode {
    Arc::try_unwrap(node).unwrap_or_else(|shared| (*shared).clone())
}

impl Delta {
    /// The empty delta (`∅`).
    pub fn new() -> Delta {
        Delta {
            nodes: FxHashMap::default(),
        }
    }

    /// Pre-sized empty delta.
    pub fn with_capacity(n: usize) -> Delta {
        let mut nodes = FxHashMap::default();
        nodes.reserve(n);
        Delta { nodes }
    }

    /// Number of node descriptions — the paper's *cardinality* is the
    /// unique component count.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.nodes.len()
    }

    /// The paper's *size*: total number of static node or edge
    /// descriptions contained (each node counts 1 plus one per
    /// edge-list entry).
    pub fn size(&self) -> usize {
        self.nodes.values().map(|n| 1 + n.edges.len()).sum()
    }

    /// Approximate serialized footprint in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.nodes.values().map(|n| n.weight_bytes()).sum()
    }

    /// True when no components are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node description.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<&StaticNode> {
        self.nodes.get(&id).map(|n| n.as_ref())
    }

    /// Mutable node lookup (copy-on-write: a shared description is
    /// deep-copied here, exactly once).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut StaticNode> {
        self.nodes.get_mut(&id).map(Arc::make_mut)
    }

    /// Whether a node description for `id` is present.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Insert (or replace) a node description.
    pub fn insert(&mut self, node: StaticNode) -> Option<StaticNode> {
        self.nodes.insert(node.id, Arc::new(node)).map(unwrap_node)
    }

    /// Remove a node description.
    pub fn remove(&mut self, id: NodeId) -> Option<StaticNode> {
        self.nodes.remove(&id).map(unwrap_node)
    }

    /// Iterate over node descriptions (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &StaticNode> {
        self.nodes.values().map(|n| n.as_ref())
    }

    /// Iterate over node ids (arbitrary order).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Node ids in sorted order (deterministic walks for tests and
    /// partitioning).
    pub fn sorted_ids(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Drain into a plain id-to-description map (shared descriptions
    /// are deep-copied out of their `Arc`s).
    pub fn into_nodes(self) -> FxHashMap<NodeId, StaticNode> {
        self.nodes
            .into_iter()
            .map(|(id, n)| (id, unwrap_node(n)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Algebra (Definitions 4 & 5)
    // ------------------------------------------------------------------

    /// `self ← self + other` (Definition 4): for ids in both, `other`'s
    /// description wins; ids present in only one side are kept.
    /// Descriptions are shared by reference count, not deep-copied.
    pub fn sum_assign(&mut self, other: &Delta) {
        self.nodes.reserve(other.nodes.len());
        for (id, n) in &other.nodes {
            self.nodes.insert(*id, Arc::clone(n));
        }
    }

    /// Owned variant of [`Delta::sum_assign`] that avoids cloning the
    /// right-hand side.
    pub fn sum_assign_owned(&mut self, other: Delta) {
        self.nodes.reserve(other.nodes.len());
        for (id, n) in other.nodes {
            self.nodes.insert(id, n);
        }
    }

    /// `self + other` (Definition 4).
    pub fn sum(&self, other: &Delta) -> Delta {
        let mut out = self.clone();
        out.sum_assign(other);
        out
    }

    /// Set difference over `(id, value)` components: node descriptions
    /// of `self` that are absent from `other` *or differ* from
    /// `other`'s description for the same id.
    pub fn difference(&self, other: &Delta) -> Delta {
        let mut out = Delta::new();
        for (id, n) in &self.nodes {
            let same = other
                .nodes
                .get(id)
                .is_some_and(|m| Arc::ptr_eq(n, m) || n == m);
            if !same {
                out.nodes.insert(*id, Arc::clone(n));
            }
        }
        out
    }

    /// Components present and identical in both (Definition 5).
    pub fn intersection(&self, other: &Delta) -> Delta {
        // Iterate the smaller side.
        let (small, big) = if self.nodes.len() <= other.nodes.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Delta::new();
        for (id, n) in &small.nodes {
            let same = big
                .nodes
                .get(id)
                .is_some_and(|m| Arc::ptr_eq(n, m) || n == m);
            if same {
                out.nodes.insert(*id, Arc::clone(n));
            }
        }
        out
    }

    /// Intersection over many deltas; the parent construction of the
    /// TGI tree. Returns `∅` for an empty input.
    pub fn intersection_many(deltas: &[&Delta]) -> Delta {
        match deltas {
            [] => Delta::new(),
            [first, rest @ ..] => {
                let mut acc = (*first).clone();
                for d in rest {
                    acc = acc.intersection(d);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// All components from both; on id conflicts with differing values,
    /// `self`'s description is kept (Definition 5 leaves the bias
    /// unspecified; TGI only unions disjoint partitions).
    pub fn union(&self, other: &Delta) -> Delta {
        let mut out = other.clone();
        for (id, n) in &self.nodes {
            out.nodes.insert(*id, Arc::clone(n));
        }
        out
    }

    /// Restrict to node ids selected by the predicate — the paper's
    /// *partitioned snapshot* (Example 5).
    pub fn restrict<F: Fn(NodeId) -> bool>(&self, keep: F) -> Delta {
        let mut out = Delta::new();
        for (id, n) in &self.nodes {
            if keep(*id) {
                out.nodes.insert(*id, Arc::clone(n));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Event application (graph-state semantics)
    // ------------------------------------------------------------------

    /// Apply one event to this delta viewed as a graph state.
    ///
    /// The semantics are *forgiving* in the way real event traces
    /// require (the paper's Wikipedia trace contains, e.g., edges whose
    /// endpoints were never explicitly added): missing endpoints are
    /// implicitly created, duplicate additions are overwrites, and
    /// removals of absent components are no-ops. The strict variant
    /// [`Delta::apply_event_strict`] reports those anomalies instead.
    pub fn apply_event(&mut self, kind: &EventKind) {
        let _ = self.apply_event_impl(kind, false);
    }

    /// Apply one event, returning an error on referencing anomalies
    /// instead of repairing them. The state is still left consistent
    /// (failed applications may partially repair, mirroring the
    /// forgiving path).
    pub fn apply_event_strict(&mut self, kind: &EventKind) -> Result<(), DeltaError> {
        self.apply_event_impl(kind, true)
    }

    fn apply_event_impl(&mut self, kind: &EventKind, strict: bool) -> Result<(), DeltaError> {
        match kind {
            EventKind::AddNode { id } => {
                if self.nodes.contains_key(id) {
                    if strict {
                        return Err(DeltaError::AlreadyExists {
                            what: "node",
                            id: *id,
                        });
                    }
                } else {
                    self.nodes.insert(*id, Arc::new(StaticNode::new(*id)));
                }
            }
            EventKind::RemoveNode { id } => {
                match self.nodes.remove(id) {
                    Some(node) => {
                        // Scrub reverse entries so no dangling edges remain.
                        for nbr in node.all_neighbors() {
                            if let Some(n) = self.nodes.get_mut(&nbr) {
                                Arc::make_mut(n).remove_all_edges_to(*id);
                            }
                        }
                    }
                    None if strict => {
                        return Err(DeltaError::UnknownNode {
                            node: *id,
                            context: "RemoveNode",
                        })
                    }
                    None => {}
                }
            }
            EventKind::AddEdge {
                src,
                dst,
                weight,
                directed,
            } => {
                let missing_src = !self.nodes.contains_key(src);
                let missing_dst = !self.nodes.contains_key(dst);
                if strict && (missing_src || missing_dst) {
                    let node = if missing_src { *src } else { *dst };
                    return Err(DeltaError::UnknownNode {
                        node,
                        context: "AddEdge",
                    });
                }
                let (d_src, d_dst) = if *directed {
                    (EdgeDir::Out, EdgeDir::In)
                } else {
                    (EdgeDir::Both, EdgeDir::Both)
                };
                Arc::make_mut(
                    self.nodes
                        .entry(*src)
                        .or_insert_with(|| Arc::new(StaticNode::new(*src))),
                )
                .insert_edge(Neighbor::weighted(*dst, d_src, *weight));
                if src != dst {
                    Arc::make_mut(
                        self.nodes
                            .entry(*dst)
                            .or_insert_with(|| Arc::new(StaticNode::new(*dst))),
                    )
                    .insert_edge(Neighbor::weighted(*src, d_dst, *weight));
                }
            }
            EventKind::RemoveEdge { src, dst } => {
                let mut found = false;
                if let Some(n) = self.nodes.get_mut(src) {
                    found |= Arc::make_mut(n).remove_all_edges_to(*dst) > 0;
                }
                if src != dst {
                    if let Some(n) = self.nodes.get_mut(dst) {
                        found |= Arc::make_mut(n).remove_all_edges_to(*src) > 0;
                    }
                }
                if strict && !found {
                    return Err(DeltaError::UnknownEdge {
                        src: *src,
                        dst: *dst,
                        context: "RemoveEdge",
                    });
                }
            }
            EventKind::SetEdgeWeight { src, dst, weight } => {
                let mut found = false;
                for (a, b) in [(*src, *dst), (*dst, *src)] {
                    if let Some(n) = self.nodes.get_mut(&a) {
                        if n.edges.iter().any(|e| e.nbr == b) {
                            for e in Arc::make_mut(n).edges.iter_mut().filter(|e| e.nbr == b) {
                                e.weight = *weight;
                                found = true;
                            }
                        }
                    }
                    if src == dst {
                        break;
                    }
                }
                if strict && !found {
                    return Err(DeltaError::UnknownEdge {
                        src: *src,
                        dst: *dst,
                        context: "SetEdgeWeight",
                    });
                }
            }
            EventKind::SetNodeAttr { id, key, value } => match self.nodes.get_mut(id) {
                Some(n) => {
                    Arc::make_mut(n).attrs.set(key.clone(), value.clone());
                }
                None if strict => {
                    return Err(DeltaError::UnknownNode {
                        node: *id,
                        context: "SetNodeAttr",
                    })
                }
                None => {
                    let mut n = StaticNode::new(*id);
                    n.attrs.set(key.clone(), value.clone());
                    self.nodes.insert(*id, Arc::new(n));
                }
            },
            EventKind::RemoveNodeAttr { id, key } => {
                let removed = self
                    .nodes
                    .get_mut(id)
                    .filter(|n| n.attrs.get(key).is_some())
                    .and_then(|n| Arc::make_mut(n).attrs.remove(key))
                    .is_some();
                if strict && !removed {
                    return Err(DeltaError::UnknownNode {
                        node: *id,
                        context: "RemoveNodeAttr",
                    });
                }
            }
            EventKind::SetEdgeAttr {
                src,
                dst,
                key,
                value,
            } => {
                let mut found = false;
                for (a, b) in [(*src, *dst), (*dst, *src)] {
                    if let Some(n) = self.nodes.get_mut(&a) {
                        if n.edges.iter().any(|e| e.nbr == b) {
                            for e in Arc::make_mut(n).edges.iter_mut().filter(|e| e.nbr == b) {
                                e.set_attr(key.clone(), value.clone());
                                found = true;
                            }
                        }
                    }
                    if src == dst {
                        break;
                    }
                }
                if strict && !found {
                    return Err(DeltaError::UnknownEdge {
                        src: *src,
                        dst: *dst,
                        context: "SetEdgeAttr",
                    });
                }
            }
            EventKind::RemoveEdgeAttr { src, dst, key } => {
                let mut found = false;
                for (a, b) in [(*src, *dst), (*dst, *src)] {
                    if let Some(n) = self.nodes.get_mut(&a) {
                        if n.edges.iter().any(|e| e.nbr == b && e.attrs.is_some()) {
                            for e in Arc::make_mut(n).edges.iter_mut().filter(|e| e.nbr == b) {
                                found |= e.remove_attr(key).is_some();
                            }
                        }
                    }
                    if src == dst {
                        break;
                    }
                }
                if strict && !found {
                    return Err(DeltaError::UnknownEdge {
                        src: *src,
                        dst: *dst,
                        context: "RemoveEdgeAttr",
                    });
                }
            }
        }
        Ok(())
    }

    /// Apply a run of events in order.
    pub fn apply_events<'a, I: IntoIterator<Item = &'a Event>>(&mut self, events: I) {
        for e in events {
            self.apply_event(&e.kind);
        }
    }

    /// Replay a full event history into a snapshot at time `t`
    /// (events with `time <= t` are applied). This is the reference
    /// implementation every index in this repo is validated against.
    pub fn snapshot_by_replay(events: &[Event], t: crate::types::Time) -> Delta {
        let mut d = Delta::new();
        for e in events {
            if e.time > t {
                break;
            }
            d.apply_event(&e.kind);
        }
        d
    }

    /// Total number of edges in this delta viewed as a graph state
    /// (each undirected/directed edge counted once).
    pub fn edge_count(&self) -> usize {
        let twice: usize = self
            .nodes
            .values()
            .map(|n| {
                n.edges
                    .iter()
                    .filter(|e| e.nbr != n.id) // self loops handled below
                    .count()
                    + 2 * n.edges.iter().filter(|e| e.nbr == n.id).count()
            })
            .sum();
        twice / 2
    }
}

impl FromIterator<StaticNode> for Delta {
    fn from_iter<I: IntoIterator<Item = StaticNode>>(iter: I) -> Delta {
        let mut d = Delta::new();
        for n in iter {
            d.insert(n);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    fn node_with_edge(id: NodeId, nbr: NodeId) -> StaticNode {
        let mut n = StaticNode::new(id);
        n.insert_edge(Neighbor::new(nbr, EdgeDir::Both));
        n
    }

    #[test]
    fn sum_right_bias_and_identity() {
        let mut d1: Delta = vec![node_with_edge(1, 2), StaticNode::new(3)]
            .into_iter()
            .collect();
        let d2: Delta = vec![node_with_edge(1, 9)].into_iter().collect();
        d1.sum_assign(&d2);
        assert_eq!(d1.node(1).unwrap().edges[0].nbr, 9, "right side wins");
        assert!(d1.contains(3));
        // identity
        let d = d1.clone();
        d1.sum_assign(&Delta::new());
        assert_eq!(d1, d);
    }

    #[test]
    fn sum_is_associative() {
        let a: Delta = vec![node_with_edge(1, 2)].into_iter().collect();
        let b: Delta = vec![node_with_edge(1, 3), StaticNode::new(2)]
            .into_iter()
            .collect();
        let c: Delta = vec![StaticNode::new(1)].into_iter().collect();
        let left = a.sum(&b).sum(&c);
        let right = a.sum(&b.sum(&c));
        assert_eq!(left, right);
    }

    #[test]
    fn difference_laws() {
        let d: Delta = vec![node_with_edge(1, 2), StaticNode::new(3)]
            .into_iter()
            .collect();
        assert!(d.difference(&d).is_empty(), "∆ − ∆ = ∅");
        assert_eq!(d.difference(&Delta::new()), d, "∆ − ∅ = ∆");
    }

    #[test]
    fn intersection_requires_identical_value() {
        let a: Delta = vec![node_with_edge(1, 2), StaticNode::new(3)]
            .into_iter()
            .collect();
        let b: Delta = vec![node_with_edge(1, 2), node_with_edge(3, 7)]
            .into_iter()
            .collect();
        let i = a.intersection(&b);
        assert!(i.contains(1), "identical node kept");
        assert!(!i.contains(3), "differing node dropped");
        assert!(a.intersection(&Delta::new()).is_empty(), "∆ ∩ ∅ = ∅");
    }

    #[test]
    fn reconstruction_identity() {
        // child = parent + (child − parent) for parent = ∩ children.
        let c1: Delta = vec![
            node_with_edge(1, 2),
            node_with_edge(2, 1),
            StaticNode::new(5),
        ]
        .into_iter()
        .collect();
        let mut c2 = c1.clone();
        c2.apply_event(&EventKind::AddEdge {
            src: 5,
            dst: 1,
            weight: 1.0,
            directed: false,
        });
        let parent = c1.intersection(&c2);
        for child in [&c1, &c2] {
            let derived = child.difference(&parent);
            let rebuilt = parent.sum(&derived);
            assert_eq!(&rebuilt, child);
        }
    }

    #[test]
    fn union_keeps_both() {
        let a: Delta = vec![StaticNode::new(1)].into_iter().collect();
        let b: Delta = vec![StaticNode::new(2)].into_iter().collect();
        let u = a.union(&b);
        assert!(u.contains(1) && u.contains(2));
        assert_eq!(a.union(&Delta::new()), a, "∆ ∪ ∅ = ∆");
    }

    #[test]
    fn cardinality_and_size() {
        let d: Delta = vec![node_with_edge(1, 2), node_with_edge(2, 1)]
            .into_iter()
            .collect();
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.size(), 4, "2 nodes + 2 edge entries");
    }

    #[test]
    fn apply_add_edge_creates_both_entries() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddNode { id: 1 });
        d.apply_event(&EventKind::AddNode { id: 2 });
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 2.0,
            directed: false,
        });
        assert!(d.node(1).unwrap().has_neighbor(2));
        assert!(d.node(2).unwrap().has_neighbor(1));
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn apply_directed_edge_sets_directions() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: true,
        });
        assert_eq!(d.node(1).unwrap().edges[0].dir, EdgeDir::Out);
        assert_eq!(d.node(2).unwrap().edges[0].dir, EdgeDir::In);
    }

    #[test]
    fn remove_node_scrubs_reverse_edges() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: false,
        });
        d.apply_event(&EventKind::RemoveNode { id: 2 });
        assert!(!d.contains(2));
        assert_eq!(d.node(1).unwrap().degree(), 0, "dangling edge scrubbed");
    }

    #[test]
    fn self_loop_single_entry() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 3,
            dst: 3,
            weight: 1.0,
            directed: false,
        });
        assert_eq!(d.node(3).unwrap().degree(), 1);
        assert_eq!(d.edge_count(), 1);
        d.apply_event(&EventKind::RemoveEdge { src: 3, dst: 3 });
        assert_eq!(d.node(3).unwrap().degree(), 0);
    }

    #[test]
    fn attr_events() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddNode { id: 1 });
        d.apply_event(&EventKind::SetNodeAttr {
            id: 1,
            key: "label".into(),
            value: AttrValue::Text("Author".into()),
        });
        assert_eq!(
            d.node(1)
                .unwrap()
                .attrs
                .get("label")
                .and_then(|v| v.as_text()),
            Some("Author")
        );
        d.apply_event(&EventKind::RemoveNodeAttr {
            id: 1,
            key: "label".into(),
        });
        assert!(d.node(1).unwrap().attrs.is_empty());
    }

    #[test]
    fn edge_attr_events_touch_both_entries() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: false,
        });
        d.apply_event(&EventKind::SetEdgeAttr {
            src: 1,
            dst: 2,
            key: "kind".into(),
            value: AttrValue::Text("cites".into()),
        });
        for (a, b) in [(1, 2), (2, 1)] {
            let n = d.node(a).unwrap();
            let e = n.edges.iter().find(|e| e.nbr == b).unwrap();
            assert_eq!(e.attr("kind").and_then(|v| v.as_text()), Some("cites"));
        }
    }

    #[test]
    fn strict_mode_reports_anomalies() {
        let mut d = Delta::new();
        assert!(d
            .apply_event_strict(&EventKind::RemoveNode { id: 4 })
            .is_err());
        assert!(d
            .apply_event_strict(&EventKind::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0,
                directed: false
            })
            .is_err());
        d.apply_event(&EventKind::AddNode { id: 1 });
        assert!(d.apply_event_strict(&EventKind::AddNode { id: 1 }).is_err());
    }

    #[test]
    fn forgiving_mode_creates_endpoints() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 8,
            dst: 9,
            weight: 1.0,
            directed: false,
        });
        assert!(d.contains(8) && d.contains(9));
    }

    #[test]
    fn snapshot_by_replay_respects_time() {
        let events = vec![
            Event::new(1, EventKind::AddNode { id: 1 }),
            Event::new(5, EventKind::AddNode { id: 2 }),
        ];
        let s = Delta::snapshot_by_replay(&events, 3);
        assert!(s.contains(1) && !s.contains(2));
    }

    #[test]
    fn restrict_is_partitioned_snapshot() {
        let d: Delta = (0..10).map(StaticNode::new).collect();
        let p = d.restrict(|id| id % 2 == 0);
        assert_eq!(p.cardinality(), 5);
    }

    #[test]
    fn set_edge_weight_updates_both_sides() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: false,
        });
        d.apply_event(&EventKind::SetEdgeWeight {
            src: 2,
            dst: 1,
            weight: 7.5,
        });
        assert_eq!(d.node(1).unwrap().edges[0].weight, 7.5);
        assert_eq!(d.node(2).unwrap().edges[0].weight, 7.5);
    }
}

//! Secondary temporal index rows: per-term change-point lists.
//!
//! A *term* is either an attribute `(key, value)` pair (kind
//! [`TERM_KIND_VALUE`]) or a bare attribute key (kind [`TERM_KIND_KEY`]).
//! For every timespan the build emits one row per term seen in (or
//! carried into) the span:
//!
//! * value-term rows hold `(time, nid, became)` change points — the
//!   interval endpoints at which a node started or stopped holding
//!   `key == value`;
//! * key-term rows hold `(time, nid, Option<AttrValue>)` set points —
//!   the full per-node value history of `key`, `None` meaning the key
//!   was cleared (attribute removal or node removal).
//!
//! Rows are **self-contained per span**: the state carried in from
//! earlier spans is replayed as change points stamped at the span's
//! start time and flagged `carry`, so a point query touches exactly one
//! `(term, tsid)` row. Cross-span history queries concatenate rows and
//! drop the carry points (they duplicate transitions already recorded
//! in earlier spans).
//!
//! The wire format mirrors the version-chain codec: a varint count
//! followed by delta-encoded times, varint node-ids and a flag byte
//! (plus the optional value for key-term rows). Decoders feed the whole
//! blob to the crate-wide decoded-byte counter before parsing, reject
//! trailing bytes, and never panic on malformed input.

use bytes::{Bytes, BytesMut};

use crate::attr::AttrValue;
use crate::codec::{
    get_attr_value, get_len, get_varint, note_decoded, put_attr_value, put_str, put_varint,
};
use crate::error::CodecError;
use crate::hash::FxHashSet;
use crate::types::{NodeId, Time};

/// Term kind tag for attribute `(key, value)` membership rows.
pub const TERM_KIND_VALUE: u8 = 0;
/// Term kind tag for bare attribute-key value-history rows.
pub const TERM_KIND_KEY: u8 = 1;

/// One endpoint of a `key == value` membership interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermPoint {
    /// Event time of the transition (span start time for carry points).
    pub time: Time,
    /// Node whose membership changed.
    pub nid: NodeId,
    /// True for points that replay state carried in from earlier spans.
    pub carry: bool,
    /// True when the node started matching the term, false when it
    /// stopped.
    pub became: bool,
}

/// One set point in the per-key value history of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyPoint {
    /// Event time of the set/clear (span start time for carry points).
    pub time: Time,
    /// Node whose attribute changed.
    pub nid: NodeId,
    /// True for points that replay state carried in from earlier spans.
    pub carry: bool,
    /// New value of the key; `None` means the key was cleared.
    pub value: Option<AttrValue>,
}

/// Serialized bytes identifying a `(key, value)` term. Length-prefixed
/// so distinct `(key, value)` pairs never collide byte-wise.
pub fn value_term(key: &str, value: &AttrValue) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_str(&mut buf, key);
    put_attr_value(&mut buf, value);
    buf.to_vec()
}

/// Serialized bytes identifying a bare attribute-key term.
pub fn key_term(key: &str) -> Vec<u8> {
    key.as_bytes().to_vec()
}

const CARRY_FLAG: u64 = 0b10;
const TRUTH_FLAG: u64 = 0b01;

/// Encode a value-term change-point row. Points must be sorted by time
/// (carry points first; they share the span start time).
pub fn encode_term_points(points: &[TermPoint]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + points.len() * 4);
    put_varint(&mut buf, points.len() as u64);
    let mut prev_time = 0u64;
    for p in points {
        put_varint(&mut buf, p.time.wrapping_sub(prev_time));
        prev_time = p.time;
        put_varint(&mut buf, p.nid);
        let flags = (u64::from(p.carry) << 1) | u64::from(p.became);
        put_varint(&mut buf, flags);
    }
    buf.freeze()
}

/// Decode a value-term change-point row.
pub fn decode_term_points(buf: &[u8]) -> Result<Vec<TermPoint>, CodecError> {
    note_decoded(buf.len());
    let mut buf = buf;
    let n = get_len(&mut buf, "term points")?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut time = 0u64;
    for _ in 0..n {
        time = time.wrapping_add(get_varint(&mut buf)?);
        let nid = get_varint(&mut buf)?;
        let flags = get_varint(&mut buf)?;
        if flags & !(CARRY_FLAG | TRUTH_FLAG) != 0 {
            return Err(CodecError::BadTag {
                what: "term point flags",
                tag: (flags & 0xff) as u8,
            });
        }
        out.push(TermPoint {
            time,
            nid,
            carry: flags & CARRY_FLAG != 0,
            became: flags & TRUTH_FLAG != 0,
        });
    }
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(out)
}

/// Encode a key-term set-point row. Points must be sorted by time
/// (carry points first; they share the span start time).
pub fn encode_key_points(points: &[KeyPoint]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + points.len() * 8);
    put_varint(&mut buf, points.len() as u64);
    let mut prev_time = 0u64;
    for p in points {
        put_varint(&mut buf, p.time.wrapping_sub(prev_time));
        prev_time = p.time;
        put_varint(&mut buf, p.nid);
        let flags = (u64::from(p.carry) << 1) | u64::from(p.value.is_some());
        put_varint(&mut buf, flags);
        if let Some(v) = &p.value {
            put_attr_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Decode a key-term set-point row.
pub fn decode_key_points(buf: &[u8]) -> Result<Vec<KeyPoint>, CodecError> {
    note_decoded(buf.len());
    let mut buf = buf;
    let n = get_len(&mut buf, "key points")?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut time = 0u64;
    for _ in 0..n {
        time = time.wrapping_add(get_varint(&mut buf)?);
        let nid = get_varint(&mut buf)?;
        let flags = get_varint(&mut buf)?;
        if flags & !(CARRY_FLAG | TRUTH_FLAG) != 0 {
            return Err(CodecError::BadTag {
                what: "key point flags",
                tag: (flags & 0xff) as u8,
            });
        }
        let value = if flags & TRUTH_FLAG != 0 {
            Some(get_attr_value(&mut buf)?)
        } else {
            None
        };
        out.push(KeyPoint {
            time,
            nid,
            carry: flags & CARRY_FLAG != 0,
            value,
        });
    }
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(out)
}

/// Replay a value-term row up to (and including) `t`, returning the
/// sorted node-ids matching the term at `t`. The cut point is found by
/// binary search; only the prefix of points at or before `t` is
/// replayed.
pub fn matching_at(points: &[TermPoint], t: Time) -> Vec<NodeId> {
    let cut = points.partition_point(|p| p.time <= t);
    let mut set = FxHashSet::default();
    for p in &points[..cut] {
        if p.became {
            set.insert(p.nid);
        } else {
            set.remove(&p.nid);
        }
    }
    let mut out: Vec<NodeId> = set.into_iter().collect();
    out.sort_unstable();
    out
}

/// In-memory weight of a decoded value-term row, for cache accounting.
pub fn term_points_weight(points: &[TermPoint]) -> usize {
    std::mem::size_of::<Vec<TermPoint>>() + std::mem::size_of_val(points)
}

/// In-memory weight of a decoded key-term row, for cache accounting.
pub fn key_points_weight(points: &[KeyPoint]) -> usize {
    std::mem::size_of::<Vec<KeyPoint>>()
        + points
            .iter()
            .map(|p| {
                std::mem::size_of::<KeyPoint>()
                    + p.value.as_ref().map_or(0, AttrValue::weight_bytes)
            })
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_term_points() -> Vec<TermPoint> {
        vec![
            TermPoint {
                time: 10,
                nid: 1,
                carry: true,
                became: true,
            },
            TermPoint {
                time: 10,
                nid: 7,
                carry: true,
                became: true,
            },
            TermPoint {
                time: 12,
                nid: 7,
                carry: false,
                became: false,
            },
            TermPoint {
                time: 15,
                nid: u64::MAX,
                carry: false,
                became: true,
            },
        ]
    }

    #[test]
    fn term_points_roundtrip() {
        let pts = sample_term_points();
        let enc = encode_term_points(&pts);
        assert_eq!(decode_term_points(&enc).unwrap(), pts);
    }

    #[test]
    fn key_points_roundtrip() {
        let pts = vec![
            KeyPoint {
                time: 10,
                nid: 3,
                carry: true,
                value: Some(AttrValue::Text("Author".into())),
            },
            KeyPoint {
                time: 11,
                nid: 3,
                carry: false,
                value: Some(AttrValue::Int(-4)),
            },
            KeyPoint {
                time: 19,
                nid: 3,
                carry: false,
                value: None,
            },
        ];
        let enc = encode_key_points(&pts);
        assert_eq!(decode_key_points(&enc).unwrap(), pts);
    }

    #[test]
    fn empty_rows_roundtrip() {
        assert_eq!(decode_term_points(&encode_term_points(&[])).unwrap(), []);
        assert_eq!(decode_key_points(&encode_key_points(&[])).unwrap(), []);
    }

    #[test]
    fn matching_replays_prefix_only() {
        let pts = sample_term_points();
        assert_eq!(matching_at(&pts, 9), Vec::<NodeId>::new());
        assert_eq!(matching_at(&pts, 10), vec![1, 7]);
        assert_eq!(matching_at(&pts, 12), vec![1]);
        assert_eq!(matching_at(&pts, 99), vec![1, u64::MAX]);
    }

    #[test]
    fn truncated_rows_error_without_panic() {
        let pts = sample_term_points();
        let enc = encode_term_points(&pts);
        for cut in 1..enc.len() {
            assert!(decode_term_points(&enc[..cut]).is_err(), "cut {cut}");
        }
        let kp = vec![KeyPoint {
            time: 4,
            nid: 9,
            carry: false,
            value: Some(AttrValue::Text("x".into())),
        }];
        let enc = encode_key_points(&kp);
        for cut in 1..enc.len() {
            assert!(decode_key_points(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode_term_points(&sample_term_points()).to_vec();
        enc.push(0);
        assert!(matches!(
            decode_term_points(&enc),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn bad_flags_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 5); // time
        put_varint(&mut buf, 2); // nid
        put_varint(&mut buf, 0b100); // unknown flag bit
        assert!(matches!(
            decode_term_points(&buf),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn value_terms_never_collide() {
        // Length prefixes keep (key, value) splits unambiguous.
        let a = value_term("ab", &AttrValue::Text("c".into()));
        let b = value_term("a", &AttrValue::Text("bc".into()));
        assert_ne!(a, b);
    }

    #[test]
    fn decoding_counts_bytes() {
        let enc = encode_term_points(&sample_term_points());
        let before = crate::codec::decoded_bytes();
        decode_term_points(&enc).unwrap();
        assert_eq!(crate::codec::decoded_bytes() - before, enc.len() as u64);
    }
}

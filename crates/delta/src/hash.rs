//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! Node identifiers dominate every hot path in HGS (delta sums, snapshot
//! reconstruction, partition maps). SipHash — the standard library
//! default — is needlessly slow for `u64` keys, so we bundle an
//! implementation of the well-known FxHash algorithm (the multiply-xor
//! hash used by rustc) rather than pulling in an extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: a very fast hash for short keys, not HashDoS-resistant.
/// HGS maps are keyed by internally generated node-ids, so DoS
/// resistance is irrelevant here.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // hgs-lint: allow(no-panic-in-try, "chunks_exact(8) yields exactly 8-byte slices")
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` to a well-mixed `u64`; used for stateless
/// node-id -> shard assignments where constructing a `Hasher` would be
/// overkill.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    // splitmix64 finalizer: full-avalanche mixing of the input.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths with zero padding still mix length-dependent
        // chunks; just check determinism and non-trivial output.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }

    #[test]
    fn hash_u64_mixes_low_bits() {
        // Consecutive inputs must not map to consecutive buckets.
        let spread: FxHashSet<u64> = (0..64u64).map(|i| hash_u64(i) % 8).collect();
        assert!(spread.len() > 4, "low-bit spread too poor: {spread:?}");
    }
}

//! Events and eventlists — Examples 1–3 of the paper's delta framework.

use crate::attr::AttrValue;
use crate::types::{NodeId, Time, TimeRange};

/// The payload of an atomic change to the graph (Example 1).
///
/// Changes are either structural (node/edge addition and deletion) or
/// attribute-level (set / remove an attribute value on a node or edge).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A node appears.
    AddNode { id: NodeId },
    /// A node (and implicitly all its incident edges) disappears.
    RemoveNode { id: NodeId },
    /// An edge appears. `directed == false` stores `Both` entries on
    /// both endpoints; `true` stores `Out` on `src` and `In` on `dst`.
    AddEdge {
        src: NodeId,
        dst: NodeId,
        weight: f32,
        directed: bool,
    },
    /// An edge disappears.
    RemoveEdge { src: NodeId, dst: NodeId },
    /// The weight of an existing edge changes.
    SetEdgeWeight {
        src: NodeId,
        dst: NodeId,
        weight: f32,
    },
    /// Set (add or overwrite) a node attribute.
    SetNodeAttr {
        id: NodeId,
        key: String,
        value: AttrValue,
    },
    /// Remove a node attribute.
    RemoveNodeAttr { id: NodeId, key: String },
    /// Set (add or overwrite) an edge attribute.
    SetEdgeAttr {
        src: NodeId,
        dst: NodeId,
        key: String,
        value: AttrValue,
    },
    /// Remove an edge attribute.
    RemoveEdgeAttr {
        src: NodeId,
        dst: NodeId,
        key: String,
    },
}

impl EventKind {
    /// The node-ids whose state this event touches. Edge events touch
    /// both endpoints because the node-centric model stores each edge
    /// with both of them.
    pub fn touched(&self) -> (NodeId, Option<NodeId>) {
        match *self {
            EventKind::AddNode { id }
            | EventKind::RemoveNode { id }
            | EventKind::SetNodeAttr { id, .. }
            | EventKind::RemoveNodeAttr { id, .. } => (id, None),
            EventKind::AddEdge { src, dst, .. }
            | EventKind::RemoveEdge { src, dst }
            | EventKind::SetEdgeWeight { src, dst, .. }
            | EventKind::SetEdgeAttr { src, dst, .. }
            | EventKind::RemoveEdgeAttr { src, dst, .. } => (src, Some(dst)),
        }
    }

    /// True for events that change graph structure rather than
    /// attribute values.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            EventKind::AddNode { .. }
                | EventKind::RemoveNode { .. }
                | EventKind::AddEdge { .. }
                | EventKind::RemoveEdge { .. }
        )
    }

    /// Approximate in-memory footprint in bytes (same accounting as
    /// [`AttrValue::weight_bytes`]; used by the byte-budgeted read
    /// cache and the Table-1 storage reproductions).
    pub fn weight_bytes(&self) -> usize {
        match self {
            EventKind::AddNode { .. } | EventKind::RemoveNode { .. } => 9,
            EventKind::AddEdge { .. } => 21,
            EventKind::RemoveEdge { .. } => 17,
            EventKind::SetEdgeWeight { .. } => 21,
            EventKind::SetNodeAttr { key, value, .. } => 9 + key.len() + value.weight_bytes(),
            EventKind::RemoveNodeAttr { key, .. } => 9 + key.len(),
            EventKind::SetEdgeAttr { key, value, .. } => 17 + key.len() + value.weight_bytes(),
            EventKind::RemoveEdgeAttr { key, .. } => 17 + key.len(),
        }
    }
}

/// An atomic change at a specific timepoint (Example 1):
/// `∆event(c, te) = c(te) − c(te−1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub time: Time,
    pub kind: EventKind,
}

impl Event {
    pub fn new(time: Time, kind: EventKind) -> Event {
        Event { time, kind }
    }

    /// Approximate in-memory footprint in bytes (timestamp + payload).
    pub fn weight_bytes(&self) -> usize {
        8 + self.kind.weight_bytes()
    }
}

/// A chronologically sorted run of events (Example 2), optionally
/// restricted to a time scope `(ts, te]` and/or a node partition
/// (Example 3, *partitioned eventlist*).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Eventlist {
    events: Vec<Event>,
}

impl Eventlist {
    /// Empty eventlist.
    pub fn new() -> Eventlist {
        Eventlist { events: Vec::new() }
    }

    /// Build from events that are already in chronological order.
    ///
    /// # Panics
    /// In debug builds, panics if the events are out of order.
    pub fn from_sorted(events: Vec<Event>) -> Eventlist {
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        Eventlist { events }
    }

    /// Append an event; must not go back in time.
    pub fn push(&mut self, e: Event) {
        debug_assert!(self.events.last().is_none_or(|l| l.time <= e.time));
        self.events.push(e);
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Immutable view of the events.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume into the underlying vector.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Approximate in-memory footprint in bytes (sum of event
    /// weights), mirroring [`crate::Delta::weight_bytes`].
    pub fn weight_bytes(&self) -> usize {
        self.events.iter().map(Event::weight_bytes).sum()
    }

    /// The time range `[first, last]` covered, or `None` when empty.
    pub fn span(&self) -> Option<(Time, Time)> {
        Some((self.events.first()?.time, self.events.last()?.time))
    }

    /// Sub-slice of events with `time` in the half-open `range`
    /// (FilterByTime in the paper's Algorithm 1/2).
    pub fn slice_by_time(&self, range: TimeRange) -> &[Event] {
        let lo = self.events.partition_point(|e| e.time < range.start);
        let hi = self.events.partition_point(|e| e.time < range.end);
        &self.events[lo..hi]
    }

    /// Events touching a specific node (FilterById in Algorithm 2).
    pub fn filter_by_node(&self, id: NodeId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| {
            let (a, b) = e.kind.touched();
            a == id || b == Some(id)
        })
    }

    /// Split into chunks of at most `chunk` events, preserving order.
    /// This is how TGI bounds eventlist delta sizes (parameter `l`).
    pub fn chunked(&self, chunk: usize) -> Vec<Eventlist> {
        assert!(chunk > 0);
        self.events
            .chunks(chunk)
            .map(|c| Eventlist { events: c.to_vec() })
            .collect()
    }

    /// Partition events by a node-scope function (partitioned
    /// eventlists, Example 3): event goes to every partition that one
    /// of its touched nodes maps to.
    pub fn partition_by<F: Fn(NodeId) -> u32>(&self, parts: u32, f: F) -> Vec<Eventlist> {
        let mut out: Vec<Eventlist> = (0..parts).map(|_| Eventlist::new()).collect();
        for e in &self.events {
            let (a, b) = e.kind.touched();
            let pa = f(a);
            out[pa as usize].events.push(e.clone());
            if let Some(b) = b {
                let pb = f(b);
                if pb != pa {
                    out[pb as usize].events.push(e.clone());
                }
            }
        }
        out
    }
}

impl FromIterator<Event> for Eventlist {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Eventlist {
        let mut events: Vec<Event> = iter.into_iter().collect();
        events.sort_by_key(|e| e.time);
        Eventlist { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time, id: NodeId) -> Event {
        Event::new(t, EventKind::AddNode { id })
    }

    fn edge(t: Time, s: NodeId, d: NodeId) -> Event {
        Event::new(
            t,
            EventKind::AddEdge {
                src: s,
                dst: d,
                weight: 1.0,
                directed: false,
            },
        )
    }

    #[test]
    fn slice_by_time_is_half_open() {
        let el: Eventlist = vec![ev(1, 1), ev(2, 2), ev(3, 3), ev(5, 5)]
            .into_iter()
            .collect();
        let s = el.slice_by_time(TimeRange::new(2, 5));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].time, 2);
        assert_eq!(s[1].time, 3);
    }

    #[test]
    fn filter_by_node_sees_both_endpoints() {
        let el: Eventlist = vec![edge(1, 1, 2), edge(2, 3, 4), ev(3, 2)]
            .into_iter()
            .collect();
        let touching2: Vec<&Event> = el.filter_by_node(2).collect();
        assert_eq!(touching2.len(), 2);
    }

    #[test]
    fn chunking_preserves_order_and_count() {
        let el: Eventlist = (0..10).map(|i| ev(i, i)).collect();
        let chunks = el.chunked(4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn partitioning_replicates_cross_partition_edges() {
        let el: Eventlist = vec![edge(1, 1, 2)].into_iter().collect();
        // nodes 1 and 2 land in different partitions
        let parts = el.partition_by(2, |id| (id % 2) as u32);
        assert_eq!(parts[0].len(), 1, "partition of node 2");
        assert_eq!(parts[1].len(), 1, "partition of node 1");
    }

    #[test]
    fn partitioning_no_duplicate_within_same_partition() {
        let el: Eventlist = vec![edge(1, 2, 4)].into_iter().collect();
        let parts = el.partition_by(2, |id| (id % 2) as u32);
        assert_eq!(
            parts[0].len(),
            1,
            "both endpoints in partition 0 -> one copy"
        );
        assert_eq!(parts[1].len(), 0);
    }

    #[test]
    fn from_iter_sorts() {
        let el: Eventlist = vec![ev(5, 1), ev(1, 2), ev(3, 3)].into_iter().collect();
        let times: Vec<Time> = el.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn span_reports_bounds() {
        let el: Eventlist = vec![ev(2, 1), ev(9, 2)].into_iter().collect();
        assert_eq!(el.span(), Some((2, 9)));
        assert_eq!(Eventlist::new().span(), None);
    }
}

//! In-house LZSS byte compression.
//!
//! The paper evaluates Cassandra's block compression on serialized
//! deltas (Fig. 13a) and finds the net latency effect negligible. To
//! reproduce that experiment without adding a compression dependency,
//! this module implements a small LZSS variant: greedy longest-match
//! search over a 32 KiB sliding window using a hash-chain index,
//! emitting varint-encoded (distance, length) matches and literal runs.
//!
//! Wire format: `[varint raw_len]` then a sequence of ops:
//! * `0x00 [varint n] [n bytes]` — literal run;
//! * `0x01 [varint dist] [varint len]` — copy `len` bytes from `dist`
//!   bytes back (overlapping copies allowed, as usual for LZ).
//!
//! Serialized deltas are full of small varint-delta-encoded integers
//! and repeated attribute keys, which this catches well (typically
//! 1.5–3x on our workloads).

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::CodecError;

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1024;
const MAX_CHAIN: usize = 32;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    // One-byte fast path: lengths and distances in LZ ops are almost
    // always < 128, and the decompress loop decodes two per op.
    if let Some(&b) = buf.get(*pos) {
        if b & 0x80 == 0 {
            *pos += 1;
            return Ok(b as u64);
        }
    }
    get_varint_slow(buf, pos)
}

#[cold]
fn get_varint_slow(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        let Some(&b) = buf.get(*pos) else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *pos += 1;
        out |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(CodecError::VarintOverflow)
}

/// Compress `data`. The output starts with the raw length, so
/// [`decompress`] can pre-allocate exactly.
pub fn compress(data: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(data.len() / 2 + 16);
    put_varint(&mut out, data.len() as u64);
    if data.len() < MIN_MATCH {
        if !data.is_empty() {
            out.put_u8(0);
            put_varint(&mut out, data.len() as u64);
            out.put_slice(data);
        }
        return out.freeze();
    }

    // head[h] = most recent position with hash h; prev[i % WINDOW] = the
    // position before i in the same chain.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut lit_start = 0usize;
    let mut i = 0usize;

    macro_rules! flush_literals {
        ($upto:expr) => {
            if lit_start < $upto {
                out.put_u8(0);
                put_varint(&mut out, ($upto - lit_start) as u64);
                out.put_slice(&data[lit_start..$upto]);
            }
        };
    }

    while i + MIN_MATCH <= data.len() {
        let h = hash4(&data[i..]);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let limit = (data.len() - i).min(MAX_MATCH);
        let mut chain = 0;
        while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
            if cand < i {
                let mut l = 0usize;
                let max = limit;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == limit {
                        break;
                    }
                }
            }
            let nxt = prev[cand % WINDOW];
            if nxt == usize::MAX || nxt >= cand {
                break;
            }
            cand = nxt;
            chain += 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals!(i);
            out.put_u8(1);
            put_varint(&mut out, best_dist as u64);
            put_varint(&mut out, best_len as u64);
            // Index all the positions the match covers.
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= data.len() {
                let h2 = hash4(&data[i..]);
                prev[i % WINDOW] = head[h2];
                head[h2] = i;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            prev[i % WINDOW] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals!(data.len());
    out.freeze()
}

/// Peek the decompressed length of a [`compress`] blob without
/// decompressing it. The raw-length prefix makes this O(1); the
/// columnar codec uses it to charge cache weight for lazily decoded
/// column segments *before* they are materialized.
pub fn decompressed_len(data: &[u8]) -> Result<usize, CodecError> {
    let mut pos = 0usize;
    Ok(get_varint(data, &mut pos)? as usize)
}

/// Decompress data produced by [`compress`].
///
/// The output buffer is allocated (zero-initialized) up front and
/// written through a cursor, so copy ops are plain slice-to-slice
/// moves with no per-op growth checks. Matches with `dist >= 8` use
/// an 8-byte "wild copy": whole words are copied even past the match
/// end when room remains, which turns the typical 8–20 byte match
/// into one or two word moves instead of a `memmove` call. Over-read
/// sources are always below the write cursor (`dist >= 8` guarantees
/// each word's source is fully written), and over-written tails are
/// re-written by the next op, so the result is exact.
pub fn decompress(data: &[u8]) -> Result<Bytes, CodecError> {
    let mut pos = 0usize;
    let raw_len = get_varint(data, &mut pos)? as usize;
    let mut out = vec![0u8; raw_len];
    let mut w = 0usize;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0 => {
                let n = get_varint(data, &mut pos)? as usize;
                if pos + n > data.len() {
                    return Err(CodecError::UnexpectedEof {
                        needed: n,
                        remaining: data.len() - pos,
                    });
                }
                if w + n > raw_len {
                    return Err(CodecError::LengthOverflow {
                        what: "lz-output",
                        len: (w + n) as u64,
                    });
                }
                out[w..w + n].copy_from_slice(&data[pos..pos + n]);
                pos += n;
                w += n;
            }
            1 => {
                let dist = get_varint(data, &mut pos)? as usize;
                let len = get_varint(data, &mut pos)? as usize;
                if dist == 0 || dist > w {
                    return Err(CodecError::BadTag {
                        what: "lz-distance",
                        tag: 1,
                    });
                }
                if w + len > raw_len {
                    return Err(CodecError::LengthOverflow {
                        what: "lz-output",
                        len: (w + len) as u64,
                    });
                }
                let start = w - dist;
                if dist >= 8 && w + len + 8 <= raw_len {
                    let mut copied = 0usize;
                    while copied < len {
                        let word: [u8; 8] =
                            // hgs-lint: allow(no-panic-in-try, "the copied word slice is exactly 8 bytes by construction")
                            out[start + copied..start + copied + 8].try_into().unwrap();
                        out[w + copied..w + copied + 8].copy_from_slice(&word);
                        copied += 8;
                    }
                } else if dist >= len {
                    out.copy_within(start..start + len, w);
                } else {
                    // Overlapping (run-length style) match with a
                    // period too short for word copies: copy in
                    // period-doubling chunks.
                    let mut filled = 0usize;
                    while filled < len {
                        let chunk = (dist + filled).min(len - filled);
                        out.copy_within(start..start + chunk, w + filled);
                        filled += chunk;
                    }
                }
                w += len;
            }
            t => {
                return Err(CodecError::BadTag {
                    what: "lz-op",
                    tag: t,
                })
            }
        }
    }
    if w != raw_len {
        return Err(CodecError::LengthOverflow {
            what: "lz-output",
            len: w as u64,
        });
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(&d[..], data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn no_repeats() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn highly_repetitive_compresses() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcdabcdabcd".repeat(50);
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn run_length_overlap() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100);
        roundtrip(&data);
    }

    #[test]
    fn pseudo_random_survives() {
        // xorshift noise: barely compressible; must still roundtrip.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn decompressed_len_peeks_without_decoding() {
        let data = b"abcdabcdabcdabcd".repeat(10);
        let c = compress(&data);
        assert_eq!(decompressed_len(&c).unwrap(), data.len());
    }

    #[test]
    fn serialized_delta_compresses() {
        use crate::{codec::encode_delta, Delta, EventKind};
        let mut d = Delta::new();
        for i in 0..500u64 {
            d.apply_event(&EventKind::AddEdge {
                src: i % 40,
                dst: (i * 7) % 40,
                weight: 1.0,
                directed: false,
            });
            d.apply_event(&EventKind::SetNodeAttr {
                id: i % 40,
                key: "entity_type".into(),
                value: crate::AttrValue::Text("Author".into()),
            });
        }
        let raw = encode_delta(&d);
        let c = compress(&raw);
        assert!(
            c.len() < raw.len(),
            "deltas should compress: {} vs {}",
            c.len(),
            raw.len()
        );
        assert_eq!(&decompress(&c).unwrap()[..], &raw[..]);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(decompress(&[0x05, 0x01, 0x09]).is_err());
        assert!(decompress(&[0x02, 0x01, 0xff, 0x10, 0x10]).is_err());
    }
}

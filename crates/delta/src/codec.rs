//! Compact binary codec for deltas, events and version chains.
//!
//! TGI stores every delta as a serialized binary string in the
//! key-value store ("`dval` contains serialized value of the
//! micro-delta as a binary string", §4.4). The paper's Python
//! implementation used Pickle; we hand-roll a varint-based format so
//! that (a) serialized sizes faithfully track delta *size* in the
//! paper's sense, and (b) deserialization cost — a real component of
//! every retrieval latency the paper measures — is realistic.
//!
//! Format conventions: LEB128 varints for unsigned ints, zigzag for
//! signed, little-endian IEEE-754 for floats, length-prefixed UTF-8
//! strings, one tag byte per enum.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::attr::{AttrValue, Attrs};
use crate::delta::Delta;
use crate::error::CodecError;
use crate::event::{Event, EventKind, Eventlist};
use crate::node::{Neighbor, StaticNode};
use crate::types::EdgeDir;

/// Sanity cap for decoded collection lengths (guards against corrupt
/// length prefixes allocating unbounded memory).
pub(crate) const MAX_LEN: u64 = 1 << 32;

/// Process-global count of value bytes materialized by decoding:
/// whole-row bytes for the row-wise codec, decompressed segment bytes
/// for the columnar codec. The decode benches report per-query deltas
/// of this counter.
static DECODED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total bytes decoded by this process so far (row-wise rows plus
/// columnar segments actually materialized).
pub fn decoded_bytes() -> u64 {
    DECODED_BYTES.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn note_decoded(n: usize) {
    DECODED_BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

// ----------------------------------------------------------------------
// primitives
// ----------------------------------------------------------------------

/// Append an LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an LEB128 varint.
#[inline]
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    // Fast path: single-byte varints dominate every column (delta
    // timestamps, dictionary indexes, small lengths).
    if let Some((&b, rest)) = buf.split_first() {
        if b & 0x80 == 0 {
            *buf = rest;
            return Ok(b as u64);
        }
    }
    get_varint_slow(buf)
}

#[cold]
fn get_varint_slow(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        let Some((&b, rest)) = buf.split_first() else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *buf = rest;
        out |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(CodecError::VarintOverflow)
}

/// Zigzag-encode a signed integer as a varint.
pub fn put_zigzag(buf: &mut BytesMut, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Read a zigzag varint.
pub fn get_zigzag(buf: &mut &[u8]) -> Result<i64, CodecError> {
    let z = get_varint(buf)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_len(buf: &mut &[u8], what: &'static str) -> Result<usize, CodecError> {
    let len = get_varint(buf)?;
    if len > MAX_LEN {
        return Err(CodecError::LengthOverflow { what, len });
    }
    Ok(len as usize)
}

pub(crate) fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = get_len(buf, "string")?;
    if buf.len() < len {
        return Err(CodecError::UnexpectedEof {
            needed: len,
            remaining: buf.len(),
        });
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(head.to_vec()).map_err(|_| CodecError::BadUtf8)
}

pub(crate) fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

pub(crate) fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::UnexpectedEof {
            needed: 8,
            remaining: buf.len(),
        });
    }
    let mut b = *buf;
    let v = b.get_f64_le();
    *buf = &buf[8..];
    Ok(v)
}

pub(crate) fn put_f32(buf: &mut BytesMut, v: f32) {
    buf.put_f32_le(v);
}

pub(crate) fn get_f32(buf: &mut &[u8]) -> Result<f32, CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::UnexpectedEof {
            needed: 4,
            remaining: buf.len(),
        });
    }
    let mut b = *buf;
    let v = b.get_f32_le();
    *buf = &buf[4..];
    Ok(v)
}

// ----------------------------------------------------------------------
// attributes
// ----------------------------------------------------------------------

pub(crate) fn put_attr_value(buf: &mut BytesMut, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            buf.put_u8(0);
            put_zigzag(buf, *i);
        }
        AttrValue::Float(f) => {
            buf.put_u8(1);
            put_f64(buf, *f);
        }
        AttrValue::Text(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
        AttrValue::Bool(b) => {
            buf.put_u8(3);
            buf.put_u8(*b as u8);
        }
    }
}

pub(crate) fn get_attr_value(buf: &mut &[u8]) -> Result<AttrValue, CodecError> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(CodecError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        });
    };
    *buf = rest;
    Ok(match tag {
        0 => AttrValue::Int(get_zigzag(buf)?),
        1 => AttrValue::Float(get_f64(buf)?),
        2 => AttrValue::Text(get_str(buf)?),
        3 => {
            let Some((&b, rest)) = buf.split_first() else {
                return Err(CodecError::UnexpectedEof {
                    needed: 1,
                    remaining: 0,
                });
            };
            *buf = rest;
            AttrValue::Bool(b != 0)
        }
        t => {
            return Err(CodecError::BadTag {
                what: "AttrValue",
                tag: t,
            })
        }
    })
}

fn put_attrs(buf: &mut BytesMut, attrs: &Attrs) {
    put_varint(buf, attrs.len() as u64);
    for (k, v) in attrs.iter() {
        put_str(buf, k);
        put_attr_value(buf, v);
    }
}

fn get_attrs(buf: &mut &[u8]) -> Result<Attrs, CodecError> {
    let n = get_len(buf, "attrs")?;
    let mut pairs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let k = get_str(buf)?;
        let v = get_attr_value(buf)?;
        pairs.push((k, v));
    }
    Ok(Attrs::from_pairs(pairs))
}

// ----------------------------------------------------------------------
// static nodes & deltas
// ----------------------------------------------------------------------

/// Serialize one static node description.
pub fn put_static_node(buf: &mut BytesMut, n: &StaticNode) {
    put_varint(buf, n.id);
    put_varint(buf, n.edges.len() as u64);
    // Delta-encode sorted neighbor ids: adjacency lists compress well.
    let mut prev = 0u64;
    for e in &n.edges {
        put_varint(buf, e.nbr.wrapping_sub(prev));
        prev = e.nbr;
        buf.put_u8(e.dir.tag());
        put_f32(buf, e.weight);
        match &e.attrs {
            Some(a) => {
                buf.put_u8(1);
                put_attrs(buf, a);
            }
            None => buf.put_u8(0),
        }
    }
    put_attrs(buf, &n.attrs);
}

/// Decode one static node description.
pub fn get_static_node(buf: &mut &[u8]) -> Result<StaticNode, CodecError> {
    let id = get_varint(buf)?;
    let n_edges = get_len(buf, "edges")?;
    let mut edges = Vec::with_capacity(n_edges.min(1 << 16));
    let mut prev = 0u64;
    for _ in 0..n_edges {
        let nbr = prev.wrapping_add(get_varint(buf)?);
        prev = nbr;
        let Some((&dtag, rest)) = buf.split_first() else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *buf = rest;
        let dir = EdgeDir::from_tag(dtag).ok_or(CodecError::BadTag {
            what: "EdgeDir",
            tag: dtag,
        })?;
        let weight = get_f32(buf)?;
        let Some((&has_attrs, rest)) = buf.split_first() else {
            return Err(CodecError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        };
        *buf = rest;
        let attrs = if has_attrs != 0 {
            Some(Box::new(get_attrs(buf)?))
        } else {
            None
        };
        edges.push(Neighbor {
            nbr,
            dir,
            weight,
            attrs,
        });
    }
    let attrs = get_attrs(buf)?;
    Ok(StaticNode { id, edges, attrs })
}

/// Serialize a delta: node descriptions in sorted-id order (the sort
/// makes encoding deterministic, which the store's compression and the
/// tests rely on).
pub fn encode_delta(d: &Delta) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + d.size() * 8);
    let ids = d.sorted_ids();
    put_varint(&mut buf, ids.len() as u64);
    for id in ids {
        // hgs-lint: allow(no-panic-in-try, "sorted_ids yields only ids present in this delta")
        put_static_node(&mut buf, d.node(id).expect("id from sorted_ids"));
    }
    buf.freeze()
}

/// Decode a delta; rejects trailing bytes.
pub fn decode_delta(mut buf: &[u8]) -> Result<Delta, CodecError> {
    note_decoded(buf.len());
    let n = get_len(&mut buf, "delta")?;
    let mut d = Delta::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        d.insert(get_static_node(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(d)
}

// ----------------------------------------------------------------------
// events & eventlists
// ----------------------------------------------------------------------

fn put_event_kind(buf: &mut BytesMut, k: &EventKind) {
    match k {
        EventKind::AddNode { id } => {
            buf.put_u8(0);
            put_varint(buf, *id);
        }
        EventKind::RemoveNode { id } => {
            buf.put_u8(1);
            put_varint(buf, *id);
        }
        EventKind::AddEdge {
            src,
            dst,
            weight,
            directed,
        } => {
            buf.put_u8(2);
            put_varint(buf, *src);
            put_varint(buf, *dst);
            put_f32(buf, *weight);
            buf.put_u8(*directed as u8);
        }
        EventKind::RemoveEdge { src, dst } => {
            buf.put_u8(3);
            put_varint(buf, *src);
            put_varint(buf, *dst);
        }
        EventKind::SetEdgeWeight { src, dst, weight } => {
            buf.put_u8(4);
            put_varint(buf, *src);
            put_varint(buf, *dst);
            put_f32(buf, *weight);
        }
        EventKind::SetNodeAttr { id, key, value } => {
            buf.put_u8(5);
            put_varint(buf, *id);
            put_str(buf, key);
            put_attr_value(buf, value);
        }
        EventKind::RemoveNodeAttr { id, key } => {
            buf.put_u8(6);
            put_varint(buf, *id);
            put_str(buf, key);
        }
        EventKind::SetEdgeAttr {
            src,
            dst,
            key,
            value,
        } => {
            buf.put_u8(7);
            put_varint(buf, *src);
            put_varint(buf, *dst);
            put_str(buf, key);
            put_attr_value(buf, value);
        }
        EventKind::RemoveEdgeAttr { src, dst, key } => {
            buf.put_u8(8);
            put_varint(buf, *src);
            put_varint(buf, *dst);
            put_str(buf, key);
        }
    }
}

fn get_event_kind(buf: &mut &[u8]) -> Result<EventKind, CodecError> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(CodecError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        });
    };
    *buf = rest;
    Ok(match tag {
        0 => EventKind::AddNode {
            id: get_varint(buf)?,
        },
        1 => EventKind::RemoveNode {
            id: get_varint(buf)?,
        },
        2 => {
            let src = get_varint(buf)?;
            let dst = get_varint(buf)?;
            let weight = get_f32(buf)?;
            let Some((&d, rest)) = buf.split_first() else {
                return Err(CodecError::UnexpectedEof {
                    needed: 1,
                    remaining: 0,
                });
            };
            *buf = rest;
            EventKind::AddEdge {
                src,
                dst,
                weight,
                directed: d != 0,
            }
        }
        3 => EventKind::RemoveEdge {
            src: get_varint(buf)?,
            dst: get_varint(buf)?,
        },
        4 => {
            let src = get_varint(buf)?;
            let dst = get_varint(buf)?;
            EventKind::SetEdgeWeight {
                src,
                dst,
                weight: get_f32(buf)?,
            }
        }
        5 => {
            let id = get_varint(buf)?;
            let key = get_str(buf)?;
            EventKind::SetNodeAttr {
                id,
                key,
                value: get_attr_value(buf)?,
            }
        }
        6 => EventKind::RemoveNodeAttr {
            id: get_varint(buf)?,
            key: get_str(buf)?,
        },
        7 => {
            let src = get_varint(buf)?;
            let dst = get_varint(buf)?;
            let key = get_str(buf)?;
            EventKind::SetEdgeAttr {
                src,
                dst,
                key,
                value: get_attr_value(buf)?,
            }
        }
        8 => EventKind::RemoveEdgeAttr {
            src: get_varint(buf)?,
            dst: get_varint(buf)?,
            key: get_str(buf)?,
        },
        t => {
            return Err(CodecError::BadTag {
                what: "EventKind",
                tag: t,
            })
        }
    })
}

/// Serialize an eventlist; times are delta-encoded (chronological order
/// makes the gaps small).
pub fn encode_eventlist(el: &Eventlist) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + el.len() * 8);
    put_varint(&mut buf, el.len() as u64);
    let mut prev = 0u64;
    for e in el.events() {
        put_varint(&mut buf, e.time.wrapping_sub(prev));
        prev = e.time;
        put_event_kind(&mut buf, &e.kind);
    }
    buf.freeze()
}

/// Decode an eventlist; rejects trailing bytes.
pub fn decode_eventlist(mut buf: &[u8]) -> Result<Eventlist, CodecError> {
    note_decoded(buf.len());
    let n = get_len(&mut buf, "eventlist")?;
    let mut events = Vec::with_capacity(n.min(1 << 20));
    let mut prev = 0u64;
    for _ in 0..n {
        let t = prev.wrapping_add(get_varint(&mut buf)?);
        prev = t;
        events.push(Event::new(t, get_event_kind(&mut buf)?));
    }
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(Eventlist::from_sorted(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = BytesMut::new();
            put_zigzag(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_zigzag(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn varint_eof_detected() {
        let mut slice: &[u8] = &[0x80];
        assert!(matches!(
            get_varint(&mut slice),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn varint_overflow_detected() {
        let bytes = [0xffu8; 11];
        let mut slice: &[u8] = &bytes;
        assert!(matches!(
            get_varint(&mut slice),
            Err(CodecError::VarintOverflow)
        ));
    }

    fn sample_delta() -> Delta {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 1000,
            weight: 2.5,
            directed: true,
        });
        d.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 3,
            weight: 1.0,
            directed: false,
        });
        d.apply_event(&EventKind::SetNodeAttr {
            id: 1,
            key: "name".into(),
            value: AttrValue::Text("alpha".into()),
        });
        d.apply_event(&EventKind::SetEdgeAttr {
            src: 1,
            dst: 3,
            key: "since".into(),
            value: AttrValue::Int(1999),
        });
        d
    }

    #[test]
    fn delta_roundtrip() {
        let d = sample_delta();
        let bytes = encode_delta(&d);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn empty_delta_roundtrip() {
        let bytes = encode_delta(&Delta::new());
        assert_eq!(decode_delta(&bytes).unwrap(), Delta::new());
    }

    #[test]
    fn delta_rejects_trailing_garbage() {
        let mut bytes = encode_delta(&sample_delta()).to_vec();
        bytes.push(0xAB);
        assert!(matches!(
            decode_delta(&bytes),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn eventlist_roundtrip_all_kinds() {
        let events = vec![
            Event::new(1, EventKind::AddNode { id: 7 }),
            Event::new(
                2,
                EventKind::AddEdge {
                    src: 7,
                    dst: 8,
                    weight: 0.5,
                    directed: false,
                },
            ),
            Event::new(
                2,
                EventKind::SetNodeAttr {
                    id: 7,
                    key: "k".into(),
                    value: AttrValue::Bool(true),
                },
            ),
            Event::new(
                3,
                EventKind::SetEdgeWeight {
                    src: 7,
                    dst: 8,
                    weight: 9.0,
                },
            ),
            Event::new(
                4,
                EventKind::SetEdgeAttr {
                    src: 7,
                    dst: 8,
                    key: "e".into(),
                    value: AttrValue::Float(0.25),
                },
            ),
            Event::new(
                5,
                EventKind::RemoveEdgeAttr {
                    src: 7,
                    dst: 8,
                    key: "e".into(),
                },
            ),
            Event::new(
                6,
                EventKind::RemoveNodeAttr {
                    id: 7,
                    key: "k".into(),
                },
            ),
            Event::new(7, EventKind::RemoveEdge { src: 7, dst: 8 }),
            Event::new(8, EventKind::RemoveNode { id: 7 }),
        ];
        let el = Eventlist::from_sorted(events);
        let bytes = encode_eventlist(&el);
        assert_eq!(decode_eventlist(&bytes).unwrap(), el);
    }

    #[test]
    fn adjacency_delta_encoding_is_compact() {
        // 1000 consecutive neighbors should take ~2-3 bytes each, far
        // less than 8-byte ids.
        let mut n = StaticNode::new(1);
        for i in 0..1000u64 {
            n.insert_edge(Neighbor::new(1_000_000 + i, EdgeDir::Both));
        }
        let d: Delta = vec![n].into_iter().collect();
        let bytes = encode_delta(&d);
        assert!(bytes.len() < 1000 * 8, "got {} bytes", bytes.len());
    }

    #[test]
    fn bad_tag_reported() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1); // one event
        put_varint(&mut buf, 0); // time delta
        buf.put_u8(99); // invalid kind tag
        assert!(matches!(
            decode_eventlist(&buf),
            Err(CodecError::BadTag {
                what: "EventKind",
                ..
            })
        ));
    }

    #[test]
    fn node_ids_beyond_u32_roundtrip() {
        let big: NodeId = (u32::MAX as u64) + 12345;
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddNode { id: big });
        let back = decode_delta(&encode_delta(&d)).unwrap();
        assert!(back.contains(big));
    }
}

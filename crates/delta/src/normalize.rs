//! Event-stream normalization.
//!
//! Under the node-centric model a `RemoveNode` event changes the state
//! of every *neighbor* too (their edge-lists shrink), but the event
//! itself only names the removed node. Any index that partitions
//! events by touched node — TGI's partitioned eventlists, the
//! vertex-centric baseline's per-node logs — would deliver the removal
//! to the removed node's partition only, leaving stale edges
//! elsewhere.
//!
//! [`normalize_events`] makes the implicit explicit: each
//! `RemoveNode { id }` is prefixed with `RemoveEdge { id, nbr }` for
//! every edge incident to `id` at that instant. The normalized stream
//! replays to exactly the same states (removing edges before a node is
//! what [`crate::Delta::apply_event`] does internally), every event
//! names all nodes it affects, and neighbors gain the version-chain
//! entries their state changes deserve.

use crate::event::{Event, EventKind};
use crate::hash::{FxHashMap, FxHashSet};
use crate::types::NodeId;

/// Expand implicit neighbor effects of `RemoveNode` events. The
/// output replays to the same states as the input at every timepoint.
pub fn normalize_events(events: &[Event]) -> Vec<Event> {
    let mut adj: FxHashMap<NodeId, FxHashSet<NodeId>> = FxHashMap::default();
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    for e in events {
        match &e.kind {
            EventKind::AddEdge { src, dst, .. } => {
                adj.entry(*src).or_default().insert(*dst);
                adj.entry(*dst).or_default().insert(*src);
            }
            EventKind::RemoveEdge { src, dst } => {
                if let Some(s) = adj.get_mut(src) {
                    s.remove(dst);
                }
                if let Some(s) = adj.get_mut(dst) {
                    s.remove(src);
                }
            }
            EventKind::RemoveNode { id } => {
                if let Some(nbrs) = adj.remove(id) {
                    let mut sorted: Vec<NodeId> = nbrs.into_iter().collect();
                    sorted.sort_unstable();
                    for nbr in sorted {
                        out.push(Event::new(
                            e.time,
                            EventKind::RemoveEdge { src: *id, dst: nbr },
                        ));
                        if let Some(s) = adj.get_mut(&nbr) {
                            s.remove(id);
                        }
                    }
                }
            }
            _ => {}
        }
        out.push(e.clone());
    }
    out
}

/// Whether a stream is already normalized (contains no `RemoveNode`
/// with live incident edges). Cheap full check used in debug
/// assertions.
pub fn is_normalized(events: &[Event]) -> bool {
    let mut state = crate::delta::Delta::new();
    for e in events {
        if let EventKind::RemoveNode { id } = &e.kind {
            if state.node(*id).is_some_and(|n| n.degree() > 0) {
                return false;
            }
        }
        state.apply_event(&e.kind);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;

    fn ev(t: u64, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    fn add(t: u64, s: NodeId, d: NodeId) -> Event {
        ev(
            t,
            EventKind::AddEdge {
                src: s,
                dst: d,
                weight: 1.0,
                directed: false,
            },
        )
    }

    #[test]
    fn remove_node_expands_to_edge_removals() {
        let events = vec![
            add(1, 1, 2),
            add(2, 1, 3),
            ev(5, EventKind::RemoveNode { id: 1 }),
        ];
        let norm = normalize_events(&events);
        assert_eq!(norm.len(), 5, "two RemoveEdge events inserted");
        assert!(matches!(
            norm[2].kind,
            EventKind::RemoveEdge { src: 1, dst: 2 }
        ));
        assert!(matches!(
            norm[3].kind,
            EventKind::RemoveEdge { src: 1, dst: 3 }
        ));
        assert!(matches!(norm[4].kind, EventKind::RemoveNode { id: 1 }));
        assert_eq!(norm[2].time, 5, "expansion keeps the removal's timestamp");
        assert!(is_normalized(&norm));
        assert!(!is_normalized(&events));
    }

    #[test]
    fn replay_equivalence_at_every_time() {
        let events = vec![
            add(1, 1, 2),
            add(2, 2, 3),
            ev(3, EventKind::RemoveNode { id: 2 }),
            add(4, 1, 2), // node 2 is re-created by the edge
            ev(5, EventKind::RemoveEdge { src: 1, dst: 2 }),
            ev(6, EventKind::RemoveNode { id: 2 }),
        ];
        let norm = normalize_events(&events);
        for t in 0..=7u64 {
            assert_eq!(
                Delta::snapshot_by_replay(&events, t),
                Delta::snapshot_by_replay(&norm, t),
                "divergence at t={t}"
            );
        }
    }

    #[test]
    fn isolated_node_removal_unchanged() {
        let events = vec![
            ev(1, EventKind::AddNode { id: 9 }),
            ev(2, EventKind::RemoveNode { id: 9 }),
        ];
        assert_eq!(normalize_events(&events), events);
    }

    #[test]
    fn growth_only_stream_is_identity() {
        let events = vec![add(1, 1, 2), add(2, 2, 3), add(3, 3, 4)];
        assert_eq!(normalize_events(&events), events);
    }

    #[test]
    fn removal_of_unknown_node_is_noop_expansion() {
        let events = vec![ev(1, EventKind::RemoveNode { id: 42 })];
        assert_eq!(normalize_events(&events), events);
    }
}

//! Property-based tests for the Δ algebra and the binary codec.
//!
//! These check the algebraic identities of Definitions 2–5 of the paper
//! on arbitrary generated histories, plus the reconstruction identity
//! `child = parent + (child − parent)` that TGI's derived-snapshot
//! storage depends on, and codec roundtrips on arbitrary deltas.

use hgs_delta::codec::{decode_delta, decode_eventlist, encode_delta, encode_eventlist};
use hgs_delta::{AttrValue, Delta, Event, EventKind, Eventlist};
use proptest::prelude::*;

/// Strategy: an arbitrary event over a small id universe so that
/// interactions (re-adds, removals of existing components) actually
/// happen.
fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..24;
    prop_oneof![
        id.clone().prop_map(|id| EventKind::AddNode { id }),
        id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        (0u64..24, 0u64..24, 0.0f32..4.0, any::<bool>()).prop_map(
            |(src, dst, weight, directed)| EventKind::AddEdge {
                src,
                dst,
                weight,
                directed
            }
        ),
        (0u64..24, 0u64..24).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        (0u64..24, 0u64..24, 0.0f32..4.0).prop_map(|(src, dst, weight)| EventKind::SetEdgeWeight {
            src,
            dst,
            weight
        }),
        (id.clone(), "[a-c]{1,3}", -50i64..50).prop_map(|(id, key, v)| EventKind::SetNodeAttr {
            id,
            key,
            value: AttrValue::Int(v)
        }),
        (id.clone(), "[a-c]{1,3}").prop_map(|(id, key)| EventKind::RemoveNodeAttr { id, key }),
        (0u64..24, 0u64..24, "[a-c]{1,3}", any::<bool>()).prop_map(|(src, dst, key, v)| {
            EventKind::SetEdgeAttr {
                src,
                dst,
                key,
                value: AttrValue::Bool(v),
            }
        }),
        (0u64..24, 0u64..24, "[a-c]{1,3}").prop_map(|(src, dst, key)| EventKind::RemoveEdgeAttr {
            src,
            dst,
            key
        }),
    ]
}

/// Strategy: a chronologically timestamped event history.
fn arb_history(max: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..4), 0..max).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

/// Strategy: a delta reached by applying an arbitrary history.
fn arb_delta() -> impl Strategy<Value = Delta> {
    arb_history(60).prop_map(|events| {
        let mut d = Delta::new();
        for e in &events {
            d.apply_event(&e.kind);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sum_identity(d in arb_delta()) {
        prop_assert_eq!(d.sum(&Delta::new()), d.clone());
        prop_assert_eq!(Delta::new().sum(&d), d);
    }

    #[test]
    fn sum_associative(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        prop_assert_eq!(a.sum(&b).sum(&c), a.sum(&b.sum(&c)));
    }

    #[test]
    fn difference_self_is_empty(d in arb_delta()) {
        prop_assert!(d.difference(&d).is_empty());
        prop_assert_eq!(d.difference(&Delta::new()), d);
    }

    #[test]
    fn intersection_laws(a in arb_delta(), b in arb_delta()) {
        let i = a.intersection(&b);
        // commutative
        prop_assert_eq!(i.clone(), b.intersection(&a));
        // ∩ result is contained (by value) in both sides
        for n in i.iter() {
            prop_assert_eq!(a.node(n.id), Some(n));
            prop_assert_eq!(b.node(n.id), Some(n));
        }
        // ∆ ∩ ∅ = ∅
        prop_assert!(a.intersection(&Delta::new()).is_empty());
    }

    #[test]
    fn union_identity(a in arb_delta()) {
        prop_assert_eq!(a.union(&Delta::new()), a.clone());
        prop_assert_eq!(Delta::new().union(&a), a);
    }

    /// The reconstruction identity TGI storage relies on:
    /// for any children c1..ck and parent = ∩ ci,
    /// ci == parent + (ci − parent).
    #[test]
    fn reconstruction_identity(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        let parent = Delta::intersection_many(&[&a, &b, &c]);
        for child in [&a, &b, &c] {
            let derived = child.difference(&parent);
            prop_assert_eq!(&parent.sum(&derived), child);
        }
    }

    #[test]
    fn delta_codec_roundtrip(d in arb_delta()) {
        let bytes = encode_delta(&d);
        let back = decode_delta(&bytes).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn eventlist_codec_roundtrip(events in arb_history(80)) {
        let el = Eventlist::from_sorted(events);
        let back = decode_eventlist(&encode_eventlist(&el)).unwrap();
        prop_assert_eq!(back, el);
    }

    /// Replay determinism: applying the same history twice yields
    /// identical states (no hidden iteration-order dependence).
    #[test]
    fn replay_deterministic(events in arb_history(80)) {
        let a = Delta::snapshot_by_replay(&events, u64::MAX);
        let b = Delta::snapshot_by_replay(&events, u64::MAX);
        prop_assert_eq!(a, b);
    }

    /// Replay is prefix-monotone in the cut point: replaying to t is the
    /// same as replaying the prefix of events with time <= t.
    #[test]
    fn replay_prefix_consistency(events in arb_history(60), cut in 0u64..200) {
        let direct = Delta::snapshot_by_replay(&events, cut);
        let prefix: Vec<Event> =
            events.iter().filter(|e| e.time <= cut).cloned().collect();
        let via_prefix = Delta::snapshot_by_replay(&prefix, u64::MAX);
        prop_assert_eq!(direct, via_prefix);
    }

    /// Edge symmetry invariant: after any history, node u lists v iff v
    /// lists u (the node-centric model replicates edges to both sides).
    #[test]
    fn edge_symmetry_invariant(events in arb_history(100)) {
        let d = Delta::snapshot_by_replay(&events, u64::MAX);
        for n in d.iter() {
            for e in &n.edges {
                let other = d.node(e.nbr);
                prop_assert!(other.is_some(), "dangling edge {} -> {}", n.id, e.nbr);
                prop_assert!(
                    other.unwrap().has_neighbor(n.id),
                    "asymmetric edge {} -> {}", n.id, e.nbr
                );
            }
        }
    }
}

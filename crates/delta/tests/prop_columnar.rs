//! Property-based tests for the columnar eventlist / delta codec.
//!
//! Two families:
//!  * roundtrip — encode → parse → materialize reproduces the input
//!    exactly, and the pruned accessors (`events_touching`,
//!    `node_record`) agree with filtering the full decode;
//!  * hardening — truncated or bit-flipped rows must surface
//!    `CodecError` (or decode to *something*), never panic and never
//!    attempt oversized allocations, no matter which column the
//!    corruption lands in.

use hgs_delta::columnar::{
    encode_columnar_delta, encode_columnar_eventlist, ColumnarDelta, ColumnarEventlist,
};
use hgs_delta::{AttrValue, Delta, Event, EventKind, Eventlist, NodeId};
use proptest::prelude::*;

/// Every attribute value type, so the value column exercises all tags.
fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-100i64..100).prop_map(AttrValue::Int),
        (-4.0f64..4.0).prop_map(AttrValue::Float),
        "[a-z]{0,6}".prop_map(AttrValue::Text),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

/// Every event kind (all nine tags), small id universe so dictionary
/// interning actually dedups and re-adds/removals interact.
fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..24;
    prop_oneof![
        id.clone().prop_map(|id| EventKind::AddNode { id }),
        id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        (0u64..24, 0u64..24, 0.0f32..4.0, any::<bool>()).prop_map(
            |(src, dst, weight, directed)| EventKind::AddEdge {
                src,
                dst,
                weight,
                directed
            }
        ),
        (0u64..24, 0u64..24).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        (0u64..24, 0u64..24, 0.0f32..4.0).prop_map(|(src, dst, weight)| EventKind::SetEdgeWeight {
            src,
            dst,
            weight
        }),
        (id.clone(), "[a-c]{1,3}", arb_attr_value())
            .prop_map(|(id, key, value)| { EventKind::SetNodeAttr { id, key, value } }),
        (id.clone(), "[a-c]{1,3}").prop_map(|(id, key)| EventKind::RemoveNodeAttr { id, key }),
        (0u64..24, 0u64..24, "[a-c]{1,3}", arb_attr_value()).prop_map(|(src, dst, key, value)| {
            EventKind::SetEdgeAttr {
                src,
                dst,
                key,
                value,
            }
        }),
        (0u64..24, 0u64..24, "[a-c]{1,3}").prop_map(|(src, dst, key)| EventKind::RemoveEdgeAttr {
            src,
            dst,
            key
        }),
    ]
}

fn arb_history(max: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..4), 0..max).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    arb_history(60).prop_map(|events| {
        let mut d = Delta::new();
        for e in &events {
            d.apply_event(&e.kind);
        }
        d
    })
}

/// Reference filter matching the columnar pruned read: the event's
/// primary id or (when present) second id equals `nid`.
fn touches(kind: &EventKind, nid: NodeId) -> bool {
    match kind {
        EventKind::AddNode { id }
        | EventKind::RemoveNode { id }
        | EventKind::SetNodeAttr { id, .. }
        | EventKind::RemoveNodeAttr { id, .. } => *id == nid,
        EventKind::AddEdge { src, dst, .. }
        | EventKind::RemoveEdge { src, dst }
        | EventKind::SetEdgeWeight { src, dst, .. }
        | EventKind::SetEdgeAttr { src, dst, .. }
        | EventKind::RemoveEdgeAttr { src, dst, .. } => *src == nid || *dst == nid,
    }
}

/// Drive every decode path of a (possibly corrupt) eventlist row; the
/// only acceptable outcomes are `Ok` or `CodecError` — never a panic.
fn exercise_eventlist(bytes: bytes::Bytes) {
    let col = match ColumnarEventlist::parse(bytes) {
        Ok(c) => c,
        Err(_) => return,
    };
    let _ = col.to_eventlist();
    for nid in 0..4u64 {
        let _ = col.contains_node(nid);
        let _ = col.events_touching(nid);
    }
}

/// Same for a delta row.
fn exercise_delta(bytes: bytes::Bytes) {
    let col = match ColumnarDelta::parse(bytes) {
        Ok(c) => c,
        Err(_) => return,
    };
    let _ = col.to_delta();
    for nid in 0..4u64 {
        let _ = col.contains(nid);
        let _ = col.node_record(nid);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn eventlist_roundtrip(events in arb_history(80)) {
        let el = Eventlist::from_sorted(events);
        let bytes = encode_columnar_eventlist(&el);
        let col = ColumnarEventlist::parse(bytes).unwrap();
        prop_assert_eq!(col.n_events(), el.events().len());
        prop_assert_eq!(col.to_eventlist().unwrap(), el);
    }

    #[test]
    fn eventlist_pruned_read_matches_filtered_full_read(
        events in arb_history(80),
        nid in 0u64..26,
    ) {
        let el = Eventlist::from_sorted(events);
        let col = ColumnarEventlist::parse(encode_columnar_eventlist(&el)).unwrap();
        let want: Vec<Event> = el
            .events()
            .iter()
            .filter(|e| touches(&e.kind, nid))
            .cloned()
            .collect();
        prop_assert_eq!(col.contains_node(nid).unwrap(), !want.is_empty());
        prop_assert_eq!(col.events_touching(nid).unwrap(), want);
    }

    #[test]
    fn delta_roundtrip(d in arb_delta()) {
        let col = ColumnarDelta::parse(encode_columnar_delta(&d)).unwrap();
        prop_assert_eq!(col.n_nodes(), d.cardinality());
        prop_assert_eq!(col.to_delta().unwrap(), d);
    }

    #[test]
    fn delta_point_read_matches_full_read(d in arb_delta(), nid in 0u64..26) {
        let col = ColumnarDelta::parse(encode_columnar_delta(&d)).unwrap();
        prop_assert_eq!(col.contains(nid).unwrap(), d.node(nid).is_some());
        let got = col.node_record(nid).unwrap();
        prop_assert_eq!(got.as_ref(), d.node(nid));
    }

    #[test]
    fn truncated_eventlist_never_panics(events in arb_history(40), cut in 0.0f64..1.0) {
        let bytes = encode_columnar_eventlist(&Eventlist::from_sorted(events));
        let keep = (bytes.len() as f64 * cut) as usize;
        exercise_eventlist(bytes.slice(..keep));
    }

    #[test]
    fn bitflipped_eventlist_never_panics(
        events in arb_history(40),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = encode_columnar_eventlist(&Eventlist::from_sorted(events));
        let mut raw = bytes.to_vec();
        if raw.is_empty() {
            return Ok(());
        }
        let i = ((raw.len() - 1) as f64 * pos) as usize;
        raw[i] ^= 1 << bit;
        exercise_eventlist(bytes::Bytes::from(raw));
    }

    #[test]
    fn truncated_delta_never_panics(d in arb_delta(), cut in 0.0f64..1.0) {
        let bytes = encode_columnar_delta(&d);
        let keep = (bytes.len() as f64 * cut) as usize;
        exercise_delta(bytes.slice(..keep));
    }

    #[test]
    fn bitflipped_delta_never_panics(d in arb_delta(), pos in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = encode_columnar_delta(&d);
        let mut raw = bytes.to_vec();
        if raw.is_empty() {
            return Ok(());
        }
        let i = ((raw.len() - 1) as f64 * pos) as usize;
        raw[i] ^= 1 << bit;
        exercise_delta(bytes::Bytes::from(raw));
    }

    /// Corruption confined to a *payload* column must not break parsing
    /// or reads of other columns: flip a byte in the trailing half of
    /// the row (past the header + early segments) and require that the
    /// timestamp/kind columns still decode or fail cleanly.
    #[test]
    fn late_corruption_is_isolated(events in arb_history(40), pos in 0.5f64..1.0, bit in 0u8..8) {
        let bytes = encode_columnar_eventlist(&Eventlist::from_sorted(events));
        let mut raw = bytes.to_vec();
        if raw.len() < 4 {
            return Ok(());
        }
        let i = ((raw.len() - 1) as f64 * pos) as usize;
        raw[i] ^= 1 << bit;
        exercise_eventlist(bytes::Bytes::from(raw));
    }
}

//! Analytic access-cost estimators — the formulas of the paper's
//! Table 1.
//!
//! For each index class and each retrieval primitive, Table 1 reports
//! two metrics: `∑∆ |∆|` (sum of delta cardinalities fetched) and
//! `∑∆ 1` (number of deltas fetched), plus the index storage size.
//! These estimators evaluate those closed forms for a concrete
//! workload profile, so the `table1_costs` harness can print the
//! paper's table with real numbers next to the formulas; the
//! integration tests cross-check the TGI column against measured
//! fetch counts.

/// Workload profile in the paper's notation.
#[derive(Debug, Clone, Copy)]
pub struct CostProfile {
    /// `|G|`: number of changes (events) in the graph's history.
    pub g: f64,
    /// `|S|`: size of a snapshot (node count).
    pub s: f64,
    /// `|E|`: eventlist size between checkpoints.
    pub e: f64,
    /// `h`: height of the DeltaGraph/TGI tree.
    pub h: f64,
    /// `|V|`: number of changes to the queried node.
    pub v: f64,
    /// `|R|`: number of neighbors of the queried node.
    pub r: f64,
    /// `p`: number of micro-partitions per delta in TGI.
    pub p: f64,
    /// `|C|`: per-node history size (node-centric index).
    pub c: f64,
}

/// Index classes compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Log,
    Copy,
    CopyPlusLog,
    NodeCentric,
    DeltaGraph,
    Tgi,
}

impl IndexKind {
    /// All rows in the paper's order.
    pub const ALL: [IndexKind; 6] = [
        IndexKind::Log,
        IndexKind::Copy,
        IndexKind::CopyPlusLog,
        IndexKind::NodeCentric,
        IndexKind::DeltaGraph,
        IndexKind::Tgi,
    ];

    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Log => "Log",
            IndexKind::Copy => "Copy",
            IndexKind::CopyPlusLog => "Copy+Log",
            IndexKind::NodeCentric => "Node Centric",
            IndexKind::DeltaGraph => "DeltaGraph",
            IndexKind::Tgi => "TGI",
        }
    }
}

/// Retrieval primitives (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    Snapshot,
    StaticVertex,
    VertexVersions,
    OneHop,
    OneHopVersions,
}

impl QueryKind {
    /// All columns in the paper's order.
    pub const ALL: [QueryKind; 5] = [
        QueryKind::Snapshot,
        QueryKind::StaticVertex,
        QueryKind::VertexVersions,
        QueryKind::OneHop,
        QueryKind::OneHopVersions,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Snapshot => "Snapshot",
            QueryKind::StaticVertex => "Static Vertex",
            QueryKind::VertexVersions => "Vertex Versions",
            QueryKind::OneHop => "1-hop",
            QueryKind::OneHopVersions => "1-hop Versions",
        }
    }
}

/// `(∑∆ |∆|, ∑∆ 1)` for one (index, query) cell of Table 1.
pub fn access_cost(index: IndexKind, query: QueryKind, w: &CostProfile) -> (f64, f64) {
    use IndexKind::*;
    use QueryKind::*;
    match (index, query) {
        // Log: everything requires replaying the single event log.
        (Log, _) => (w.g, w.g / w.e),

        // Copy: a full snapshot per change point.
        (Copy, Snapshot) | (Copy, StaticVertex) | (Copy, OneHop) => (w.s, 1.0),
        (Copy, VertexVersions) | (Copy, OneHopVersions) => (w.s * w.g, w.g),

        // Copy+Log: nearest snapshot + one eventlist.
        (CopyPlusLog, Snapshot) | (CopyPlusLog, StaticVertex) | (CopyPlusLog, OneHop) => {
            (w.s + w.e, 2.0)
        }
        (CopyPlusLog, VertexVersions) | (CopyPlusLog, OneHopVersions) => (w.g, w.g / w.e),

        // Vertex-centric: per-node logs; snapshots touch every node.
        (NodeCentric, Snapshot) => (2.0 * w.g, w.s),
        (NodeCentric, StaticVertex) | (NodeCentric, VertexVersions) => (w.c, 1.0),
        (NodeCentric, OneHop) | (NodeCentric, OneHopVersions) => (w.r * w.c, w.r),

        // DeltaGraph: root-to-leaf path of monolithic deltas.
        (DeltaGraph, Snapshot) | (DeltaGraph, StaticVertex) => (w.h * w.s + w.e, 2.0 * w.h),
        (DeltaGraph, VertexVersions) | (DeltaGraph, OneHopVersions) => (w.g, w.g / w.e),
        (DeltaGraph, OneHop) => (w.h * (w.s + w.e), 2.0 * w.h),

        // TGI: the path again, but only the relevant micro-partitions.
        (Tgi, Snapshot) => (w.h * w.s + w.e, 2.0 * w.h),
        (Tgi, StaticVertex) => ((w.h * w.s + w.e) / w.p, 2.0 * w.h),
        (Tgi, VertexVersions) | (Tgi, OneHopVersions) => (w.v * (1.0 + w.s / w.p), w.v + 1.0),
        (Tgi, OneHop) => (w.h * (w.s + w.e) / w.p, 2.0 * w.h),
    }
}

/// Index storage size column of Table 1.
pub fn storage_size(index: IndexKind, w: &CostProfile) -> f64 {
    match index {
        IndexKind::Log => w.g,
        IndexKind::Copy => w.g.powi(2).min(w.s * w.g), // |G|^2 upper bound; |S||G| realized
        IndexKind::CopyPlusLog => w.g * w.g / w.e,
        IndexKind::NodeCentric => 2.0 * w.g,
        IndexKind::DeltaGraph => w.g * (w.h + 1.0),
        IndexKind::Tgi => w.g * (2.0 * w.h + 3.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CostProfile {
        CostProfile {
            g: 1e6,
            s: 1e5,
            e: 500.0,
            h: 4.0,
            v: 100.0,
            r: 30.0,
            p: 200.0,
            c: 150.0,
        }
    }

    #[test]
    fn tgi_static_vertex_beats_deltagraph() {
        let w = profile();
        let (tgi_sz, _) = access_cost(IndexKind::Tgi, QueryKind::StaticVertex, &w);
        let (dg_sz, _) = access_cost(IndexKind::DeltaGraph, QueryKind::StaticVertex, &w);
        assert!(
            tgi_sz < dg_sz / 10.0,
            "micro-partitioning wins: {tgi_sz} vs {dg_sz}"
        );
    }

    #[test]
    fn tgi_versions_beat_time_centric_indexes() {
        let w = profile();
        let (tgi, _) = access_cost(IndexKind::Tgi, QueryKind::VertexVersions, &w);
        for idx in [
            IndexKind::Log,
            IndexKind::CopyPlusLog,
            IndexKind::DeltaGraph,
        ] {
            let (other, _) = access_cost(idx, QueryKind::VertexVersions, &w);
            assert!(tgi < other, "{:?}: {tgi} vs {other}", idx);
        }
    }

    #[test]
    fn node_centric_is_bad_at_snapshots() {
        let w = profile();
        let (_, nc_deltas) = access_cost(IndexKind::NodeCentric, QueryKind::Snapshot, &w);
        let (_, tgi_deltas) = access_cost(IndexKind::Tgi, QueryKind::Snapshot, &w);
        assert!(nc_deltas > 100.0 * tgi_deltas);
    }

    #[test]
    fn copy_has_largest_storage() {
        let w = profile();
        let copy = storage_size(IndexKind::Copy, &w);
        for idx in [
            IndexKind::Log,
            IndexKind::NodeCentric,
            IndexKind::DeltaGraph,
            IndexKind::Tgi,
        ] {
            assert!(copy > storage_size(idx, &w), "{idx:?}");
        }
    }

    #[test]
    fn log_is_smallest_storage() {
        let w = profile();
        let log = storage_size(IndexKind::Log, &w);
        for idx in [
            IndexKind::Copy,
            IndexKind::CopyPlusLog,
            IndexKind::NodeCentric,
            IndexKind::DeltaGraph,
            IndexKind::Tgi,
        ] {
            assert!(log <= storage_size(idx, &w), "{idx:?}");
        }
    }

    #[test]
    fn all_cells_are_finite_and_positive() {
        let w = profile();
        for idx in IndexKind::ALL {
            for q in QueryKind::ALL {
                let (sz, n) = access_cost(idx, q, &w);
                assert!(sz.is_finite() && sz > 0.0, "{idx:?}/{q:?} size");
                assert!(n.is_finite() && n > 0.0, "{idx:?}/{q:?} count");
            }
        }
    }
}

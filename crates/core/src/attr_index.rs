//! Secondary temporal indexes: label/attribute predicate queries
//! without snapshot materialization.
//!
//! For every timespan the build emits one `AttrIndex` row per *term* —
//! an attribute `(key, value)` pair or a bare attribute key — holding
//! the sorted change points of that term within the span (see
//! [`hgs_delta::attr_index`] for the row format). Rows ride the same
//! [`hgs_store::WriteBuffer`] batches as every other span row, so
//! maintenance adds zero extra round trips; they are fetched through
//! the session read cache with exact byte accounting.
//!
//! Each row is **self-contained**: state carried in from earlier spans
//! is replayed as points stamped at the span's start time and flagged
//! `carry`. A point-in-time query therefore touches exactly one
//! `(term, tsid)` row — `O(log changes + answer)` instead of the
//! `O(snapshot)` decode of materialize-then-filter.
//!
//! # Fallback contract
//!
//! When [`TgiConfig::secondary_indexes`](crate::TgiConfig) is **off**
//! the rows do not exist and every primitive explicitly falls back to
//! snapshot materialization (`try_*_materialized`). When the index is
//! **on**, a dead machine surfaces
//! [`StoreError::Unavailable`] and a damaged row surfaces
//! [`StoreError::Corrupt`] — never a silent fallback, never a panic.
//!
//! # Semantics
//!
//! * `nodes_matching_at(key, value, t)` — node-ids whose attribute
//!   `key` equals `value` after applying every event with time `<= t`
//!   (the same cut rule as [`TgiView::snapshot`]).
//! * `attr_history(nid, key)` — the chronological `(time, new value)`
//!   points of `key` on `nid` over the whole history: every
//!   `SetNodeAttr` (even re-setting the same value), plus a `None`
//!   point when the attribute or its node is removed while the key is
//!   present.

use std::sync::Arc;

use hgs_delta::attr_index::{
    decode_key_points, decode_term_points, encode_key_points, encode_term_points, key_term,
    matching_at, value_term, KeyPoint, TermPoint, TERM_KIND_KEY, TERM_KIND_VALUE,
};
use hgs_delta::{AttrValue, Attrs, Delta, Event, EventKind, FxHashMap, NodeId, Time};
use hgs_store::key::{term_key, term_key_tsid, term_prefix, term_token};
use hgs_store::{StoreError, Table};

use crate::build::TgiView;
use crate::query::unwrap_read;
use crate::read_cache::{CacheKey, Cached};

/// Attribute key conventionally holding a node's label (what
/// `hgs-datagen` writes and the label sugar below reads).
pub const LABEL_KEY: &str = "EntityType";

/// Encoded secondary-index rows of one span, sorted by term bytes.
pub(crate) struct SpanIndexRows {
    /// `(term bytes, encoded change-point row)` per `(key, value)` term.
    pub value_rows: Vec<(Vec<u8>, bytes::Bytes)>,
    /// `(term bytes, encoded set-point row)` per bare-key term.
    pub key_rows: Vec<(Vec<u8>, bytes::Bytes)>,
}

impl SpanIndexRows {
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.value_rows.is_empty() && self.key_rows.is_empty()
    }
}

/// Collect one span's secondary-index rows: carry-in points for the
/// attribute state at span start (`state` must be the tail state
/// *before* the span's events are applied) followed by the span's
/// transitions, replayed with the same forgiving semantics as
/// [`Delta::apply_event`] (a `SetNodeAttr` on an unseen node implies
/// the node; removals of absent attributes are no-ops).
pub(crate) fn collect_span_index_rows(
    state: &Delta,
    events: &[Event],
    span_start: Time,
) -> SpanIndexRows {
    let mut cur: FxHashMap<NodeId, Attrs> = FxHashMap::default();
    let mut value_map: FxHashMap<Vec<u8>, Vec<TermPoint>> = FxHashMap::default();
    let mut key_map: FxHashMap<Vec<u8>, Vec<KeyPoint>> = FxHashMap::default();

    for node in state.iter() {
        if node.attrs.is_empty() {
            continue;
        }
        for (k, v) in node.attrs.iter() {
            value_map
                .entry(value_term(k, v))
                .or_default()
                .push(TermPoint {
                    time: span_start,
                    nid: node.id,
                    carry: true,
                    became: true,
                });
            key_map.entry(key_term(k)).or_default().push(KeyPoint {
                time: span_start,
                nid: node.id,
                carry: true,
                value: Some(v.clone()),
            });
        }
        cur.insert(node.id, node.attrs.clone());
    }
    // Carry points all share the span start time; order them by node so
    // the emitted rows do not depend on `state`'s map iteration order.
    for pts in value_map.values_mut() {
        pts.sort_unstable_by_key(|p| p.nid);
    }
    for pts in key_map.values_mut() {
        pts.sort_by_key(|p| p.nid);
    }

    for ev in events {
        match &ev.kind {
            EventKind::SetNodeAttr { id, key, value } => {
                let attrs = cur.entry(*id).or_default();
                let old = attrs.set(key.clone(), value.clone());
                if old.as_ref() != Some(value) {
                    if let Some(old) = &old {
                        value_map
                            .entry(value_term(key, old))
                            .or_default()
                            .push(TermPoint {
                                time: ev.time,
                                nid: *id,
                                carry: false,
                                became: false,
                            });
                    }
                    value_map
                        .entry(value_term(key, value))
                        .or_default()
                        .push(TermPoint {
                            time: ev.time,
                            nid: *id,
                            carry: false,
                            became: true,
                        });
                }
                key_map.entry(key_term(key)).or_default().push(KeyPoint {
                    time: ev.time,
                    nid: *id,
                    carry: false,
                    value: Some(value.clone()),
                });
            }
            EventKind::RemoveNodeAttr { id, key } => {
                if let Some(old) = cur.get_mut(id).and_then(|a| a.remove(key)) {
                    value_map
                        .entry(value_term(key, &old))
                        .or_default()
                        .push(TermPoint {
                            time: ev.time,
                            nid: *id,
                            carry: false,
                            became: false,
                        });
                    key_map.entry(key_term(key)).or_default().push(KeyPoint {
                        time: ev.time,
                        nid: *id,
                        carry: false,
                        value: None,
                    });
                }
            }
            EventKind::RemoveNode { id } => {
                if let Some(attrs) = cur.remove(id) {
                    for (k, v) in attrs.iter() {
                        value_map
                            .entry(value_term(k, v))
                            .or_default()
                            .push(TermPoint {
                                time: ev.time,
                                nid: *id,
                                carry: false,
                                became: false,
                            });
                        key_map.entry(key_term(k)).or_default().push(KeyPoint {
                            time: ev.time,
                            nid: *id,
                            carry: false,
                            value: None,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    let mut value_rows: Vec<(Vec<u8>, bytes::Bytes)> = value_map
        .into_iter()
        .map(|(term, pts)| (term, encode_term_points(&pts)))
        .collect();
    value_rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut key_rows: Vec<(Vec<u8>, bytes::Bytes)> = key_map
        .into_iter()
        .map(|(term, pts)| (term, encode_key_points(&pts)))
        .collect();
    key_rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    SpanIndexRows {
        value_rows,
        key_rows,
    }
}

impl TgiView {
    /// Whether this index maintains the secondary temporal indexes
    /// (the persisted [`TgiConfig::secondary_indexes`](crate::TgiConfig)
    /// knob).
    pub fn secondary_indexes_enabled(&self) -> bool {
        self.cfg.secondary_indexes
    }

    /// Fetch (through the read cache) the value-term row of one
    /// `(term, tsid)`. `Ok(None)` means the row is legitimately absent
    /// — the term never held within (or going into) that span.
    fn try_fetch_term_points(
        &self,
        tsid: u32,
        term: &[u8],
    ) -> Result<Option<Arc<Vec<TermPoint>>>, StoreError> {
        let ckey = CacheKey::Term(tsid, TERM_KIND_VALUE, Arc::from(term));
        match self.read_cache.get(ckey.clone()) {
            Some(Cached::TermPoints(p)) => return Ok(Some(p)),
            Some(Cached::Absent) => return Ok(None),
            _ => {}
        }
        let key = term_key(TERM_KIND_VALUE, term, tsid);
        let token = term_token(TERM_KIND_VALUE, term);
        let mut rows = self.store.multi_get(Table::AttrIndex, &[&key], token)?;
        match rows.pop().flatten() {
            Some(bytes) => {
                let pts = Arc::new(decode_term_points(&bytes).map_err(StoreError::Corrupt)?);
                self.read_cache.put(ckey, Cached::TermPoints(pts.clone()));
                Ok(Some(pts))
            }
            None => {
                self.read_cache.put(ckey, Cached::Absent);
                Ok(None)
            }
        }
    }

    /// Node-ids whose attribute `key` equals `value` at time `t`,
    /// sorted. Answered from one secondary-index row when the index is
    /// on; explicit materialization fallback otherwise.
    pub fn try_nodes_matching_at(
        &self,
        key: &str,
        value: &AttrValue,
        t: Time,
    ) -> Result<Vec<NodeId>, StoreError> {
        if !self.cfg.secondary_indexes {
            return self.try_nodes_matching_at_materialized(key, value, t);
        }
        let tsid = self.span_for(t).meta.tsid;
        let term = value_term(key, value);
        match self.try_fetch_term_points(tsid, &term)? {
            Some(points) => Ok(matching_at(&points, t)),
            None => Ok(Vec::new()),
        }
    }

    /// Infallible [`TgiView::try_nodes_matching_at`].
    pub fn nodes_matching_at(&self, key: &str, value: &AttrValue, t: Time) -> Vec<NodeId> {
        unwrap_read(self.try_nodes_matching_at(key, value, t))
    }

    /// Node-ids labelled `label` (attribute [`LABEL_KEY`]) at time `t`.
    pub fn try_nodes_with_label_at(&self, label: &str, t: Time) -> Result<Vec<NodeId>, StoreError> {
        self.try_nodes_matching_at(LABEL_KEY, &AttrValue::Text(label.to_string()), t)
    }

    /// Infallible [`TgiView::try_nodes_with_label_at`].
    pub fn nodes_with_label_at(&self, label: &str, t: Time) -> Vec<NodeId> {
        unwrap_read(self.try_nodes_with_label_at(label, t))
    }

    /// The reference answer for [`TgiView::try_nodes_matching_at`]:
    /// materialize the full snapshot at `t` and filter. This is the
    /// documented fallback when the index is disabled, and the oracle
    /// the property suite and the `labels` bench compare against.
    pub fn try_nodes_matching_at_materialized(
        &self,
        key: &str,
        value: &AttrValue,
        t: Time,
    ) -> Result<Vec<NodeId>, StoreError> {
        let snap = self.try_snapshot(t)?;
        let mut out: Vec<NodeId> = snap
            .iter()
            .filter(|n| n.attrs.get(key) == Some(value))
            .map(|n| n.id)
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// The chronological `(time, new value)` points of attribute `key`
    /// on node `nid` over the whole indexed history (`None` = the key
    /// was cleared). One per-term prefix scan when the index is on;
    /// explicit materialization fallback otherwise.
    pub fn try_attr_history(
        &self,
        nid: NodeId,
        key: &str,
    ) -> Result<Vec<(Time, Option<AttrValue>)>, StoreError> {
        if !self.cfg.secondary_indexes {
            return self.try_attr_history_materialized(nid, key);
        }
        let term = key_term(key);
        let token = term_token(TERM_KIND_KEY, &term);
        let prefix = term_prefix(TERM_KIND_KEY, &term);
        // hgs-lint: allow(batched-store-discipline, "one prefix scan per (node, key) is the index's native access, mirroring the version-chain scan")
        let rows = self.store.scan_prefix(Table::AttrIndex, &prefix, token)?;
        let mut out = Vec::new();
        for (row_key, bytes) in rows {
            let tsid = match term_key_tsid(&row_key) {
                Some(t) => t,
                None => continue,
            };
            let ckey = CacheKey::Term(tsid, TERM_KIND_KEY, Arc::from(term.as_slice()));
            let points = match self.read_cache.get(ckey.clone()) {
                Some(Cached::KeyPoints(p)) => p,
                _ => {
                    let p = Arc::new(decode_key_points(&bytes).map_err(StoreError::Corrupt)?);
                    self.read_cache.put(ckey, Cached::KeyPoints(p.clone()));
                    p
                }
            };
            // Carry points replay state already recorded by an earlier
            // span's transitions; only genuine transitions make history.
            out.extend(
                points
                    .iter()
                    .filter(|p| !p.carry && p.nid == nid)
                    .map(|p| (p.time, p.value.clone())),
            );
        }
        Ok(out)
    }

    /// Infallible [`TgiView::try_attr_history`].
    pub fn attr_history(&self, nid: NodeId, key: &str) -> Vec<(Time, Option<AttrValue>)> {
        unwrap_read(self.try_attr_history(nid, key))
    }

    /// The reference answer for [`TgiView::try_attr_history`]: replay the
    /// node's full event history. Same point rule as the index, with
    /// one documented deviation: churn at time 0 collapses to the
    /// settled state at 0 (the node history's initial state already
    /// includes time-0 events).
    pub fn try_attr_history_materialized(
        &self,
        nid: NodeId,
        key: &str,
    ) -> Result<Vec<(Time, Option<AttrValue>)>, StoreError> {
        let end = self.end_time.max(1);
        let hist = self.try_node_history(nid, hgs_delta::TimeRange::new(0, end))?;
        let mut out = Vec::new();
        let mut cur: Option<AttrValue> = hist
            .initial
            .as_ref()
            .and_then(|n| n.attrs.get(key))
            .cloned();
        if let Some(v) = &cur {
            out.push((0, Some(v.clone())));
        }
        for ev in &hist.events {
            match &ev.kind {
                EventKind::SetNodeAttr { id, key: k, value } if *id == nid && k == key => {
                    out.push((ev.time, Some(value.clone())));
                    cur = Some(value.clone());
                }
                EventKind::RemoveNodeAttr { id, key: k }
                    if *id == nid && k == key && cur.take().is_some() =>
                {
                    out.push((ev.time, None));
                }
                EventKind::RemoveNode { id } if *id == nid && cur.take().is_some() => {
                    out.push((ev.time, None));
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::StaticNode;

    fn ev(time: Time, kind: EventKind) -> Event {
        Event { time, kind }
    }

    fn set(time: Time, id: NodeId, key: &str, value: &str) -> Event {
        ev(
            time,
            EventKind::SetNodeAttr {
                id,
                key: key.to_string(),
                value: AttrValue::Text(value.to_string()),
            },
        )
    }

    #[test]
    fn carry_in_and_transitions_are_self_contained() {
        let mut state = Delta::new();
        let mut n = StaticNode::new(7);
        n.attrs.set("EntityType", AttrValue::Text("Author".into()));
        state.insert(n);

        let events = vec![
            set(10, 7, "EntityType", "Paper"),
            set(12, 3, "EntityType", "Author"),
            ev(15, EventKind::RemoveNode { id: 7 }),
        ];
        let rows = collect_span_index_rows(&state, &events, 10);
        let author = value_term("EntityType", &AttrValue::Text("Author".into()));
        let (_, blob) = rows
            .value_rows
            .iter()
            .find(|(t, _)| t == &author)
            .expect("author term row");
        let pts = decode_term_points(blob).unwrap();
        // Carry-in for node 7 at span start, lost at t=10 (re-label),
        // gained by node 3 at t=12.
        assert_eq!(matching_at(&pts, 10), vec![] as Vec<NodeId>);
        assert_eq!(matching_at(&pts, 12), vec![3]);
        assert!(pts[0].carry && pts[0].time == 10);

        let paper = value_term("EntityType", &AttrValue::Text("Paper".into()));
        let (_, blob) = rows
            .value_rows
            .iter()
            .find(|(t, _)| t == &paper)
            .expect("paper term row");
        let pts = decode_term_points(blob).unwrap();
        assert_eq!(matching_at(&pts, 14), vec![7]);
        // RemoveNode clears the term.
        assert_eq!(matching_at(&pts, 15), vec![] as Vec<NodeId>);
    }

    #[test]
    fn key_rows_record_value_history_without_carry_duplicates() {
        let state = Delta::new();
        let events = vec![
            set(1, 5, "Grade", "A"),
            set(2, 5, "Grade", "A"), // re-set same value: still a point
            ev(
                3,
                EventKind::RemoveNodeAttr {
                    id: 5,
                    key: "Grade".into(),
                },
            ),
            ev(
                4,
                EventKind::RemoveNodeAttr {
                    id: 5,
                    key: "Grade".into(),
                },
            ), // double-remove: no-op
        ];
        let rows = collect_span_index_rows(&state, &events, 0);
        let (_, blob) = rows
            .key_rows
            .iter()
            .find(|(t, _)| t == &key_term("Grade"))
            .expect("grade key row");
        let pts = decode_key_points(blob).unwrap();
        let hist: Vec<(Time, Option<AttrValue>)> = pts
            .iter()
            .filter(|p| !p.carry)
            .map(|p| (p.time, p.value.clone()))
            .collect();
        assert_eq!(
            hist,
            vec![
                (1, Some(AttrValue::Text("A".into()))),
                (2, Some(AttrValue::Text("A".into()))),
                (3, None),
            ]
        );
    }

    #[test]
    fn empty_span_emits_no_rows() {
        let rows = collect_span_index_rows(&Delta::new(), &[], 0);
        assert!(rows.is_empty());
    }
}

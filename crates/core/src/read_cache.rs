//! Session-wide, byte-budgeted LRU read cache shared by **every** TGI
//! query path.
//!
//! The paper's retrieval costs (§4.5, Table 1) are dominated by
//! fetching and decoding root-to-leaf delta paths. Index rows are
//! write-once — construction appends new timespans and never rewrites
//! a stored delta — so their decode products can be cached forever
//! without invalidation. This module holds those products for the
//! whole session:
//!
//! * decoded tree-delta and eventlist rows (`CacheKey::Row`),
//! * materialized whole-graph leaf checkpoint states
//!   (`CacheKey::Leaf`, used by sequential snapshot retrieval),
//! * per-horizontal-partition leaf checkpoint states
//!   (`CacheKey::SidLeaf`, the parallel fill's unit — the whole-graph
//!   `Leaf` entry is exactly the sum of its `SidLeaf` entries, so the
//!   sequential and parallel paths warm each other), and
//! * materialized micro-partition checkpoint states
//!   (`CacheKey::Part`, used by `node_at` / k-hop / TAF fetches),
//!
//! all under one configurable byte budget
//! ([`TgiConfig::read_cache_bytes`](crate::TgiConfig), runtime-tunable
//! via [`TgiView::set_read_cache_budget`]). Eviction is true
//! least-recently-used — an intrusive doubly-linked list threaded
//! through a slab, `O(1)` per touch — **never** a wholesale clear, so
//! a working set one entry over budget degrades by exactly one entry,
//! not to a zero hit rate.
//!
//! # Concurrency
//!
//! The cache is **lock-striped**: entries are sharded by `CacheKey`
//! hash over [`TgiConfig::read_cache_shards`](crate::TgiConfig)
//! independent LRU lists, each behind its own mutex, so concurrent
//! readers pinned to different watermarks (see
//! [`TgiService`](crate::service::TgiService)) contend only when they
//! touch the *same* stripe. The per-shard byte budgets always sum to
//! the configured total; eviction is per-shard LRU. A shard's lock is
//! only ever held for the pointer surgery of one lookup or insert —
//! never across a store fetch or a decode (the `lock-ordering` lint
//! rule enforces this workspace-wide).
//!
//! # Failure semantics
//!
//! A cache *hit* may legitimately skip the store (the entry is an
//! exact copy of write-once data — morally a local replica). A *miss*
//! — including a miss caused by eviction — must re-run the original
//! fallible fetch, so a degraded cluster surfaces
//! [`StoreError::Unavailable`](hgs_store::StoreError) instead of
//! being papered over with a stale or partial graph. The query-path
//! code in [`query`](crate::query) and [`query_plan`](crate::query_plan)
//! upholds this: nothing is ever synthesized on a miss.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use hgs_delta::{ColumnarDelta, ColumnarEventlist, Delta, Eventlist, FxHashMap, FxHasher};

use crate::build::TgiView;

/// What one cached entry describes.
///
/// `Clone` but deliberately not `Copy`: the secondary-index variant
/// carries its term bytes (an `Arc<[u8]>`, so clones are cheap).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CacheKey {
    /// `(tsid, sid, did, pid)` — one stored row's decode product.
    Row(u32, u32, u64, u32),
    /// `(tsid, kind, term)` — one secondary-index row's decoded
    /// change-point list (see [`crate::attr_index`]).
    Term(u32, u8, Arc<[u8]>),
    /// `(tsid, leaf)` — whole-graph checkpoint state (all sids/pids).
    Leaf(u32, u32),
    /// `(tsid, sid, leaf)` — one horizontal partition's checkpoint
    /// state at a leaf (the sid's tree-path rows summed across pids,
    /// before eventlist replay). The parallel multipoint fill's unit;
    /// the whole-graph [`CacheKey::Leaf`] entry is the sum of these.
    SidLeaf(u32, u32, u32),
    /// `(tsid, sid, pid, leaf)` — one micro-partition's checkpoint
    /// state (tree-path rows summed, before eventlist replay).
    Part(u32, u32, u32, u32),
}

impl CacheKey {
    /// Whether this entry is a materialized checkpoint *state*
    /// (`Leaf` / `SidLeaf` / `Part`) rather than a decoded row —
    /// states and rows keep separate hit/miss counters so the bench
    /// and CI gates can see path-replay sharing, not just decode
    /// sharing.
    pub(crate) fn is_state(&self) -> bool {
        !matches!(self, CacheKey::Row(..) | CacheKey::Term(..))
    }
}

/// A cached decode product.
pub(crate) enum Cached {
    Delta(Arc<Delta>),
    Elist(Arc<Eventlist>),
    /// A lazily-decoded columnar delta row: all memoized column
    /// materializations share the row's single backing buffer.
    ColDelta(Arc<ColumnarDelta>),
    /// A lazily-decoded columnar eventlist row (see
    /// [`Cached::ColDelta`]).
    ColElist(Arc<ColumnarEventlist>),
    /// A decoded value-term change-point row of the secondary index.
    TermPoints(Arc<Vec<hgs_delta::TermPoint>>),
    /// A decoded key-term set-point row of the secondary index.
    KeyPoints(Arc<Vec<hgs_delta::KeyPoint>>),
    /// The row is known to be absent from the store (legitimately —
    /// empty micro-partitions are never written). Absence of a
    /// write-once row is itself immutable, so it caches safely.
    Absent,
}

/// Fixed per-entry bookkeeping charge (key + links + map slot).
const ENTRY_OVERHEAD: usize = 64;

impl Cached {
    /// Byte footprint charged against the budget.
    ///
    /// Columnar entries charge the shared backing buffer **once** plus
    /// the total decompressed size of every column segment (known up
    /// front from the LZSS length prefixes): the charge is fixed when
    /// the entry is inserted and already covers any column the entry
    /// later materializes, so lazy decodes never grow an entry past
    /// its accounted weight and the backing `Bytes` is never counted
    /// per-column.
    fn weight(&self) -> usize {
        ENTRY_OVERHEAD
            + match self {
                Cached::Delta(d) => d.weight_bytes(),
                Cached::Elist(e) => e.weight_bytes(),
                Cached::ColDelta(c) => c.backing_len() + c.raw_len_total(),
                Cached::ColElist(c) => c.backing_len() + c.raw_len_total(),
                Cached::TermPoints(p) => hgs_delta::attr_index::term_points_weight(p),
                Cached::KeyPoints(p) => hgs_delta::attr_index::key_points_weight(p),
                Cached::Absent => 0,
            }
    }

    /// Cheap handle copy (`Arc` clone, not a deep copy).
    fn shallow(&self) -> Cached {
        match self {
            Cached::Delta(d) => Cached::Delta(d.clone()),
            Cached::Elist(e) => Cached::Elist(e.clone()),
            Cached::ColDelta(c) => Cached::ColDelta(c.clone()),
            Cached::ColElist(c) => Cached::ColElist(c.clone()),
            Cached::TermPoints(p) => Cached::TermPoints(p.clone()),
            Cached::KeyPoints(p) => Cached::KeyPoints(p.clone()),
            Cached::Absent => Cached::Absent,
        }
    }
}

/// Point-in-time counters of the read cache, via
/// [`TgiView::cache_stats`] (reachable as `tgi.cache_stats()` on the
/// owning handle too).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (rows + states).
    pub hits: u64,
    /// Lookups that fell through to a store fetch + decode
    /// (rows + states).
    pub misses: u64,
    /// Decoded-row (`Row`) lookups answered from the cache.
    pub row_hits: u64,
    /// Decoded-row (`Row`) lookups that missed.
    pub row_misses: u64,
    /// Checkpoint-state (`Leaf`/`SidLeaf`/`Part`) lookups answered
    /// from the cache — a state hit skips a whole tree-path replay,
    /// not just one decode.
    pub state_hits: u64,
    /// Checkpoint-state lookups that missed (the state had to be
    /// rebuilt from rows).
    pub state_misses: u64,
    /// Entries inserted since construction.
    pub insertions: u64,
    /// Entries evicted (least-recently-used first) to hold the budget.
    pub evictions: u64,
    /// Bytes currently retained (always `<= budget`).
    pub bytes: usize,
    /// Configured byte budget (`0` disables caching).
    pub budget: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sentinel slab index for "no neighbor".
const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Cached,
    weight: usize,
    /// Towards the most-recently-used end.
    prev: usize,
    /// Towards the least-recently-used end.
    next: usize,
}

/// Slab-backed intrusive LRU list + index. All links are slab indices,
/// so a touch is pointer surgery, never a re-hash or reallocation.
struct Inner {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Most-recently-used slot (`NIL` when empty).
    head: usize,
    /// Least-recently-used slot (`NIL` when empty).
    tail: usize,
    bytes: usize,
    budget: usize,
    insertions: u64,
    evictions: u64,
}

impl Inner {
    /// The entry in `slot`. Every slot index flowing in here came from
    /// `map` or a list link, both of which only ever hold occupied
    /// slots — an empty `Option` is a corrupted slab, not a recoverable
    /// condition.
    fn entry(&self, slot: usize) -> &Entry {
        // hgs-lint: allow(no-panic-in-try, "slab invariant: map/list indices always point at occupied slots")
        self.slots[slot].as_ref().expect("linked slot occupied")
    }

    /// Mutable twin of [`Inner::entry`], same slab invariant.
    fn entry_mut(&mut self, slot: usize) -> &mut Entry {
        // hgs-lint: allow(no-panic-in-try, "slab invariant: map/list indices always point at occupied slots")
        self.slots[slot].as_mut().expect("linked slot occupied")
    }

    /// Take the entry out of `slot`, freeing it. Same slab invariant
    /// as [`Inner::entry`].
    fn take_entry(&mut self, slot: usize) -> Entry {
        // hgs-lint: allow(no-panic-in-try, "slab invariant: map/list indices always point at occupied slots")
        self.slots[slot].take().expect("linked slot occupied")
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(slot);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Drop the least-recently-used entry. No-op on an empty cache.
    fn evict_tail(&mut self) {
        let slot = self.tail;
        if slot == NIL {
            return;
        }
        self.unlink(slot);
        let e = self.take_entry(slot);
        self.map.remove(&e.key);
        self.bytes -= e.weight;
        self.free.push(slot);
        self.evictions += 1;
    }

    /// Evict least-recently-used entries until the budget holds.
    fn enforce_budget(&mut self) {
        while self.bytes > self.budget && self.tail != NIL {
            self.evict_tail();
        }
    }
}

/// Default shard (stripe) count of the read cache; see
/// [`TgiConfig::read_cache_shards`](crate::TgiConfig).
pub const DEFAULT_READ_CACHE_SHARDS: usize = 8;

/// Split `total` bytes over `n` shards so the per-shard budgets sum
/// to exactly `total` (the first `total % n` shards carry one extra
/// byte).
fn shard_budgets(total: usize, n: usize) -> impl Iterator<Item = usize> {
    let base = total / n;
    let extra = total % n;
    (0..n).map(move |i| base + usize::from(i < extra))
}

/// The stripe a key routes to among `n` shards. Deterministic (FxHash
/// of the key, remixed through the splitmix finalizer so consecutive
/// row ids spread), so a key always routes to the same shard and the
/// sharded cache partitions the key space exactly.
fn shard_of(key: &CacheKey, n: usize) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (hgs_delta::hash::hash_u64(h.finish()) % n as u64) as usize
}

/// The session-wide read cache, shared by `Arc` between every query
/// path and every published [`TgiView`]; all methods take `&self` and
/// are safe under concurrent readers and a concurrent writer.
///
/// Lock-striped by key hash: each shard is an independent LRU behind
/// its own mutex with its own slice of the byte budget (the slices
/// always sum to the configured total).
pub struct ReadCache {
    shards: Box<[Mutex<Inner>]>,
    /// Configured total budget, mirrored outside the shard locks so
    /// [`ReadCache::is_enabled`] is a lock-free load.
    total_budget: AtomicUsize,
    row_hits: AtomicU64,
    row_misses: AtomicU64,
    state_hits: AtomicU64,
    state_misses: AtomicU64,
}

impl ReadCache {
    /// Empty cache with an explicit stripe count (`shards >= 1`; a
    /// single stripe recovers the exact global-LRU semantics the unit
    /// and property tests pin down).
    pub(crate) fn with_shards(budget: usize, shards: usize) -> ReadCache {
        let n = shards.max(1);
        ReadCache {
            shards: shard_budgets(budget, n)
                .map(|b| {
                    Mutex::new(Inner {
                        map: FxHashMap::default(),
                        slots: Vec::new(),
                        free: Vec::new(),
                        head: NIL,
                        tail: NIL,
                        bytes: 0,
                        budget: b,
                        insertions: 0,
                        evictions: 0,
                    })
                })
                .collect(),
            total_budget: AtomicUsize::new(budget),
            row_hits: AtomicU64::new(0),
            row_misses: AtomicU64::new(0),
            state_hits: AtomicU64::new(0),
            state_misses: AtomicU64::new(0),
        }
    }

    /// The stripe `key` lives in (see [`shard_of`]).
    fn shard_of(&self, key: &CacheKey) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Look up `key`, promoting it to most-recently-used in its shard
    /// on a hit. Row and checkpoint-state lookups are counted
    /// separately (see [`CacheStats`]).
    pub(crate) fn get(&self, key: CacheKey) -> Option<Cached> {
        let mut inner = self.shards[self.shard_of(&key)].lock();
        let (hits, misses) = if key.is_state() {
            (&self.state_hits, &self.state_misses)
        } else {
            (&self.row_hits, &self.row_misses)
        };
        match inner.map.get(&key).copied() {
            Some(slot) => {
                inner.unlink(slot);
                inner.push_front(slot);
                hits.fetch_add(1, Ordering::Relaxed);
                Some(inner.entry(slot).value.shallow())
            }
            None => {
                misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, then evict that shard's
    /// least-recently-used entries until its budget slice holds again.
    /// An entry larger than the shard's whole slice is rejected up
    /// front — letting it in would evict the shard's entire working
    /// set before the entry finally evicted itself, recreating the
    /// clear-on-overflow pathology this cache exists to remove.
    pub(crate) fn put(&self, key: CacheKey, value: Cached) {
        let mut inner = self.shards[self.shard_of(&key)].lock();
        if inner.budget == 0 {
            return;
        }
        let weight = value.weight();
        if weight > inner.budget {
            // Drop any smaller stale version of the key; leave the
            // rest of the working set untouched.
            if let Some(slot) = inner.map.get(&key).copied() {
                inner.unlink(slot);
                let e = inner.take_entry(slot);
                inner.map.remove(&e.key);
                inner.bytes -= e.weight;
                inner.free.push(slot);
                inner.evictions += 1;
            }
            return;
        }
        if let Some(slot) = inner.map.get(&key).copied() {
            // Rows are write-once, so a re-insert carries an identical
            // value; just refresh recency (and weight, defensively).
            inner.unlink(slot);
            inner.push_front(slot);
            let e = inner.entry_mut(slot);
            let old = e.weight;
            e.value = value;
            e.weight = weight;
            inner.bytes = inner.bytes - old + weight;
        } else {
            let slot = match inner.free.pop() {
                Some(s) => s,
                None => {
                    inner.slots.push(None);
                    inner.slots.len() - 1
                }
            };
            inner.slots[slot] = Some(Entry {
                key: key.clone(),
                value,
                weight,
                prev: NIL,
                next: NIL,
            });
            inner.map.insert(key, slot);
            inner.push_front(slot);
            inner.bytes += weight;
            inner.insertions += 1;
        }
        inner.enforce_budget();
    }

    /// Whether caching is on (total `budget > 0`). Lock-free: lets
    /// callers on the hot path skip building a value (e.g. a deep
    /// state clone) whose `put` would be a guaranteed no-op, without
    /// touching any shard mutex.
    pub(crate) fn is_enabled(&self) -> bool {
        self.total_budget.load(Ordering::Relaxed) > 0
    }

    /// Change the total byte budget, re-slicing it over the shards
    /// and evicting each shard's least-recently-used entries (never a
    /// wholesale clear) until its new slice holds.
    pub(crate) fn set_budget(&self, budget: usize) {
        self.total_budget.store(budget, Ordering::Relaxed);
        for (shard, slice) in self
            .shards
            .iter()
            .zip(shard_budgets(budget, self.shards.len()))
        {
            let mut inner = shard.lock();
            inner.budget = slice;
            inner.enforce_budget();
        }
    }

    /// Current counters, aggregated over every shard. The hit/miss
    /// counters are global atomics; `insertions`/`evictions`/`bytes`
    /// sum the per-shard ledgers, and `budget` is the configured
    /// total (= the sum of the per-shard slices).
    pub(crate) fn stats(&self) -> CacheStats {
        let row_hits = self.row_hits.load(Ordering::Relaxed);
        let row_misses = self.row_misses.load(Ordering::Relaxed);
        let state_hits = self.state_hits.load(Ordering::Relaxed);
        let state_misses = self.state_misses.load(Ordering::Relaxed);
        let mut stats = CacheStats {
            hits: row_hits + state_hits,
            misses: row_misses + state_misses,
            row_hits,
            row_misses,
            state_hits,
            state_misses,
            insertions: 0,
            evictions: 0,
            bytes: 0,
            budget: 0,
        };
        for shard in self.shards.iter() {
            let inner = shard.lock();
            stats.insertions += inner.insertions;
            stats.evictions += inner.evictions;
            stats.bytes += inner.bytes;
            stats.budget += inner.budget;
        }
        stats
    }

    /// Number of live entries across all shards.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Live keys in most-recently-used-first order, per shard in
    /// shard order (with one shard this is the exact global recency
    /// order the reference-model tests pin down).
    #[cfg(test)]
    fn keys_mru_first(&self) -> Vec<CacheKey> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            let mut cur = inner.head;
            while cur != NIL {
                let e = inner.entry(cur);
                out.push(e.key.clone());
                cur = e.next;
            }
        }
        out
    }
}

impl TgiView {
    /// Re-budget the session-wide read cache (in bytes; `0` disables
    /// caching). Over-budget entries are evicted least-recently-used
    /// first; retained entries keep serving hits.
    pub fn set_read_cache_budget(&self, bytes: usize) {
        self.read_cache.set_budget(bytes);
    }

    /// Counters of the session-wide read cache: hits, misses,
    /// insertions, evictions, retained bytes and the configured byte
    /// budget. Hits and misses are additionally split into
    /// decoded-row vs checkpoint-state counters
    /// ([`CacheStats::row_hits`] / [`CacheStats::state_hits`], …) —
    /// a state hit spares a whole tree-path replay, not just one
    /// decode, so the split is what the cache benches gate on.
    pub fn cache_stats(&self) -> CacheStats {
        self.read_cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::StaticNode;
    use proptest::prelude::*;

    /// A delta of `n` plain nodes weighs `ENTRY_OVERHEAD + 8n` in the
    /// cache's accounting — a convenient knob for the tests below.
    fn delta_entry(n: usize) -> Cached {
        let mut d = Delta::new();
        for i in 0..n as u64 {
            d.insert(StaticNode::new(i));
        }
        Cached::Delta(Arc::new(d))
    }

    fn key(i: u64) -> CacheKey {
        CacheKey::Row(0, 0, i, 0)
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits exactly three 10-node entries. One shard: the
        // test pins the exact global recency order.
        let w = delta_entry(10).weight();
        let cache = ReadCache::with_shards(3 * w, 1);
        for i in 0..3 {
            cache.put(key(i), delta_entry(10));
        }
        assert_eq!(cache.len(), 3);
        // Touch key 0: key 1 becomes the LRU.
        assert!(cache.get(key(0)).is_some());
        cache.put(key(3), delta_entry(10));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(key(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(key(0)).is_some(), "recently-touched survives");
        assert!(cache.get(key(2)).is_some());
        assert!(cache.get(key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.budget);
    }

    #[test]
    fn shrinking_the_budget_evicts_incrementally_not_wholesale() {
        let w = delta_entry(10).weight();
        let cache = ReadCache::with_shards(4 * w, 1);
        for i in 0..4 {
            cache.put(key(i), delta_entry(10));
        }
        cache.set_budget(2 * w);
        // The two most-recently-inserted entries survive — a clear()
        // would have taken the whole working set down.
        assert_eq!(cache.keys_mru_first(), vec![key(3), key(2)]);
        cache.set_budget(0);
        assert_eq!(cache.len(), 0);
        // Disabled cache refuses inserts.
        cache.put(key(9), delta_entry(1));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn oversized_entry_does_not_stick_but_rest_survives() {
        let w = delta_entry(4).weight();
        let cache = ReadCache::with_shards(3 * w, 1);
        cache.put(key(0), delta_entry(4));
        cache.put(key(1), delta_entry(4));
        // An entry bigger than the whole budget cannot be retained...
        cache.put(key(2), delta_entry(1000));
        assert!(cache.get(key(2)).is_none());
        // ...and it must not flush the resident working set on its
        // way through (that would be clear-on-overflow again).
        assert!(cache.get(key(0)).is_some(), "working set survives");
        assert!(cache.get(key(1)).is_some(), "working set survives");
        // The accounting stays within budget.
        let s = cache.stats();
        assert!(s.bytes <= s.budget, "{} > {}", s.bytes, s.budget);
        // Refreshing an existing key with an oversized value drops
        // that key only.
        cache.put(key(1), delta_entry(1000));
        assert!(cache.get(key(1)).is_none(), "oversized refresh drops key");
        assert!(cache.get(key(0)).is_some(), "other entries untouched");
    }

    /// Row and checkpoint-state lookups keep separate counters, and
    /// the headline `hits`/`misses` are always their sum.
    #[test]
    fn state_and_row_counters_are_split() {
        let cache = ReadCache::with_shards(1 << 20, DEFAULT_READ_CACHE_SHARDS);
        let row = key(1);
        let term = CacheKey::Term(0, 0, Arc::from(&b"EntityType"[..]));
        let state = CacheKey::SidLeaf(0, 2, 3);
        assert!(state.is_state() && !row.is_state() && !term.is_state());
        cache.put(row.clone(), delta_entry(2));
        cache.put(
            term.clone(),
            Cached::TermPoints(Arc::new(vec![hgs_delta::TermPoint {
                time: 0,
                nid: 1,
                carry: false,
                became: true,
            }])),
        );
        cache.put(state.clone(), delta_entry(2));
        assert!(cache.get(row).is_some());
        assert!(cache.get(term).is_some());
        assert!(cache.get(state).is_some());
        assert!(cache.get(CacheKey::SidLeaf(0, 9, 9)).is_none());
        assert!(cache.get(CacheKey::Leaf(0, 9)).is_none());
        assert!(cache.get(CacheKey::Part(0, 0, 0, 9)).is_none());
        assert!(cache.get(key(99)).is_none());
        let s = cache.stats();
        assert_eq!((s.row_hits, s.row_misses), (2, 1));
        assert_eq!((s.state_hits, s.state_misses), (1, 3));
        assert_eq!(s.hits, s.row_hits + s.state_hits);
        assert_eq!(s.misses, s.row_misses + s.state_misses);
    }

    /// Reference LRU model: MRU-first vector of `(key, weight)`.
    struct Model {
        entries: Vec<(u64, usize)>,
        budget: usize,
    }

    impl Model {
        fn touch(&mut self, k: u64) -> bool {
            if let Some(pos) = self.entries.iter().position(|&(e, _)| e == k) {
                let e = self.entries.remove(pos);
                self.entries.insert(0, e);
                true
            } else {
                false
            }
        }

        fn put(&mut self, k: u64, w: usize) {
            if self.budget == 0 {
                return;
            }
            if w > self.budget {
                // Oversized entries are rejected (a stale smaller
                // version of the key is dropped), never flushed
                // through the working set.
                self.entries.retain(|&(e, _)| e != k);
                return;
            }
            if !self.touch(k) {
                self.entries.insert(0, (k, w));
            }
            self.entries[0].1 = w;
            while self.bytes() > self.budget && !self.entries.is_empty() {
                self.entries.pop();
            }
        }

        fn bytes(&self) -> usize {
            self.entries.iter().map(|&(_, w)| w).sum()
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Put(u64, usize),
        Get(u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..24, 0usize..40).prop_map(|(k, n)| Op::Put(k, n)),
            2 => (0u64..24).prop_map(Op::Get),
        ]
    }

    proptest! {
        /// Under arbitrary insert/lookup sequences the cache (a) never
        /// exceeds its byte budget, (b) retains exactly what a
        /// reference LRU model retains, in the same recency order —
        /// i.e. eviction is least-recently-used-first, not wholesale.
        #[test]
        fn matches_reference_lru_and_respects_budget(
            ops in prop::collection::vec(arb_op(), 1..120),
            budget_entries in 0usize..12,
        ) {
            let unit = delta_entry(0).weight(); // ENTRY_OVERHEAD
            let budget = budget_entries * (unit + 8 * 20);
            let cache = ReadCache::with_shards(budget, 1);
            let mut model = Model { entries: Vec::new(), budget };
            for op in ops {
                match op {
                    Op::Put(k, n) => {
                        cache.put(key(k), delta_entry(n));
                        model.put(k, unit + 8 * n);
                    }
                    Op::Get(k) => {
                        let hit = cache.get(key(k)).is_some();
                        let model_hit = model.touch(k);
                        prop_assert_eq!(hit, model_hit, "hit mismatch on {}", k);
                    }
                }
                let s = cache.stats();
                prop_assert!(s.bytes <= s.budget, "over budget: {:?}", s);
                prop_assert_eq!(s.bytes, model.bytes(), "byte accounting diverged");
                let got = cache.keys_mru_first();
                let want: Vec<CacheKey> =
                    model.entries.iter().map(|&(k, _)| key(k)).collect();
                prop_assert_eq!(got, want, "retention/recency order diverged");
            }
        }

        /// The sharded cache behaves exactly like one independent
        /// reference LRU per stripe: keys route deterministically,
        /// each stripe holds its slice of the budget, and the
        /// aggregated stats sum the stripes.
        #[test]
        fn sharded_cache_matches_per_shard_reference_models(
            ops in prop::collection::vec(arb_op(), 1..120),
            budget_entries in 0usize..16,
            shards in 1usize..6,
        ) {
            let unit = delta_entry(0).weight();
            let budget = budget_entries * (unit + 8 * 20);
            let cache = ReadCache::with_shards(budget, shards);
            let mut models: Vec<Model> = shard_budgets(budget, shards)
                .map(|b| Model { entries: Vec::new(), budget: b })
                .collect();
            for op in ops {
                match op {
                    Op::Put(k, n) => {
                        cache.put(key(k), delta_entry(n));
                        models[shard_of(&key(k), shards)].put(k, unit + 8 * n);
                    }
                    Op::Get(k) => {
                        let hit = cache.get(key(k)).is_some();
                        let model_hit = models[shard_of(&key(k), shards)].touch(k);
                        prop_assert_eq!(hit, model_hit, "hit mismatch on {}", k);
                    }
                }
                let s = cache.stats();
                prop_assert!(s.bytes <= s.budget, "over budget: {:?}", s);
                prop_assert_eq!(s.budget, budget, "shard budgets must sum to the total");
                let model_bytes: usize = models.iter().map(|m| m.bytes()).sum();
                prop_assert_eq!(s.bytes, model_bytes, "byte accounting diverged");
                // Per-stripe recency: keys_mru_first walks the shards
                // in order, so it must equal the models' concatenation.
                let got = cache.keys_mru_first();
                let want: Vec<CacheKey> = models
                    .iter()
                    .flat_map(|m| m.entries.iter().map(|&(k, _)| key(k)))
                    .collect();
                prop_assert_eq!(got, want, "per-shard retention/recency diverged");
            }
        }
    }

    /// Satellite invariant check: under concurrent mixed-key traffic
    /// from several threads the aggregated stats stay coherent —
    /// budgets sum to the configured total, retained bytes never
    /// exceed it, every lookup is counted exactly once, and the
    /// insertion/eviction ledger matches the live entry count.
    #[test]
    fn concurrent_mixed_key_traffic_keeps_aggregate_invariants() {
        let w = delta_entry(10).weight();
        let budget = 13 * w; // deliberately not divisible by the stripes
        let cache = ReadCache::with_shards(budget, 4);
        let threads = 4;
        let gets_per_thread = 400u64;
        let puts_per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = &cache;
                s.spawn(move || {
                    // Overlapping key ranges: every pair of threads
                    // contends on some stripes.
                    for i in 0..puts_per_thread {
                        let k = key((t as u64 * 7 + i) % 40);
                        cache.put(k, delta_entry(10));
                    }
                    for i in 0..gets_per_thread {
                        let _unused: Option<Cached> = cache.get(key(i % 50));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(
            s.budget, budget,
            "shard budgets sum to the configured total"
        );
        assert!(
            s.bytes <= s.budget,
            "retained {} > budget {}",
            s.bytes,
            s.budget
        );
        assert_eq!(
            s.hits + s.misses,
            threads as u64 * gets_per_thread,
            "every lookup counted exactly once"
        );
        assert_eq!(s.hits, s.row_hits + s.state_hits);
        assert_eq!(s.misses, s.row_misses + s.state_misses);
        assert_eq!(
            s.insertions - s.evictions,
            cache.len() as u64,
            "insertion/eviction ledger matches live entries"
        );
        // Shrinking under load already happened above; shrinking to a
        // sliver now must re-balance every stripe's slice.
        cache.set_budget(2 * w);
        let s = cache.stats();
        assert_eq!(s.budget, 2 * w);
        assert!(s.bytes <= s.budget);
        cache.set_budget(0);
        assert_eq!(cache.len(), 0, "zero budget drains every stripe");
        assert!(!cache.is_enabled());
    }
}

//! Retrieval measurement: wall-clock plus cost-model estimates.

use hgs_store::{CostModel, SimStore};

/// What one retrieval cost, in both real and modelled terms.
///
/// `wall_secs` is the measured in-process time (real deserialization
/// and thread parallelism, no network). `modeled_secs` runs the exact
/// access counts through the calibrated [`CostModel`] to estimate the
/// latency on a paper-like Cassandra cluster; the figure harnesses
/// report both, labelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchReport {
    /// Measured wall-clock seconds.
    pub wall_secs: f64,
    /// Cost-model estimate in seconds (cluster-shaped).
    pub modeled_secs: f64,
    /// Point lookups issued.
    pub lookups: u64,
    /// Range scans issued.
    pub scans: u64,
    /// Rows (micro-deltas) returned.
    pub rows: u64,
    /// Value bytes moved (stored size).
    pub bytes: u64,
}

impl FetchReport {
    /// Total store requests (gets + scans) — the paper's `∑∆ 1`
    /// measure at the storage layer.
    pub fn requests(&self) -> u64 {
        self.lookups + self.scans
    }
}

/// Run `f` against the store, bracketing per-machine access counters,
/// and return its result together with a [`FetchReport`] computed for
/// `clients` parallel fetch clients.
pub fn measure<R>(
    store: &SimStore,
    model: &CostModel,
    clients: usize,
    f: impl FnOnce() -> R,
) -> (R, FetchReport) {
    let before = store.stats_snapshot();
    let t0 = std::time::Instant::now();
    let out = f();
    let wall = t0.elapsed().as_secs_f64();
    let after = store.stats_snapshot();
    let diff = SimStore::stats_since(&after, &before);
    let report = FetchReport {
        wall_secs: wall,
        // Fault-plan latency multipliers (straggler machines) scale the
        // modelled server-side term; an empty slice is the no-op case.
        modeled_secs: model.estimate_seconds_with_latency(
            &diff,
            clients,
            &store.latency_multipliers(),
        ),
        lookups: diff.iter().map(|m| m.gets).sum(),
        scans: diff.iter().map(|m| m.scans).sum(),
        rows: diff.iter().map(|m| m.rows_read).sum(),
        bytes: diff.iter().map(|m| m.bytes_read).sum(),
    };
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hgs_store::{StoreConfig, Table};

    #[test]
    fn measure_brackets_only_inner_work() {
        let store = SimStore::new(StoreConfig::new(2, 1));
        store.put(Table::Graph, b"k", 0, Bytes::from_static(b"hello"));
        store.get(Table::Graph, b"k", 0).unwrap(); // outside bracket
        let model = CostModel::default();
        let ((), rep) = measure(&store, &model, 4, || {
            store.get(Table::Graph, b"k", 0).unwrap();
            store.get(Table::Graph, b"missing", 0).unwrap();
        });
        assert_eq!(rep.lookups, 2);
        assert_eq!(rep.rows, 1);
        assert_eq!(rep.bytes, 5);
        assert!(rep.modeled_secs > 0.0);
        assert!(rep.wall_secs >= 0.0);
    }
}

//! Index metadata: the intersection-tree shape, timespan descriptors,
//! version chains, and their binary encodings (stored in the
//! `Timespans`, `Graph` and `Versions` tables).

use bytes::BytesMut;
use hgs_delta::codec::{get_varint, put_varint};
use hgs_delta::{CodecError, NodeId, Time, TimeRange};

/// Delta-id base for eventlist chunks: `did = ELIST_BASE + chunk`.
pub const ELIST_BASE: u64 = 1 << 40;
/// Delta-id base for auxiliary 1-hop replication deltas:
/// `did = AUX_BASE + leaf`.
pub const AUX_BASE: u64 = 1 << 41;

/// Shape of the k-ary intersection tree over the `q` leaf checkpoints
/// of one (timespan, horizontal partition).
///
/// Level 0 holds the leaves; the top level holds the root. Delta-ids
/// are assigned top-down: the root gets did 0, then each lower level
/// left-to-right. Only the root delta and the `child − parent` derived
/// deltas are physically stored; leaves are reconstructed by summing
/// along the root-to-leaf path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of leaves (`q`).
    pub leaves: usize,
    /// Children per parent.
    pub arity: usize,
    /// Node count per level; `level_sizes[0] == leaves`, last is 1.
    pub level_sizes: Vec<usize>,
    /// First did of each level (indexed like `level_sizes`).
    pub level_offsets: Vec<u64>,
}

impl TreeShape {
    /// Compute the shape for `leaves >= 1` checkpoints.
    pub fn new(leaves: usize, arity: usize) -> TreeShape {
        assert!(leaves >= 1 && arity >= 2);
        let mut level_sizes = vec![leaves];
        let mut cur = leaves;
        while cur > 1 {
            cur = cur.div_ceil(arity);
            level_sizes.push(cur);
        }
        // dids: root level first (did 0), descending to leaves.
        let mut level_offsets = vec![0u64; level_sizes.len()];
        let mut next = 0u64;
        for lvl in (0..level_sizes.len()).rev() {
            level_offsets[lvl] = next;
            next += level_sizes[lvl] as u64;
        }
        TreeShape {
            leaves,
            arity,
            level_sizes,
            level_offsets,
        }
    }

    /// Height of the tree (root level index); 0 when a single leaf is
    /// also the root.
    pub fn height(&self) -> usize {
        self.level_sizes.len() - 1
    }

    /// Total number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.level_sizes.iter().sum()
    }

    /// Delta-id of tree node `(level, idx)`.
    pub fn did(&self, level: usize, idx: usize) -> u64 {
        debug_assert!(idx < self.level_sizes[level]);
        self.level_offsets[level] + idx as u64
    }

    /// Delta-ids along the root-to-leaf path for leaf `j` (root
    /// first). Summing the corresponding stored deltas reconstructs
    /// the leaf.
    pub fn path_to_leaf(&self, j: usize) -> Vec<u64> {
        debug_assert!(j < self.leaves);
        let mut path = Vec::with_capacity(self.level_sizes.len());
        let mut idx = j;
        let mut nodes = Vec::with_capacity(self.level_sizes.len());
        for level in 0..self.level_sizes.len() {
            nodes.push((level, idx));
            idx /= self.arity;
        }
        for (level, idx) in nodes.into_iter().rev() {
            path.push(self.did(level, idx));
        }
        path
    }

    /// Parent `(level, idx)` of a non-root node.
    pub fn parent(&self, level: usize, idx: usize) -> (usize, usize) {
        debug_assert!(level < self.height());
        (level + 1, idx / self.arity)
    }
}

/// Metadata for one timespan, shared by all horizontal partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct TimespanMeta {
    /// Timespan id.
    pub tsid: u32,
    /// Time range covered (last span extends to `Time::MAX`).
    pub range: TimeRange,
    /// Checkpoint times `c_0..c_{q-1}`: `c_j` is the state *before*
    /// eventlist chunk `j`; `c_0 == range.start`.
    pub checkpoints: Vec<Time>,
    /// Intersection-tree shape (leaves == checkpoints.len()).
    pub shape: TreeShape,
    /// Micro-partition counts per horizontal partition.
    pub pid_counts: Vec<u32>,
    /// Whether auxiliary 1-hop replication deltas were stored.
    pub has_aux: bool,
}

impl TimespanMeta {
    /// Leaf index whose checkpoint covers time `t` (the last `j` with
    /// `c_j <= t`).
    pub fn leaf_for_time(&self, t: Time) -> usize {
        debug_assert!(t >= self.range.start);
        self.checkpoints
            .partition_point(|&c| c <= t)
            .saturating_sub(1)
    }

    /// Serialize for the `Timespans` table.
    pub fn encode(&self) -> bytes::Bytes {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, self.tsid as u64);
        put_varint(&mut buf, self.range.start);
        put_varint(&mut buf, self.range.end);
        put_varint(&mut buf, self.checkpoints.len() as u64);
        let mut prev = 0u64;
        for &c in &self.checkpoints {
            put_varint(&mut buf, c.wrapping_sub(prev));
            prev = c;
        }
        put_varint(&mut buf, self.shape.arity as u64);
        put_varint(&mut buf, self.pid_counts.len() as u64);
        for &p in &self.pid_counts {
            put_varint(&mut buf, p as u64);
        }
        bytes::BufMut::put_u8(&mut buf, self.has_aux as u8);
        buf.freeze()
    }

    /// Decode a [`TimespanMeta::encode`] blob.
    pub fn decode(mut buf: &[u8]) -> Result<TimespanMeta, CodecError> {
        let b = &mut buf;
        let tsid = get_varint(b)? as u32;
        let start = get_varint(b)?;
        let end = get_varint(b)?;
        let n = get_varint(b)? as usize;
        let mut checkpoints = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.wrapping_add(get_varint(b)?);
            checkpoints.push(prev);
        }
        let arity = get_varint(b)? as usize;
        let np = get_varint(b)? as usize;
        let mut pid_counts = Vec::with_capacity(np);
        for _ in 0..np {
            pid_counts.push(get_varint(b)? as u32);
        }
        let has_aux = match b.split_first() {
            Some((&x, rest)) => {
                *b = rest;
                x != 0
            }
            None => {
                return Err(CodecError::UnexpectedEof {
                    needed: 1,
                    remaining: 0,
                })
            }
        };
        Ok(TimespanMeta {
            tsid,
            range: TimeRange::new(start, end),
            shape: TreeShape::new(checkpoints.len().max(1), arity),
            checkpoints,
            pid_counts,
            has_aux,
        })
    }
}

/// One version-chain entry: "node changed at `time`, and the events
/// live in eventlist chunk `chunk` of timespan `tsid`, micro-partition
/// `pid`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainEntry {
    pub time: Time,
    pub tsid: u32,
    pub chunk: u32,
    pub pid: u32,
}

/// Serialize a version chain (chronologically sorted entries).
pub fn encode_chain(entries: &[ChainEntry]) -> bytes::Bytes {
    let mut buf = BytesMut::with_capacity(entries.len() * 6 + 4);
    put_varint(&mut buf, entries.len() as u64);
    let mut prev_t = 0u64;
    for e in entries {
        put_varint(&mut buf, e.time.wrapping_sub(prev_t));
        prev_t = e.time;
        put_varint(&mut buf, e.tsid as u64);
        put_varint(&mut buf, e.chunk as u64);
        put_varint(&mut buf, e.pid as u64);
    }
    buf.freeze()
}

/// Decode a version chain.
pub fn decode_chain(mut buf: &[u8]) -> Result<Vec<ChainEntry>, CodecError> {
    let b = &mut buf;
    let n = get_varint(b)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut prev_t = 0u64;
    for _ in 0..n {
        prev_t = prev_t.wrapping_add(get_varint(b)?);
        out.push(ChainEntry {
            time: prev_t,
            tsid: get_varint(b)? as u32,
            chunk: get_varint(b)? as u32,
            pid: get_varint(b)? as u32,
        });
    }
    Ok(out)
}

/// Salt decorrelating `sid` hashing from micro-partition hashing.
const SID_SALT: u64 = 0x9027_3321_AB03_77F1;

/// Horizontal partition (`sid`) of a node: a pure hash (§4.4 point 2).
#[inline]
pub fn sid_of(nid: NodeId, ns: u32) -> u32 {
    (hgs_delta::hash::hash_u64(nid ^ SID_SALT) % ns as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_binary_over_five_leaves() {
        let s = TreeShape::new(5, 2);
        assert_eq!(s.level_sizes, vec![5, 3, 2, 1]);
        assert_eq!(s.height(), 3);
        assert_eq!(s.node_count(), 11);
        // root did 0; level 2 gets 1..=2; level 1 gets 3..=5; leaves 6..=10
        assert_eq!(s.did(3, 0), 0);
        assert_eq!(s.did(2, 0), 1);
        assert_eq!(s.did(1, 0), 3);
        assert_eq!(s.did(0, 0), 6);
    }

    #[test]
    fn path_walks_root_to_leaf() {
        let s = TreeShape::new(5, 2);
        let p = s.path_to_leaf(4);
        // leaf 4 -> level1 idx 2 -> level2 idx 1 -> root
        assert_eq!(p, vec![0, s.did(2, 1), s.did(1, 2), s.did(0, 4)]);
        let p0 = s.path_to_leaf(0);
        assert_eq!(p0, vec![0, s.did(2, 0), s.did(1, 0), s.did(0, 0)]);
    }

    #[test]
    fn single_leaf_tree() {
        let s = TreeShape::new(1, 2);
        assert_eq!(s.height(), 0);
        assert_eq!(s.path_to_leaf(0), vec![0]);
    }

    #[test]
    fn parent_relation() {
        let s = TreeShape::new(8, 2);
        assert_eq!(s.parent(0, 5), (1, 2));
        assert_eq!(s.parent(1, 3), (2, 1));
    }

    #[test]
    fn huge_arity_gives_flat_tree() {
        let s = TreeShape::new(10, usize::MAX / 2);
        assert_eq!(s.level_sizes, vec![10, 1]);
        assert_eq!(s.height(), 1);
        assert_eq!(s.path_to_leaf(7).len(), 2);
    }

    #[test]
    fn meta_roundtrip() {
        let m = TimespanMeta {
            tsid: 3,
            range: TimeRange::new(100, 900),
            checkpoints: vec![100, 250, 430],
            shape: TreeShape::new(3, 2),
            pid_counts: vec![4, 7],
            has_aux: true,
        };
        let back = TimespanMeta::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn leaf_for_time_picks_last_checkpoint() {
        let m = TimespanMeta {
            tsid: 0,
            range: TimeRange::new(0, 1000),
            checkpoints: vec![0, 100, 200],
            shape: TreeShape::new(3, 2),
            pid_counts: vec![1],
            has_aux: false,
        };
        assert_eq!(m.leaf_for_time(0), 0);
        assert_eq!(m.leaf_for_time(99), 0);
        assert_eq!(m.leaf_for_time(100), 1);
        assert_eq!(m.leaf_for_time(500), 2);
    }

    #[test]
    fn chain_roundtrip() {
        let entries = vec![
            ChainEntry {
                time: 5,
                tsid: 0,
                chunk: 1,
                pid: 3,
            },
            ChainEntry {
                time: 17,
                tsid: 0,
                chunk: 2,
                pid: 3,
            },
            ChainEntry {
                time: 94,
                tsid: 1,
                chunk: 0,
                pid: 9,
            },
        ];
        assert_eq!(decode_chain(&encode_chain(&entries)).unwrap(), entries);
        assert!(decode_chain(&encode_chain(&[])).unwrap().is_empty());
    }

    #[test]
    fn sid_spreads_nodes() {
        use std::collections::HashSet;
        let sids: HashSet<u32> = (0..100u64).map(|n| sid_of(n, 4)).collect();
        assert_eq!(sids.len(), 4);
        assert!(sids.iter().all(|&s| s < 4));
    }
}

//! # hgs-core — the Temporal Graph Index (TGI)
//!
//! The paper's primary contribution (§4): a tunable, distributed index
//! over the entire history of a graph, storing three families of
//! deltas in a key-value store:
//!
//! 1. **Partitioned eventlists** — the span's events, chunked every
//!    `l` events, scoped per horizontal partition (`sid`) and
//!    micro-partitioned (`pid`);
//! 2. **Derived partitioned snapshots** — per (timespan, `sid`), a
//!    DeltaGraph-style k-ary tree whose parents are intersections of
//!    children; the root and each `child − parent` difference are
//!    stored, micro-partitioned into bounded chunks;
//! 3. **Version chains** — per node, chronological pointers to every
//!    eventlist micro-delta that mentions the node.
//!
//! Plus the paper's auxiliary 1-hop replication micro-deltas
//! (Fig. 5d) under locality partitioning.
//!
//! The index is *tunable* ([`TgiConfig`]): with one horizontal
//! partition, one micro-partition and no chains it degenerates to
//! DeltaGraph; with a one-level tree it is Copy+Log; with a single
//! giant eventlist it is Log — the generalization claim of §4.2,
//! which `crates/baselines` and the integration tests exercise.
//!
//! Retrieval (§4.6) implements the paper's Algorithms 1–5: snapshot,
//! node history, k-hop neighborhood (both strategies), and 1-hop
//! neighborhood history, all with `c`-way parallel fetch. Multipoint
//! snapshot batches go through the shared-path planner
//! ([`query_plan`]): tree-path rows are fetched once per chunk and
//! states are cloned only at path divergence points; with `c > 1` the
//! fill runs as per-`(sid, leaf)` work items on a work-stealing queue
//! backed by a per-`(tsid, sid, leaf)` checkpoint-state cache tier.
//! Single-point reads run as degenerate one-time plans over the same
//! machinery, so **every** query path shares one session-wide
//! byte-budgeted, lock-striped LRU read cache of decoded rows and
//! materialized checkpoint states ([`read_cache`]; budget via
//! [`TgiConfig::read_cache_bytes`], counters — split into row vs
//! state hits — via [`TgiView::cache_stats`]). Every retrieval and
//! build primitive has a fallible `try_*` variant that surfaces
//! [`hgs_store::StoreError::Unavailable`] instead of silently
//! returning partial results (see [`query`] for the contract); a
//! cache miss — including one caused by eviction — always re-runs the
//! fallible fetch.
//!
//! Serving: the owning [`Tgi`] handle separates its mutable append
//! state from an immutable, cheaply-clonable [`TgiView`] holding every
//! read path ([`Tgi`] `Deref`s to its current view). [`TgiService`]
//! wraps the handle for concurrent use — one serialized writer
//! publishing a watermarked view per append, any number of reader
//! threads pinning views for snapshot-isolated reads over live ingest
//! ([`service`]).

pub mod attr_index;
pub mod build;
pub mod config;
pub mod costs;
pub mod meta;
pub mod persist;
pub mod query;
pub mod query_plan;
pub mod read_cache;
pub mod scope;
pub mod service;
pub mod stats;

pub use attr_index::LABEL_KEY;
pub use build::{BuildError, Tgi, TgiView};
pub use config::{PartitionStrategy, TgiConfig, DEFAULT_READ_CACHE_BYTES};
pub use meta::{TimespanMeta, TreeShape};
pub use persist::OpenError;
pub use query::{KhopStrategy, NeighborhoodHistory, NodeHistory};
pub use query_plan::PlanSummary;
pub use read_cache::{CacheStats, DEFAULT_READ_CACHE_SHARDS};
pub use service::TgiService;
pub use stats::FetchReport;

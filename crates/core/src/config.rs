//! TGI configuration — the tuning knobs of §4.4's construction
//! parameters, using the paper's notation.

use hgs_delta::StorageLayout;
use hgs_partition::{NodeWeighting, Omega};

/// Micro-delta partitioning strategy (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Node-id hash partitioning: zero bookkeeping, no locality.
    Random,
    /// Locality-aware (min-cut style) partitioning over the
    /// Ω-collapsed span graph; optionally replicate 1-hop boundary
    /// neighbors into auxiliary micro-deltas (Fig. 5d).
    Locality { replicate_boundary: bool },
}

/// TGI construction parameters. Paper notation in brackets.
#[derive(Debug, Clone, Copy)]
pub struct TgiConfig {
    /// Events per timespan `ts`: partitioning is recomputed at
    /// timespan boundaries.
    pub events_per_timespan: usize,
    /// Eventlist chunk size `l`: a snapshot checkpoint (tree leaf)
    /// is taken every `l` events within a span.
    pub eventlist_size: usize,
    /// Tree arity `k`: children per parent in the intersection tree.
    pub arity: usize,
    /// Micro-delta partition size `ps`: target number of node
    /// descriptions per micro-delta.
    pub partition_size: usize,
    /// Number of horizontal partitions `ns`: the node-id hash
    /// partitions that spread the index across placement chunks.
    pub horizontal_partitions: u32,
    /// Micro-partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Maintain per-node version chains (the entity-centric side of
    /// TGI). Disabling converges the index to DeltaGraph.
    pub version_chains: bool,
    /// Time-collapse function for locality partitioning.
    pub omega: Omega,
    /// Node weighting for locality partitioning balance.
    pub weighting: NodeWeighting,
    /// Byte budget of the session-wide read cache (decoded rows and
    /// materialized checkpoint states, LRU-evicted; `0` disables
    /// caching). Runtime-tunable via
    /// [`TgiView::set_read_cache_budget`](crate::build::TgiView).
    pub read_cache_bytes: usize,
    /// Lock stripes of the read cache: entries are sharded by key
    /// hash over this many independent LRU lists, each behind its own
    /// mutex with its own slice of `read_cache_bytes` (the slices sum
    /// to the total). More stripes mean less contention between
    /// concurrent readers at the cost of coarser per-stripe LRU. Like
    /// `write_batch_rows` this is a runtime knob, not persisted with
    /// the index.
    pub read_cache_shards: usize,
    /// Maximum rows the construction/ingest write buffer accumulates
    /// before flushing a per-machine batched round trip
    /// (`SimStore::put_batch`). `0` disables write batching entirely
    /// and degrades to the seed's row-at-a-time `put` path — the
    /// sequential reference the build-equivalence tests and the
    /// `build_ingest` bench compare against.
    pub write_batch_rows: usize,
    /// Physical row format for eventlist/delta rows
    /// ([`StorageLayout::Columnar`] stores per-column LZSS segments
    /// decoded lazily; [`StorageLayout::RowWise`] is the original
    /// interleaved format). Persisted with the index — rows are not
    /// self-describing.
    pub layout: StorageLayout,
    /// Maintain the secondary temporal indexes: per-term change-point
    /// rows in the `AttrIndex` table that answer label/attribute
    /// predicate queries without materializing a snapshot
    /// (`Tgi::try_nodes_with_label_at` and friends). Persisted with the
    /// index — the query path must know whether the rows exist.
    /// Disabling falls back to explicit snapshot materialization.
    pub secondary_indexes: bool,
    /// Retry/backoff/circuit-breaker policy the store applies to every
    /// read and batched write issued on behalf of this index (see
    /// [`hgs_store::RetryPolicy`]). Installed on the store by the
    /// build/open path. Like `write_batch_rows` this is a runtime
    /// knob, not persisted with the index.
    pub retry: hgs_store::RetryPolicy,
}

impl Default for TgiConfig {
    fn default() -> TgiConfig {
        TgiConfig {
            events_per_timespan: 20_000,
            eventlist_size: 500,
            arity: 2,
            partition_size: 500,
            horizontal_partitions: 4,
            strategy: PartitionStrategy::Random,
            version_chains: true,
            omega: Omega::UnionMax,
            weighting: NodeWeighting::Uniform,
            read_cache_bytes: DEFAULT_READ_CACHE_BYTES,
            read_cache_shards: crate::read_cache::DEFAULT_READ_CACHE_SHARDS,
            write_batch_rows: DEFAULT_WRITE_BATCH_ROWS,
            layout: StorageLayout::Columnar,
            secondary_indexes: true,
            retry: hgs_store::RetryPolicy::default(),
        }
    }
}

/// Default read-cache budget: 64 MiB of decoded rows and states.
pub const DEFAULT_READ_CACHE_BYTES: usize = 64 << 20;

/// Default write-buffer capacity: 8192 encoded rows per flush. A span
/// flushes at least once at its end regardless. Note this bounds the
/// *write buffer's* flush cadence, not total build memory: the
/// per-sid encode stages a whole span's encoded rows in memory before
/// they reach the buffer (see `encode_span_parallel`).
pub const DEFAULT_WRITE_BATCH_ROWS: usize = 8192;

impl TgiConfig {
    /// Validate parameter sanity; called by the builder.
    pub fn validate(&self) {
        assert!(
            self.events_per_timespan > 0,
            "events_per_timespan must be positive"
        );
        assert!(self.eventlist_size > 0, "eventlist_size must be positive");
        assert!(self.arity >= 2, "tree arity must be >= 2");
        assert!(self.partition_size > 0, "partition_size must be positive");
        assert!(
            self.horizontal_partitions >= 1,
            "need at least one horizontal partition"
        );
        assert!(
            self.eventlist_size <= self.events_per_timespan,
            "eventlist must fit within a timespan"
        );
        assert!(
            self.read_cache_shards >= 1,
            "need at least one read-cache stripe"
        );
        self.retry.validate();
    }

    /// A configuration that makes TGI equivalent to the DeltaGraph
    /// index of the authors' prior work: monolithic deltas (one
    /// horizontal partition, unbounded micro-partitions), no version
    /// chains.
    pub fn deltagraph() -> TgiConfig {
        TgiConfig {
            horizontal_partitions: 1,
            partition_size: usize::MAX,
            version_chains: false,
            ..TgiConfig::default()
        }
    }

    /// A configuration equivalent to Copy+Log: a flat (height-1) tree
    /// of full snapshots every `l` events. Achieved with arity so
    /// large every leaf is a root child; reconstruction cost is then
    /// root + one derived + eventlist.
    pub fn copy_log(eventlist_size: usize) -> TgiConfig {
        TgiConfig {
            eventlist_size,
            arity: usize::MAX / 2,
            horizontal_partitions: 1,
            partition_size: usize::MAX,
            version_chains: false,
            ..TgiConfig::default()
        }
    }

    /// Builder-style setters for the common sweep parameters.
    pub fn with_eventlist_size(mut self, l: usize) -> TgiConfig {
        self.eventlist_size = l;
        self
    }

    /// Set the micro-delta partition size (`ps`).
    pub fn with_partition_size(mut self, ps: usize) -> TgiConfig {
        self.partition_size = ps;
        self
    }

    /// Set the number of horizontal partitions (`ns`).
    pub fn with_horizontal(mut self, ns: u32) -> TgiConfig {
        self.horizontal_partitions = ns;
        self
    }

    /// Set the partitioning strategy.
    pub fn with_strategy(mut self, s: PartitionStrategy) -> TgiConfig {
        self.strategy = s;
        self
    }

    /// Set the events-per-timespan (`ts`).
    pub fn with_timespan(mut self, ts: usize) -> TgiConfig {
        self.events_per_timespan = ts;
        self
    }

    /// Set the read-cache byte budget (`0` disables caching).
    pub fn with_read_cache_bytes(mut self, bytes: usize) -> TgiConfig {
        self.read_cache_bytes = bytes;
        self
    }

    /// Set the read-cache stripe count (`>= 1`; `1` recovers a single
    /// global LRU).
    pub fn with_read_cache_shards(mut self, shards: usize) -> TgiConfig {
        self.read_cache_shards = shards;
        self
    }

    /// Set the write-buffer flush threshold (`0` disables write
    /// batching — the seed row-at-a-time reference path).
    pub fn with_write_batch_rows(mut self, rows: usize) -> TgiConfig {
        self.write_batch_rows = rows;
        self
    }

    /// Set the physical row layout.
    pub fn with_layout(mut self, layout: StorageLayout) -> TgiConfig {
        self.layout = layout;
        self
    }

    /// Enable or disable the secondary temporal indexes.
    pub fn with_secondary_indexes(mut self, on: bool) -> TgiConfig {
        self.secondary_indexes = on;
        self
    }

    /// Set the store retry/backoff/breaker policy (validated by
    /// [`TgiConfig::validate`]).
    pub fn with_retry(mut self, retry: hgs_store::RetryPolicy) -> TgiConfig {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        TgiConfig::default().validate();
        TgiConfig::deltagraph().validate();
        TgiConfig::copy_log(500).validate();
    }

    #[test]
    #[should_panic]
    fn rejects_zero_eventlist() {
        TgiConfig {
            eventlist_size: 0,
            ..TgiConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn rejects_eventlist_larger_than_span() {
        TgiConfig {
            eventlist_size: 100,
            events_per_timespan: 50,
            ..TgiConfig::default()
        }
        .validate();
    }

    #[test]
    fn builder_setters() {
        let c = TgiConfig::default()
            .with_eventlist_size(100)
            .with_partition_size(50)
            .with_horizontal(2)
            .with_timespan(1000)
            .with_strategy(PartitionStrategy::Locality {
                replicate_boundary: true,
            });
        assert_eq!(c.eventlist_size, 100);
        assert_eq!(c.partition_size, 50);
        assert_eq!(c.horizontal_partitions, 2);
        assert_eq!(c.events_per_timespan, 1000);
        assert!(matches!(
            c.strategy,
            PartitionStrategy::Locality {
                replicate_boundary: true
            }
        ));
        assert!(c.secondary_indexes, "secondary indexes default on");
        assert!(!c.with_secondary_indexes(false).secondary_indexes);
        let policy = hgs_store::RetryPolicy {
            max_attempts: 2,
            ..hgs_store::RetryPolicy::default()
        };
        assert_eq!(c.with_retry(policy).retry, policy);
    }
}

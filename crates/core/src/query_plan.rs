//! Multipoint snapshot retrieval planner (§4.6).
//!
//! Temporal queries frequently ask for the graph at *many* time points
//! (evolution plots, TAF fetches, multipoint analytics). The naive
//! approach — one [`Tgi::snapshot`] per time — refetches, re-decodes
//! and re-materializes the entire root-to-leaf delta path for every
//! point, even though the paths of nearby time points are mostly
//! identical. This module plans a whole batch of query times at once:
//!
//! 1. **Group** the times by timespan and by tree leaf (eventlist
//!    chunk);
//! 2. **Union** the root-to-leaf delta ids of all requested leaves per
//!    `(tsid, sid)` chunk and **fetch** each `(sid, did, pid)` row
//!    exactly once through the store's grouped-scan API
//!    ([`hgs_store::SimStore::scan_prefix_batch`] — one round-trip per
//!    chunk instead of one per delta);
//! 3. **Decode** each row at most once, ever: decoded rows and the
//!    materialized per-leaf checkpoint states land in the session-wide
//!    byte-budgeted LRU [`ReadCache`](crate::read_cache::ReadCache)
//!    ([`Tgi::set_read_cache_budget`]), shared with every single-point
//!    query path. Index rows are write-once (spans are append-only),
//!    so cached entries can never go stale. Each chunk's eventlist
//!    scan is *never* skipped — a fully-down chunk still surfaces
//!    [`StoreError::Unavailable`](hgs_store::StoreError) rather than
//!    being papered over by the cache;
//! 4. **Materialize** each requested snapshot by cloning the shared
//!    leaf state at its divergence point and replaying only the
//!    per-time eventlist suffix (times within one leaf advance a
//!    single replay cursor and capture states as it passes them).
//!
//! Together the shared fetch, the decode cache and the
//! clone-at-divergence materialization make `k` time points cost about
//! one shared path walk plus the unavoidable output construction — the
//! `~1×+ε` behaviour the paper's DeltaGraph ancestry promises, instead
//! of `k×`.

use std::sync::Arc;

use hgs_delta::codec::{decode_delta, decode_eventlist};
use hgs_delta::{Delta, Eventlist, FxHashMap, FxHashSet, Time};
use hgs_store::parallel::parallel_chunks;
use hgs_store::{DeltaKey, PlacementKey, StoreError, Table};

use crate::build::{SpanRuntime, Tgi};
use crate::meta::{sid_of, ELIST_BASE};
use crate::read_cache::{CacheKey, Cached};
use crate::scope::apply_event_scoped;

/// How much fetch work a multipoint plan shares, before running it.
///
/// `shared_fetch_units` counts the distinct `(sid, did)` rows the plan
/// pulls (each exactly once); `naive_fetch_units` counts what `k`
/// independent [`Tgi::snapshot`] calls would pull. Their ratio is the
/// planner's fetch saving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Number of requested time points.
    pub times: usize,
    /// Distinct timespans touched.
    pub span_groups: usize,
    /// Distinct (timespan, leaf) groups — one eventlist fetch each.
    pub leaf_groups: usize,
    /// Distinct (sid, did) fetch units the plan retrieves once.
    pub shared_fetch_units: usize,
    /// Fetch units a naive per-time loop would retrieve.
    pub naive_fetch_units: usize,
    /// Store round-trips the plan issues (one grouped scan per
    /// (timespan, sid) chunk).
    pub round_trips: usize,
}

/// Times of one leaf group: `(output slot, time)`, ascending by time.
struct LeafGroup {
    leaf: usize,
    times: Vec<(usize, Time)>,
}

/// All leaf groups of one timespan, ascending by leaf index.
struct SpanGroup {
    span_idx: usize,
    leaves: Vec<LeafGroup>,
}

/// A planned multipoint retrieval (internal representation).
pub(crate) struct MultipointPlan {
    groups: Vec<SpanGroup>,
    n_times: usize,
}

impl MultipointPlan {
    pub(crate) fn new(tgi: &Tgi, times: &[Time]) -> MultipointPlan {
        // span_idx -> leaf -> [(slot, t)], kept ordered so materialized
        // states distribute deterministically.
        let mut groups: Vec<SpanGroup> = Vec::new();
        let mut by_span: FxHashMap<usize, FxHashMap<usize, Vec<(usize, Time)>>> =
            FxHashMap::default();
        for (slot, &t) in times.iter().enumerate() {
            let span_idx = tgi.span_index_for(t);
            let leaf = tgi.spans[span_idx].meta.leaf_for_time(t);
            by_span
                .entry(span_idx)
                .or_default()
                .entry(leaf)
                .or_default()
                .push((slot, t));
        }
        let mut span_ids: Vec<usize> = by_span.keys().copied().collect();
        span_ids.sort_unstable();
        for span_idx in span_ids {
            let leaves_map = by_span.remove(&span_idx).expect("key listed");
            let mut leaf_ids: Vec<usize> = leaves_map.keys().copied().collect();
            leaf_ids.sort_unstable();
            let leaves = leaf_ids
                .into_iter()
                .map(|leaf| {
                    let mut ts = leaves_map[&leaf].clone();
                    ts.sort_by_key(|&(_, t)| t);
                    LeafGroup { leaf, times: ts }
                })
                .collect();
            groups.push(SpanGroup { span_idx, leaves });
        }
        MultipointPlan {
            groups,
            n_times: times.len(),
        }
    }

    /// Summarize the plan's sharing against the per-time naive loop.
    fn summary(&self, tgi: &Tgi) -> PlanSummary {
        let ns = tgi.cfg.horizontal_partitions as usize;
        let mut s = PlanSummary {
            times: self.n_times,
            span_groups: self.groups.len(),
            ..PlanSummary::default()
        };
        for g in &self.groups {
            let meta = &tgi.spans[g.span_idx].meta;
            let mut union: FxHashSet<u64> = FxHashSet::default();
            for lg in &g.leaves {
                s.leaf_groups += 1;
                let path = meta.shape.path_to_leaf(lg.leaf);
                // Naive: every time refetches its whole path + elist.
                s.naive_fetch_units += lg.times.len() * ns * (path.len() + 1);
                union.extend(path);
                union.insert(ELIST_BASE + lg.leaf as u64);
            }
            s.shared_fetch_units += ns * union.len();
            s.round_trips += ns;
        }
        s
    }
}

/// Rows of one `(tsid, sid)` batch, grouped by did.
type RowsByDid = FxHashMap<u64, Vec<(Vec<u8>, bytes::Bytes)>>;

impl Tgi {
    /// Inspect how a multipoint retrieval over `times` would share
    /// fetch work (without touching the store).
    pub fn plan_multipoint(&self, times: &[Time]) -> PlanSummary {
        MultipointPlan::new(self, times).summary(self)
    }

    /// Multipoint snapshot retrieval through the shared-path planner:
    /// the graph state at each requested time, in input order.
    ///
    /// Equivalent to (and tested against) `times.len()` independent
    /// [`Tgi::try_snapshot`] calls, but each tree-path delta row is
    /// fetched once per `(tsid, sid)` chunk and decoded at most once,
    /// ever; each snapshot is materialized by cloning the shared leaf
    /// state and replaying only its per-time eventlist suffix. Each
    /// chunk's eventlist scan is never skipped, so failures still
    /// surface as [`StoreError::Unavailable`](hgs_store::StoreError).
    pub fn try_snapshots(&self, times: &[Time]) -> Result<Vec<Delta>, StoreError> {
        self.try_snapshots_c(times, self.clients)
    }

    /// [`Tgi::try_snapshots`] with an explicit parallel fetch factor
    /// `c` (the degenerate `times.len() == 1` form of this is what
    /// [`Tgi::try_snapshot_c`](crate::build::Tgi) runs).
    pub fn try_snapshots_c(&self, times: &[Time], c: usize) -> Result<Vec<Delta>, StoreError> {
        let plan = MultipointPlan::new(self, times);
        let mut out: Vec<Delta> = (0..times.len()).map(|_| Delta::new()).collect();
        let ns = self.cfg.horizontal_partitions;
        for group in &plan.groups {
            let span = &self.spans[group.span_idx];
            if c <= 1 {
                self.fill_group_sequential(span, &group.leaves, &mut out)?;
                continue;
            }
            // Parallel clients: each sid fills its own per-time
            // partials from its chunk's rows; partials are then
            // move-merged (the first one wholesale).
            let slots: Vec<usize> = group
                .leaves
                .iter()
                .flat_map(|lg| lg.times.iter().map(|&(slot, _)| slot))
                .collect();
            let local: FxHashMap<usize, usize> = slots
                .iter()
                .enumerate()
                .map(|(i, &slot)| (slot, i))
                .collect();
            let sids: Vec<u32> = (0..ns).collect();
            let per_sid: Vec<Result<Vec<Delta>, StoreError>> = parallel_chunks(sids, c, |chunk| {
                chunk
                    .into_iter()
                    .map(|sid| {
                        let mut partials: Vec<Delta> =
                            (0..slots.len()).map(|_| Delta::new()).collect();
                        self.span_group_fill(span, &group.leaves, sid, &mut partials, |s| {
                            local[&s]
                        })?;
                        Ok(partials)
                    })
                    .collect()
            });
            for partials in per_sid {
                for (i, partial) in partials?.into_iter().enumerate() {
                    let slot = slots[i];
                    if out[slot].is_empty() {
                        out[slot] = partial;
                    } else {
                        out[slot].sum_assign_owned(partial);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Panicking wrapper over [`Tgi::try_snapshots`]; see the crate's
    /// error-handling contract.
    pub fn snapshots(&self, times: &[Time]) -> Vec<Delta> {
        self.try_snapshots(times)
            .unwrap_or_else(|e| panic!("TGI multipoint read failed: {e}"))
    }

    /// Fetch one `(tsid, sid)` chunk's rows for a span group — the
    /// union of the tree paths of `tree_leaves` plus the eventlist
    /// chunks of every leaf — in a single grouped scan. Leaves whose
    /// checkpoint state is already cached are omitted from the tree
    /// union (their eventlist prefixes still hit the same
    /// `(tsid, sid)` placement, so a down chunk surfaces either way).
    fn span_rows(
        &self,
        span: &SpanRuntime,
        leaves: &[LeafGroup],
        tree_leaves: &[bool],
        sid: u32,
    ) -> Result<RowsByDid, StoreError> {
        let meta = &span.meta;
        let mut dids: Vec<u64> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for (lg, &need_tree) in leaves.iter().zip(tree_leaves) {
            if need_tree {
                for did in meta.shape.path_to_leaf(lg.leaf) {
                    if seen.insert(did) {
                        dids.push(did);
                    }
                }
            }
            dids.push(ELIST_BASE + lg.leaf as u64);
        }
        let prefixes: Vec<[u8; 16]> = dids
            .iter()
            .map(|&did| DeltaKey::delta_prefix(meta.tsid, sid, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let token = PlacementKey::new(meta.tsid, sid).token();
        let groups = self.store.scan_prefix_batch(Table::Deltas, &refs, token)?;
        Ok(dids.into_iter().zip(groups).collect())
    }

    /// Decode a fetched tree row through the read cache.
    pub(crate) fn decoded_delta(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &[u8],
    ) -> Arc<Delta> {
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key) {
            Some(Cached::Delta(d)) => d,
            _ => self.insert_decoded_delta(tsid, sid, did, pid, bytes),
        }
    }

    /// Decode a tree row and insert it without a prior cache probe —
    /// for callers that already observed the miss (avoids
    /// double-counting it and a redundant lock round-trip).
    pub(crate) fn insert_decoded_delta(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &[u8],
    ) -> Arc<Delta> {
        let d = Arc::new(decode_delta(bytes).expect("stored delta decodes"));
        self.read_cache
            .put(CacheKey::Row(tsid, sid, did, pid), Cached::Delta(d.clone()));
        d
    }

    /// Decode a fetched eventlist row through the read cache.
    pub(crate) fn decoded_elist(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &[u8],
    ) -> Arc<Eventlist> {
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key) {
            Some(Cached::Elist(e)) => e,
            _ => self.insert_decoded_elist(tsid, sid, did, pid, bytes),
        }
    }

    /// Eventlist twin of [`Tgi::insert_decoded_delta`].
    pub(crate) fn insert_decoded_elist(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &[u8],
    ) -> Arc<Eventlist> {
        let e = Arc::new(decode_eventlist(bytes).expect("stored eventlist decodes"));
        self.read_cache
            .put(CacheKey::Row(tsid, sid, did, pid), Cached::Elist(e.clone()));
        e
    }

    /// Sequential (single fetch client) materialization of one span
    /// group: one grouped scan per sid, then per leaf a shared
    /// checkpoint state — cached across calls — cloned once per
    /// requested time and rolled forward by a single replay cursor.
    fn fill_group_sequential(
        &self,
        span: &SpanRuntime,
        leaves: &[LeafGroup],
        out: &mut [Delta],
    ) -> Result<(), StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        // Resolve cached checkpoint states first so the grouped scans
        // only carry the tree paths of leaves that still need
        // building (the fetch itself never disappears: every
        // `(tsid, sid)` chunk is still scanned for its eventlists).
        let bases: Vec<Option<Arc<Delta>>> = leaves
            .iter()
            .map(
                |lg| match self.read_cache.get(CacheKey::Leaf(tsid, lg.leaf as u32)) {
                    Some(Cached::Delta(d)) => Some(d),
                    _ => None,
                },
            )
            .collect();
        let need_tree: Vec<bool> = bases.iter().map(|b| b.is_none()).collect();
        let mut per_sid: Vec<RowsByDid> = Vec::with_capacity(ns as usize);
        for sid in 0..ns {
            per_sid.push(self.span_rows(span, leaves, &need_tree, sid)?);
        }
        for (lg, base) in leaves.iter().zip(bases) {
            // Shared checkpoint state of this leaf (all sids), cached:
            // it derives purely from write-once rows.
            let base = match base {
                Some(d) => d,
                None => {
                    let mut state = Delta::new();
                    for (sid, rows) in per_sid.iter().enumerate() {
                        for did in meta.shape.path_to_leaf(lg.leaf) {
                            let Some(rows) = rows.get(&did) else {
                                continue;
                            };
                            for (k, bytes) in rows {
                                let Some(dk) = DeltaKey::decode(k) else {
                                    continue;
                                };
                                let d = self.decoded_delta(tsid, sid as u32, did, dk.pid, bytes);
                                state.sum_assign(&d);
                            }
                        }
                    }
                    let arc = Arc::new(state);
                    self.read_cache.put(
                        CacheKey::Leaf(tsid, lg.leaf as u32),
                        Cached::Delta(arc.clone()),
                    );
                    arc
                }
            };
            // Eventlist pieces of this leaf, all sids.
            let elist_did = ELIST_BASE + lg.leaf as u64;
            let mut pieces: Vec<(u32, u32, Arc<Eventlist>)> = Vec::new();
            for (sid, rows) in per_sid.iter().enumerate() {
                let Some(rows) = rows.get(&elist_did) else {
                    continue;
                };
                for (k, bytes) in rows {
                    let Some(dk) = DeltaKey::decode(k) else {
                        continue;
                    };
                    let el = self.decoded_elist(tsid, sid as u32, elist_did, dk.pid, bytes);
                    pieces.push((sid as u32, dk.pid, el));
                }
            }
            // Clone at the divergence point (the leaf), then advance
            // one replay cursor, capturing states as it passes each
            // requested time.
            let mut cur: Delta = (*base).clone();
            let mut cursors = vec![0usize; pieces.len()];
            for (i, &(slot, t)) in lg.times.iter().enumerate() {
                for (pi, (sid, pid, el)) in pieces.iter().enumerate() {
                    let evs = el.events();
                    while cursors[pi] < evs.len() && evs[cursors[pi]].time <= t {
                        apply_event_scoped(&mut cur, &evs[cursors[pi]].kind, |id| {
                            sid_of(id, ns) == *sid && span.maps[*sid as usize].assign(id) == *pid
                        });
                        cursors[pi] += 1;
                    }
                }
                if i + 1 == lg.times.len() {
                    out[slot] = std::mem::take(&mut cur);
                } else {
                    out[slot] = cur.clone();
                }
            }
        }
        Ok(())
    }

    /// One horizontal partition's contribution to every time of one
    /// span group, written into `targets[slot_of(slot)]` (the parallel
    /// fill unit). Rows are distributed in ascending-did order (which
    /// is root-to-leaf order along every path, preserving delta-sum
    /// overwrite semantics).
    fn span_group_fill(
        &self,
        span: &SpanRuntime,
        leaves: &[LeafGroup],
        sid: u32,
        targets: &mut [Delta],
        slot_of: impl Fn(usize) -> usize,
    ) -> Result<(), StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        let all_trees = vec![true; leaves.len()];
        let rows_by_did = self.span_rows(span, leaves, &all_trees, sid)?;
        let paths: Vec<Vec<u64>> = leaves
            .iter()
            .map(|lg| meta.shape.path_to_leaf(lg.leaf))
            .collect();
        let mut tree_dids: Vec<u64> = rows_by_did
            .keys()
            .copied()
            .filter(|&did| did < ELIST_BASE)
            .collect();
        tree_dids.sort_unstable();
        for did in tree_dids {
            let mut wants: Vec<usize> = Vec::new();
            for (lg, path) in leaves.iter().zip(&paths) {
                if path.binary_search(&did).is_ok() {
                    wants.extend(lg.times.iter().map(|&(slot, _)| slot_of(slot)));
                }
            }
            for (k, bytes) in &rows_by_did[&did] {
                let Some(dk) = DeltaKey::decode(k) else {
                    continue;
                };
                let decoded = self.decoded_delta(tsid, sid, did, dk.pid, bytes);
                for &ti in &wants {
                    targets[ti].sum_assign(&decoded);
                }
            }
        }
        // Replay: each snapshot applies its leaf's eventlist prefix up
        // to its own time, scoped per micro-partition.
        let map = &span.maps[sid as usize];
        for lg in leaves {
            let elist_did = ELIST_BASE + lg.leaf as u64;
            let Some(rows) = rows_by_did.get(&elist_did) else {
                continue;
            };
            for (k, bytes) in rows {
                let Some(dk) = DeltaKey::decode(k) else {
                    continue;
                };
                let el = self.decoded_elist(tsid, sid, elist_did, dk.pid, bytes);
                for &(slot, t) in &lg.times {
                    let state = &mut targets[slot_of(slot)];
                    for e in el.events().iter().take_while(|e| e.time <= t) {
                        apply_event_scoped(state, &e.kind, |id| {
                            sid_of(id, ns) == sid && map.assign(id) == dk.pid
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Event;
    use hgs_delta::EventKind;

    /// Planner grouping: duplicate and unsorted times land in the
    /// right leaf groups with their original output slots.
    #[test]
    fn plan_groups_preserve_slots() {
        let events: Vec<Event> = (0..200u64)
            .map(|i| Event::new(i, EventKind::AddNode { id: i }))
            .collect();
        let tgi = Tgi::build(
            crate::TgiConfig {
                events_per_timespan: 200,
                eventlist_size: 50,
                partition_size: 50,
                horizontal_partitions: 1,
                ..crate::TgiConfig::default()
            },
            hgs_store::StoreConfig::new(1, 1),
            &events,
        );
        let times = [150u64, 10, 150, 60];
        let plan = MultipointPlan::new(&tgi, &times);
        let slots: Vec<usize> = plan
            .groups
            .iter()
            .flat_map(|g| g.leaves.iter())
            .flat_map(|lg| lg.times.iter().map(|&(slot, _)| slot))
            .collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "every slot appears once");
        let summary = plan.summary(&tgi);
        assert_eq!(summary.times, 4);
        assert!(summary.shared_fetch_units <= summary.naive_fetch_units);
    }

    /// The read cache is byte-bounded and serves repeat plans.
    #[test]
    fn read_cache_hits_on_repeat_and_respects_budget() {
        let events: Vec<Event> = (0..400u64)
            .map(|i| Event::new(i, EventKind::AddNode { id: i }))
            .collect();
        let tgi = Tgi::build(
            crate::TgiConfig {
                events_per_timespan: 400,
                eventlist_size: 100,
                partition_size: 100,
                horizontal_partitions: 1,
                ..crate::TgiConfig::default()
            },
            hgs_store::StoreConfig::new(1, 1),
            &events,
        );
        let times = [100u64, 300];
        let first = tgi.try_snapshots(&times).unwrap();
        let s0 = tgi.cache_stats();
        assert_eq!(s0.hits, 0, "cold cache");
        assert!(s0.misses > 0);
        assert!(s0.bytes <= s0.budget);
        let second = tgi.try_snapshots(&times).unwrap();
        let s1 = tgi.cache_stats();
        assert!(s1.hits > 0, "repeat plan must hit the cache");
        assert_eq!(first, second);
        // Disabling the cache keeps results identical.
        tgi.set_read_cache_budget(0);
        assert_eq!(tgi.cache_stats().bytes, 0, "budget 0 evicts everything");
        let third = tgi.try_snapshots(&times).unwrap();
        assert_eq!(first, third);
        let s2 = tgi.cache_stats();
        let fourth = tgi.try_snapshots(&times).unwrap();
        let s3 = tgi.cache_stats();
        assert_eq!(s2.hits, s3.hits, "disabled cache never hits");
        assert_eq!(first, fourth);
    }
}

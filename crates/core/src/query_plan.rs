//! Multipoint snapshot retrieval planner (§4.6).
//!
//! Temporal queries frequently ask for the graph at *many* time points
//! (evolution plots, TAF fetches, multipoint analytics). The naive
//! approach — one [`TgiView::snapshot`] per time — refetches, re-decodes
//! and re-materializes the entire root-to-leaf delta path for every
//! point, even though the paths of nearby time points are mostly
//! identical. This module plans a whole batch of query times at once:
//!
//! 1. **Group** the times by timespan and by tree leaf (eventlist
//!    chunk);
//! 2. **Union** the root-to-leaf delta ids of all requested leaves per
//!    `(tsid, sid)` chunk and **fetch** each `(sid, did, pid)` row
//!    exactly once through the store's grouped-scan API
//!    ([`hgs_store::SimStore::scan_prefix_batch`] — one round-trip per
//!    chunk instead of one per delta);
//! 3. **Decode** each row at most once, ever: decoded rows and the
//!    materialized per-leaf checkpoint states land in the session-wide
//!    byte-budgeted LRU [`ReadCache`](crate::read_cache::ReadCache)
//!    ([`TgiView::set_read_cache_budget`]), shared with every single-point
//!    query path. Index rows are write-once (spans are append-only),
//!    so cached entries can never go stale. Each chunk's eventlist
//!    scan is *never* skipped — a fully-down chunk still surfaces
//!    [`StoreError::Unavailable`](hgs_store::StoreError) rather than
//!    being papered over by the cache;
//! 4. **Materialize** each requested snapshot by cloning the shared
//!    leaf state at its divergence point and replaying only the
//!    per-time eventlist suffix (times within one leaf advance a
//!    single replay cursor and capture states as it passes them).
//!
//! Together the shared fetch, the decode cache and the
//! clone-at-divergence materialization make `k` time points cost about
//! one shared path walk plus the unavoidable output construction — the
//! `~1×+ε` behaviour the paper's DeltaGraph ancestry promises, instead
//! of `k×`.
//!
//! # Parallel fill (`clients > 1`)
//!
//! With `c` fetch clients the fill is decomposed into one work item
//! per `(sid, leaf)` pulled from a shared work-stealing queue
//! ([`hgs_store::parallel::parallel_steal`]): a hot leaf or a skewed
//! horizontal partition delays only its own item, not a statically
//! assigned chunk of followers, and the fan-out is clamped to the item
//! count so degenerate single-point plans never over-spawn. Each item
//! probes (and on a miss populates) the per-`(tsid, sid, leaf)`
//! checkpoint-state cache tier
//! ([`CacheKey::SidLeaf`](crate::read_cache)), so warm multi-client
//! snapshots replay only eventlist suffixes instead of re-summing
//! whole tree paths. The sequential path's whole-graph leaf states are
//! composed from the same per-sid entries, so either path warms the
//! other. Per-item partials merge into input-indexed output slots
//! under explicit filled-ness flags — a legitimately *empty* partial
//! (a sid with no state at `t`) is never conflated with "not yet
//! filled".

use std::sync::Arc;

use hgs_delta::codec::{decode_delta, decode_eventlist};
use hgs_delta::{
    ColumnarDelta, ColumnarEventlist, Delta, Eventlist, FxHashMap, FxHashSet, StorageLayout, Time,
};
use hgs_store::parallel::parallel_steal;
use hgs_store::{DeltaKey, PlacementKey, StoreError, Table};

use crate::build::{SpanRuntime, TgiView};
use crate::meta::{sid_of, ELIST_BASE};
use crate::read_cache::{CacheKey, Cached};
use crate::scope::apply_event_scoped;

/// How much fetch work a multipoint plan shares, before running it.
///
/// `shared_fetch_units` counts the distinct `(sid, did)` rows the plan
/// pulls (each exactly once); `naive_fetch_units` counts what `k`
/// independent [`TgiView::snapshot`] calls would pull. Their ratio is the
/// planner's fetch saving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Number of requested time points.
    pub times: usize,
    /// Distinct timespans touched.
    pub span_groups: usize,
    /// Distinct (timespan, leaf) groups — one eventlist fetch each.
    pub leaf_groups: usize,
    /// Distinct (sid, did) fetch units the plan retrieves once.
    pub shared_fetch_units: usize,
    /// Fetch units a naive per-time loop would retrieve.
    pub naive_fetch_units: usize,
    /// Store round-trips the plan issues (one grouped scan per
    /// (timespan, sid) chunk).
    pub round_trips: usize,
}

/// Times of one leaf group: `(output slot, time)`, ascending by time.
struct LeafGroup {
    leaf: usize,
    times: Vec<(usize, Time)>,
}

/// All leaf groups of one timespan, ascending by leaf index.
struct SpanGroup {
    span_idx: usize,
    leaves: Vec<LeafGroup>,
}

/// A planned multipoint retrieval (internal representation).
pub(crate) struct MultipointPlan {
    groups: Vec<SpanGroup>,
    n_times: usize,
}

impl MultipointPlan {
    pub(crate) fn new(tgi: &TgiView, times: &[Time]) -> MultipointPlan {
        // span_idx -> leaf -> [(slot, t)], kept ordered so materialized
        // states distribute deterministically.
        let mut groups: Vec<SpanGroup> = Vec::new();
        let mut by_span: FxHashMap<usize, FxHashMap<usize, Vec<(usize, Time)>>> =
            FxHashMap::default();
        for (slot, &t) in times.iter().enumerate() {
            let span_idx = tgi.span_index_for(t);
            let leaf = tgi.spans[span_idx].meta.leaf_for_time(t);
            by_span
                .entry(span_idx)
                .or_default()
                .entry(leaf)
                .or_default()
                .push((slot, t));
        }
        let mut span_ids: Vec<usize> = by_span.keys().copied().collect();
        span_ids.sort_unstable();
        for span_idx in span_ids {
            // hgs-lint: allow(no-panic-in-try, "span_ids are by_span's own keys, each removed exactly once")
            let leaves_map = by_span.remove(&span_idx).expect("key listed");
            let mut leaf_ids: Vec<usize> = leaves_map.keys().copied().collect();
            leaf_ids.sort_unstable();
            let leaves = leaf_ids
                .into_iter()
                .map(|leaf| {
                    let mut ts = leaves_map[&leaf].clone();
                    ts.sort_by_key(|&(_, t)| t);
                    LeafGroup { leaf, times: ts }
                })
                .collect();
            groups.push(SpanGroup { span_idx, leaves });
        }
        MultipointPlan {
            groups,
            n_times: times.len(),
        }
    }

    /// Summarize the plan's sharing against the per-time naive loop.
    fn summary(&self, tgi: &TgiView) -> PlanSummary {
        let ns = tgi.cfg.horizontal_partitions as usize;
        let mut s = PlanSummary {
            times: self.n_times,
            span_groups: self.groups.len(),
            ..PlanSummary::default()
        };
        for g in &self.groups {
            let meta = &tgi.spans[g.span_idx].meta;
            let mut union: FxHashSet<u64> = FxHashSet::default();
            for lg in &g.leaves {
                s.leaf_groups += 1;
                let path = meta.shape.path_to_leaf(lg.leaf);
                // Naive: every time refetches its whole path + elist.
                s.naive_fetch_units += lg.times.len() * ns * (path.len() + 1);
                union.extend(path);
                union.insert(ELIST_BASE + lg.leaf as u64);
            }
            s.shared_fetch_units += ns * union.len();
            s.round_trips += ns;
        }
        s
    }
}

/// Rows of one `(tsid, sid)` batch, grouped by did.
type RowsByDid = FxHashMap<u64, Vec<(Vec<u8>, bytes::Bytes)>>;

/// One sid's share of a span group, fetched once (a single grouped
/// scan) and shared by all of that sid's `(sid, leaf)` work items:
/// the per-leaf checkpoint states resolved from the cache at fetch
/// time (held by `Arc`, so later eviction cannot strand a replay
/// whose tree rows were skipped) plus the scanned rows.
struct SidGroupFetch {
    /// Cached checkpoint state per leaf index of the group, if any.
    bases: Vec<Option<Arc<Delta>>>,
    rows: RowsByDid,
}

impl TgiView {
    /// Inspect how a multipoint retrieval over `times` would share
    /// fetch work (without touching the store).
    pub fn plan_multipoint(&self, times: &[Time]) -> PlanSummary {
        MultipointPlan::new(self, times).summary(self)
    }

    /// Multipoint snapshot retrieval through the shared-path planner:
    /// the graph state at each requested time, in input order.
    ///
    /// Equivalent to (and tested against) `times.len()` independent
    /// [`TgiView::try_snapshot`] calls, but each tree-path delta row is
    /// fetched once per `(tsid, sid)` chunk and decoded at most once,
    /// ever; each snapshot is materialized by cloning the shared leaf
    /// state and replaying only its per-time eventlist suffix. Each
    /// chunk's eventlist scan is never skipped, so failures still
    /// surface as [`StoreError::Unavailable`](hgs_store::StoreError).
    pub fn try_snapshots(&self, times: &[Time]) -> Result<Vec<Delta>, StoreError> {
        self.try_snapshots_c(times, self.clients)
    }

    /// [`TgiView::try_snapshots`] with an explicit parallel fetch factor
    /// `c` (the degenerate `times.len() == 1` form of this is what
    /// [`TgiView::try_snapshot_c`](crate::build::TgiView) runs).
    pub fn try_snapshots_c(&self, times: &[Time], c: usize) -> Result<Vec<Delta>, StoreError> {
        let plan = MultipointPlan::new(self, times);
        let mut out: Vec<Delta> = (0..times.len()).map(|_| Delta::new()).collect();
        // Explicit per-slot filled-ness for the parallel merge: a
        // legitimately *empty* first partial (a sid with no state
        // before `t`) must not be mistaken for "not yet filled", or a
        // later partial for the same slot would wholesale-overwrite
        // instead of summing.
        let mut filled = vec![false; times.len()];
        let ns = self.cfg.horizontal_partitions;
        for group in &plan.groups {
            // hgs-lint: allow(no-panic-in-try, "plan groups carry span_idx values produced by enumerating self.spans")
            let span = &self.spans[group.span_idx];
            if c <= 1 {
                self.fill_group_sequential(span, &group.leaves, &mut out)?;
                continue;
            }
            // Parallel clients: one work item per (sid, leaf) pulled
            // from a shared work-stealing queue — skewed partitions
            // and hot leaves no longer gate the group on the slowest
            // sid. The *fetch* stays batched per sid (one grouped
            // scan covering all of the group's leaves, exactly like
            // the sequential path): whichever item of a sid is
            // claimed first performs it, and the sid's other items
            // share the result through a `OnceLock`. Cache probes for
            // the per-sid checkpoint states happen at fetch time and
            // the resulting `Arc`s ride along, so an eviction between
            // fetch and replay can never strand an item with rows
            // that lack its tree path. Items return per-time
            // partials, merged in deterministic item order; any
            // failed item fails the whole batch.
            let tsid = span.meta.tsid;
            let fetches: Vec<std::sync::OnceLock<Result<SidGroupFetch, StoreError>>> =
                (0..ns).map(|_| std::sync::OnceLock::new()).collect();
            // Leaf-major item order spreads the workers' initial
            // claims across sids, so the per-sid fetches overlap
            // instead of queueing behind one lock.
            let items: Vec<(u32, usize)> = (0..group.leaves.len())
                .flat_map(|li| (0..ns).map(move |sid| (sid, li)))
                .collect();
            let per_item: Vec<Result<Vec<Delta>, StoreError>> =
                parallel_steal(items.clone(), c, |(sid, li)| {
                    // hgs-lint: allow(no-panic-in-try, "work items carry sid < ns and fetches holds ns entries")
                    let fetch = fetches[sid as usize].get_or_init(|| {
                        let bases: Vec<Option<Arc<Delta>>> = group
                            .leaves
                            .iter()
                            .map(|lg| {
                                let key = CacheKey::SidLeaf(tsid, sid, lg.leaf as u32);
                                match self.read_cache.get(key) {
                                    Some(Cached::Delta(d)) => Some(d),
                                    _ => None,
                                }
                            })
                            .collect();
                        let need_tree: Vec<bool> = bases.iter().map(|b| b.is_none()).collect();
                        let rows = self.span_rows(span, &group.leaves, &need_tree, sid)?;
                        Ok(SidGroupFetch { bases, rows })
                    });
                    match fetch {
                        Ok(f) => self.fill_sid_leaf(
                            span,
                            // hgs-lint: allow(no-panic-in-try, "li enumerates group.leaves; the fetch built one base slot per leaf")
                            &group.leaves[li],
                            sid,
                            // hgs-lint: allow(no-panic-in-try, "li enumerates group.leaves; the fetch built one base slot per leaf")
                            f.bases[li].clone(),
                            &f.rows,
                        ),
                        Err(e) => Err(e.clone()),
                    }
                });
            for ((_, li), partials) in items.into_iter().zip(per_item) {
                // hgs-lint: allow(no-panic-in-try, "slot indices were assigned by the planner from times.len()")
                let lg = &group.leaves[li];
                for ((slot, _), partial) in lg.times.iter().zip(partials?) {
                    // hgs-lint: allow(no-panic-in-try, "slot indices were assigned by the planner from times.len()")
                    if filled[*slot] {
                        // hgs-lint: allow(no-panic-in-try, "slot indices were assigned by the planner from times.len()")
                        out[*slot].sum_assign_owned(partial);
                    } else {
                        // hgs-lint: allow(no-panic-in-try, "slot indices were assigned by the planner from times.len()")
                        out[*slot] = partial;
                        // hgs-lint: allow(no-panic-in-try, "slot indices were assigned by the planner from times.len()")
                        filled[*slot] = true;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Panicking wrapper over [`TgiView::try_snapshots`]; see the crate's
    /// error-handling contract.
    pub fn snapshots(&self, times: &[Time]) -> Vec<Delta> {
        self.try_snapshots(times)
            // hgs-lint: allow(no-panic-in-try, "documented panic bridge of the infallible query API; try_snapshots surfaces StoreError")
            .unwrap_or_else(|e| panic!("TGI multipoint read failed: {e}"))
    }

    /// Panicking wrapper over [`TgiView::try_snapshots_c`].
    pub fn snapshots_c(&self, times: &[Time], c: usize) -> Vec<Delta> {
        self.try_snapshots_c(times, c)
            // hgs-lint: allow(no-panic-in-try, "documented panic bridge of the infallible query API; try_snapshots_c surfaces StoreError")
            .unwrap_or_else(|e| panic!("TGI multipoint read failed: {e}"))
    }

    /// Fetch one `(tsid, sid)` chunk's rows for a span group — the
    /// union of the tree paths of `tree_leaves` plus the eventlist
    /// chunks of every leaf — in a single grouped scan. Leaves whose
    /// checkpoint state is already cached are omitted from the tree
    /// union (their eventlist prefixes still hit the same
    /// `(tsid, sid)` placement, so a down chunk surfaces either way).
    fn span_rows(
        &self,
        span: &SpanRuntime,
        leaves: &[LeafGroup],
        tree_leaves: &[bool],
        sid: u32,
    ) -> Result<RowsByDid, StoreError> {
        let meta = &span.meta;
        let mut dids: Vec<u64> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for (lg, &need_tree) in leaves.iter().zip(tree_leaves) {
            if need_tree {
                for did in meta.shape.path_to_leaf(lg.leaf) {
                    if seen.insert(did) {
                        dids.push(did);
                    }
                }
            }
            dids.push(ELIST_BASE + lg.leaf as u64);
        }
        let prefixes: Vec<[u8; 16]> = dids
            .iter()
            .map(|&did| DeltaKey::delta_prefix(meta.tsid, sid, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let token = PlacementKey::new(meta.tsid, sid).token();
        let groups = self.store.scan_prefix_batch(Table::Deltas, &refs, token)?;
        Ok(dids.into_iter().zip(groups).collect())
    }

    /// Fully decode a stored delta row in the index's physical layout
    /// (no cache involvement): the full-replay paths' decoder and the
    /// uncached reference path's. A row that fails to decode surfaces
    /// [`StoreError::Corrupt`] through the `try_*` surface instead of
    /// panicking mid-query.
    pub(crate) fn decode_delta_blob(&self, bytes: &bytes::Bytes) -> Result<Delta, StoreError> {
        match self.cfg.layout {
            StorageLayout::RowWise => decode_delta(bytes),
            StorageLayout::Columnar => {
                ColumnarDelta::parse(bytes.clone()).and_then(|c| c.to_delta())
            }
        }
        .map_err(StoreError::Corrupt)
    }

    /// Eventlist twin of [`TgiView::decode_delta_blob`].
    pub(crate) fn decode_elist_blob(&self, bytes: &bytes::Bytes) -> Result<Eventlist, StoreError> {
        match self.cfg.layout {
            StorageLayout::RowWise => decode_eventlist(bytes),
            StorageLayout::Columnar => {
                ColumnarEventlist::parse(bytes.clone()).and_then(|c| c.to_eventlist())
            }
        }
        .map_err(StoreError::Corrupt)
    }

    /// Decode a fetched tree row through the read cache.
    ///
    /// Full-replay callers need the whole delta, so a lazily-decoded
    /// columnar entry left by a node-scoped path does not satisfy the
    /// probe: the row is re-decoded in full and the entry refreshed to
    /// the materialized form (write-once rows make this safe).
    pub(crate) fn decoded_delta(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &bytes::Bytes,
    ) -> Result<Arc<Delta>, StoreError> {
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key) {
            Some(Cached::Delta(d)) => Ok(d),
            _ => self.insert_decoded_delta(tsid, sid, did, pid, bytes),
        }
    }

    /// Decode a tree row and insert it without a prior cache probe —
    /// for callers that already observed the miss (avoids
    /// double-counting it and a redundant lock round-trip).
    pub(crate) fn insert_decoded_delta(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &bytes::Bytes,
    ) -> Result<Arc<Delta>, StoreError> {
        let d = Arc::new(self.decode_delta_blob(bytes)?);
        self.read_cache
            .put(CacheKey::Row(tsid, sid, did, pid), Cached::Delta(d.clone()));
        Ok(d)
    }

    /// Decode a fetched eventlist row through the read cache (see
    /// [`TgiView::decoded_delta`] for the columnar-entry refresh rule).
    pub(crate) fn decoded_elist(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &bytes::Bytes,
    ) -> Result<Arc<Eventlist>, StoreError> {
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key) {
            Some(Cached::Elist(e)) => Ok(e),
            _ => self.insert_decoded_elist(tsid, sid, did, pid, bytes),
        }
    }

    /// Eventlist twin of [`TgiView::insert_decoded_delta`].
    pub(crate) fn insert_decoded_elist(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: &bytes::Bytes,
    ) -> Result<Arc<Eventlist>, StoreError> {
        let e = Arc::new(self.decode_elist_blob(bytes)?);
        self.read_cache
            .put(CacheKey::Row(tsid, sid, did, pid), Cached::Elist(e.clone()));
        Ok(e)
    }

    /// Sequential (single fetch client) materialization of one span
    /// group: one grouped scan per sid, then per leaf a shared
    /// checkpoint state — cached across calls — cloned once per
    /// requested time and rolled forward by a single replay cursor.
    fn fill_group_sequential(
        &self,
        span: &SpanRuntime,
        leaves: &[LeafGroup],
        out: &mut [Delta],
    ) -> Result<(), StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        // Resolve cached checkpoint states first so the grouped scans
        // only carry the tree paths of leaves that still need
        // building (the fetch itself never disappears: every
        // `(tsid, sid)` chunk is still scanned for its eventlists).
        // The whole-graph `Leaf` state is exactly the sum of the
        // per-sid `SidLeaf` states, so a cache warmed by parallel
        // fills (which populate the per-sid tier) spares the tree
        // fetch here too — and vice versa.
        let bases: Vec<Option<Arc<Delta>>> = leaves
            .iter()
            .map(
                |lg| match self.read_cache.get(CacheKey::Leaf(tsid, lg.leaf as u32)) {
                    Some(Cached::Delta(d)) => Some(d),
                    _ => None,
                },
            )
            .collect();
        // sid_bases[li][sid]: the per-sid tier, probed only while the
        // whole-leaf state is absent.
        let sid_bases: Vec<Vec<Option<Arc<Delta>>>> = leaves
            .iter()
            .zip(&bases)
            .map(|(lg, base)| {
                if base.is_some() {
                    vec![None; ns as usize]
                } else {
                    (0..ns)
                        .map(|sid| {
                            let key = CacheKey::SidLeaf(tsid, sid, lg.leaf as u32);
                            match self.read_cache.get(key) {
                                Some(Cached::Delta(d)) => Some(d),
                                _ => None,
                            }
                        })
                        .collect()
                }
            })
            .collect();
        let mut per_sid: Vec<RowsByDid> = Vec::with_capacity(ns as usize);
        for sid in 0..ns {
            let need_tree: Vec<bool> = (0..leaves.len())
                .map(|li| bases[li].is_none() && sid_bases[li][sid as usize].is_none())
                .collect();
            per_sid.push(self.span_rows(span, leaves, &need_tree, sid)?);
        }
        for (li, (lg, base)) in leaves.iter().zip(bases).enumerate() {
            // Shared checkpoint state of this leaf (all sids), cached:
            // it derives purely from write-once rows, composed as the
            // sum of the per-sid states (each built by the same
            // routine the parallel fill uses and cached in its own
            // right for it to reuse).
            let base = match base {
                Some(d) => d,
                None => {
                    let mut state = Delta::new();
                    for (sid, rows) in per_sid.iter().enumerate() {
                        let sid_state = match &sid_bases[li][sid] {
                            Some(d) => Arc::clone(d),
                            None => self.build_sid_leaf_state(span, lg.leaf, sid as u32, rows)?,
                        };
                        state.sum_assign(&sid_state);
                    }
                    let arc = Arc::new(state);
                    self.read_cache.put(
                        CacheKey::Leaf(tsid, lg.leaf as u32),
                        Cached::Delta(arc.clone()),
                    );
                    arc
                }
            };
            // Eventlist pieces of this leaf, all sids.
            let elist_did = ELIST_BASE + lg.leaf as u64;
            let mut pieces: Vec<(u32, u32, Arc<Eventlist>)> = Vec::new();
            for (sid, rows) in per_sid.iter().enumerate() {
                let Some(rows) = rows.get(&elist_did) else {
                    continue;
                };
                for (k, bytes) in rows {
                    let Some(dk) = DeltaKey::decode(k) else {
                        continue;
                    };
                    let el = self.decoded_elist(tsid, sid as u32, elist_did, dk.pid, bytes)?;
                    pieces.push((sid as u32, dk.pid, el));
                }
            }
            for ((slot, _), state) in lg
                .times
                .iter()
                .zip(self.replay_leaf_times(span, &base, &pieces, &lg.times))
            {
                out[*slot] = state;
            }
        }
        Ok(())
    }

    /// One horizontal partition's contribution to every time of one
    /// leaf group — the parallel fill's work-stealing unit.
    ///
    /// `base` is the per-`(tsid, sid, leaf)` checkpoint state as
    /// resolved from the read cache when this sid's rows were fetched
    /// (see [`SidGroupFetch`]): on a hit the tree path was dropped
    /// from the grouped scan entirely and the item replays only this
    /// sid's eventlist suffix; on a miss the state is rebuilt here
    /// from (cached) tree-path rows in root-to-leaf order and the
    /// tier is populated for the next client. The eventlist prefix is
    /// always scanned, so a down chunk surfaces
    /// [`StoreError::Unavailable`] even on a fully-warm state.
    /// Returns one partial per requested time, aligned with
    /// `lg.times`.
    fn fill_sid_leaf(
        &self,
        span: &SpanRuntime,
        lg: &LeafGroup,
        sid: u32,
        base: Option<Arc<Delta>>,
        rows: &RowsByDid,
    ) -> Result<Vec<Delta>, StoreError> {
        let tsid = span.meta.tsid;
        let base = match base {
            Some(d) => d,
            None => self.build_sid_leaf_state(span, lg.leaf, sid, rows)?,
        };
        // Eventlist pieces of this sid (all pids), then the shared
        // cursor replay.
        let elist_did = ELIST_BASE + lg.leaf as u64;
        let mut pieces: Vec<(u32, u32, Arc<Eventlist>)> = Vec::new();
        if let Some(rows) = rows.get(&elist_did) {
            for (k, bytes) in rows {
                let Some(dk) = DeltaKey::decode(k) else {
                    continue;
                };
                let el = self.decoded_elist(tsid, sid, elist_did, dk.pid, bytes)?;
                pieces.push((sid, dk.pid, el));
            }
        }
        Ok(self.replay_leaf_times(span, &base, &pieces, &lg.times))
    }

    /// Sum one sid's tree-path rows for `leaf` into a checkpoint
    /// state and cache it under its `SidLeaf` key. Both fill paths —
    /// sequential composition and parallel work items — build per-sid
    /// states through this one routine, so the tier's entries are
    /// identical whichever path populated them.
    fn build_sid_leaf_state(
        &self,
        span: &SpanRuntime,
        leaf: usize,
        sid: u32,
        rows: &RowsByDid,
    ) -> Result<Arc<Delta>, StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let mut state = Delta::new();
        for did in meta.shape.path_to_leaf(leaf) {
            let Some(rows) = rows.get(&did) else {
                continue;
            };
            for (k, bytes) in rows {
                let Some(dk) = DeltaKey::decode(k) else {
                    continue;
                };
                let d = self.decoded_delta(tsid, sid, did, dk.pid, bytes)?;
                state.sum_assign(&d);
            }
        }
        let arc = Arc::new(state);
        self.read_cache.put(
            CacheKey::SidLeaf(tsid, sid, leaf as u32),
            Cached::Delta(arc.clone()),
        );
        Ok(arc)
    }

    /// Clone `base` once at the divergence point (the leaf), then
    /// advance a single replay cursor per eventlist piece over
    /// `times` (ascending), capturing one state per time. The shared
    /// materialization tail of both fill paths.
    fn replay_leaf_times(
        &self,
        span: &SpanRuntime,
        base: &Delta,
        pieces: &[(u32, u32, Arc<Eventlist>)],
        times: &[(usize, Time)],
    ) -> Vec<Delta> {
        let ns = self.cfg.horizontal_partitions;
        let mut cur: Delta = base.clone();
        let mut cursors = vec![0usize; pieces.len()];
        let mut out: Vec<Delta> = Vec::with_capacity(times.len());
        for (i, &(_, t)) in times.iter().enumerate() {
            for (pi, (sid, pid, el)) in pieces.iter().enumerate() {
                let map = &span.maps[*sid as usize];
                let evs = el.events();
                while cursors[pi] < evs.len() && evs[cursors[pi]].time <= t {
                    apply_event_scoped(&mut cur, &evs[cursors[pi]].kind, |id| {
                        sid_of(id, ns) == *sid && map.assign(id) == *pid
                    });
                    cursors[pi] += 1;
                }
            }
            if i + 1 == times.len() {
                out.push(std::mem::take(&mut cur));
            } else {
                out.push(cur.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Tgi;
    use hgs_delta::Event;
    use hgs_delta::EventKind;

    /// Planner grouping: duplicate and unsorted times land in the
    /// right leaf groups with their original output slots.
    #[test]
    fn plan_groups_preserve_slots() {
        let events: Vec<Event> = (0..200u64)
            .map(|i| Event::new(i, EventKind::AddNode { id: i }))
            .collect();
        let tgi = Tgi::build(
            crate::TgiConfig {
                events_per_timespan: 200,
                eventlist_size: 50,
                partition_size: 50,
                horizontal_partitions: 1,
                ..crate::TgiConfig::default()
            },
            hgs_store::StoreConfig::new(1, 1),
            &events,
        );
        let times = [150u64, 10, 150, 60];
        let plan = MultipointPlan::new(&tgi, &times);
        let slots: Vec<usize> = plan
            .groups
            .iter()
            .flat_map(|g| g.leaves.iter())
            .flat_map(|lg| lg.times.iter().map(|&(slot, _)| slot))
            .collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "every slot appears once");
        let summary = plan.summary(&tgi);
        assert_eq!(summary.times, 4);
        assert!(summary.shared_fetch_units <= summary.naive_fetch_units);
    }

    /// Warm multi-client fills hit the per-`(tsid, sid, leaf)` state
    /// tier (not just decoded rows), and the tiers are coherent: a
    /// parallel fill warms the sequential path's leaf composition and
    /// vice versa.
    #[test]
    fn parallel_fill_hits_and_warms_the_state_tier() {
        let events: Vec<Event> = (0..400u64)
            .map(|i| Event::new(i, EventKind::AddNode { id: i }))
            .collect();
        let tgi = Tgi::build(
            crate::TgiConfig {
                events_per_timespan: 400,
                eventlist_size: 100,
                partition_size: 50,
                horizontal_partitions: 2,
                ..crate::TgiConfig::default()
            },
            hgs_store::StoreConfig::new(2, 1),
            &events,
        );
        let times = [120u64, 320];
        let cold = tgi.try_snapshots_c(&times, 4).unwrap();
        let s0 = tgi.cache_stats();
        assert_eq!(s0.state_hits, 0, "cold cache has no state hits");
        assert!(s0.state_misses > 0, "cold fill probes the state tier");
        let warm = tgi.try_snapshots_c(&times, 4).unwrap();
        let s1 = tgi.cache_stats();
        assert!(
            s1.state_hits > s0.state_hits,
            "warm parallel fill must hit per-(tsid, sid, leaf) states: {s1:?}"
        );
        assert_eq!(cold, warm);
        // The sequential path composes its whole-leaf states from the
        // per-sid entries the parallel fill populated: no row decode
        // beyond what is already cached, same result.
        let seq = tgi.try_snapshots_c(&times, 1).unwrap();
        assert_eq!(seq, warm);
        let s2 = tgi.cache_stats();
        assert_eq!(
            s2.row_misses, s1.row_misses,
            "sequential pass after a parallel warm-up re-decodes nothing"
        );
        // And a sequential warm-up serves later parallel fills.
        let par = tgi.try_snapshots_c(&times, 4).unwrap();
        assert_eq!(par, seq);
        let s3 = tgi.cache_stats();
        assert_eq!(s3.row_misses, s2.row_misses);
        assert!(s3.state_hits > s2.state_hits);
    }

    /// The read cache is byte-bounded and serves repeat plans.
    #[test]
    fn read_cache_hits_on_repeat_and_respects_budget() {
        let events: Vec<Event> = (0..400u64)
            .map(|i| Event::new(i, EventKind::AddNode { id: i }))
            .collect();
        let tgi = Tgi::build(
            crate::TgiConfig {
                events_per_timespan: 400,
                eventlist_size: 100,
                partition_size: 100,
                horizontal_partitions: 1,
                ..crate::TgiConfig::default()
            },
            hgs_store::StoreConfig::new(1, 1),
            &events,
        );
        let times = [100u64, 300];
        let first = tgi.try_snapshots(&times).unwrap();
        let s0 = tgi.cache_stats();
        assert_eq!(s0.hits, 0, "cold cache");
        assert!(s0.misses > 0);
        assert!(s0.bytes <= s0.budget);
        let second = tgi.try_snapshots(&times).unwrap();
        let s1 = tgi.cache_stats();
        assert!(s1.hits > 0, "repeat plan must hit the cache");
        assert_eq!(first, second);
        // Disabling the cache keeps results identical.
        tgi.set_read_cache_budget(0);
        assert_eq!(tgi.cache_stats().bytes, 0, "budget 0 evicts everything");
        let third = tgi.try_snapshots(&times).unwrap();
        assert_eq!(first, third);
        let s2 = tgi.cache_stats();
        let fourth = tgi.try_snapshots(&times).unwrap();
        let s3 = tgi.cache_stats();
        assert_eq!(s2.hits, s3.hits, "disabled cache never hits");
        assert_eq!(first, fourth);
    }
}

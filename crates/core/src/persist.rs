//! Index persistence: everything the query paths need lives in the
//! store's five tables, so a `Tgi` handle can be re-opened from a
//! store without the original process — the "persistent, distributed,
//! compact graph history" property of the paper's Fig. 2.
//!
//! Layout recap: `Graph` holds the global descriptor (config, span
//! count, end time); `Timespans` holds one metadata row per timespan;
//! `Micropartitions` holds the locality partition maps; `Deltas` and
//! `Versions` hold the index body.

use std::sync::Arc;

use bytes::BytesMut;
use hgs_delta::codec::{get_varint, put_varint};
use hgs_delta::{CodecError, FxHashMap, NodeId, StorageLayout, Time};
use hgs_partition::{NodeWeighting, Omega, PartitionMap};
use hgs_store::{CostModel, SimStore, StoreError, Table};

use crate::build::{mp_key, SpanRuntime, Tgi, TgiView};
use crate::config::{PartitionStrategy, TgiConfig};
use crate::meta::TimespanMeta;

/// Errors from [`Tgi::open`].
#[derive(Debug)]
pub enum OpenError {
    /// The store holds no graph descriptor (nothing was built here).
    NotFound,
    /// A metadata row failed to decode.
    Corrupt(CodecError),
    /// The store was unreachable.
    Store(StoreError),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::NotFound => write!(f, "no TGI descriptor in store"),
            OpenError::Corrupt(e) => write!(f, "corrupt TGI metadata: {e}"),
            OpenError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for OpenError {}

/// Serialize the construction configuration.
pub(crate) fn encode_config(cfg: &TgiConfig) -> bytes::Bytes {
    let mut buf = BytesMut::new();
    put_varint(&mut buf, cfg.events_per_timespan as u64);
    put_varint(&mut buf, cfg.eventlist_size as u64);
    put_varint(&mut buf, cfg.arity as u64);
    put_varint(&mut buf, cfg.partition_size as u64);
    put_varint(&mut buf, cfg.horizontal_partitions as u64);
    let strat = match cfg.strategy {
        PartitionStrategy::Random => 0u64,
        PartitionStrategy::Locality {
            replicate_boundary: false,
        } => 1,
        PartitionStrategy::Locality {
            replicate_boundary: true,
        } => 2,
    };
    put_varint(&mut buf, strat);
    put_varint(&mut buf, cfg.version_chains as u64);
    let omega = match cfg.omega {
        Omega::Median => 0u64,
        Omega::UnionMax => 1,
        Omega::UnionMean => 2,
    };
    put_varint(&mut buf, omega);
    let weighting = match cfg.weighting {
        NodeWeighting::Uniform => 0u64,
        NodeWeighting::Degree => 1,
        NodeWeighting::AvgDegree => 2,
    };
    put_varint(&mut buf, weighting);
    put_varint(&mut buf, cfg.read_cache_bytes as u64);
    // `write_batch_rows` is deliberately NOT persisted: it is an
    // operational write-path knob (like the handle's client width),
    // and two indexes built with different buffering must stay
    // byte-identical on disk — the equivalence property the batched
    // write path guarantees.
    let layout = match cfg.layout {
        StorageLayout::RowWise => 0u64,
        StorageLayout::Columnar => 1,
    };
    put_varint(&mut buf, layout);
    put_varint(&mut buf, cfg.secondary_indexes as u64);
    buf.freeze()
}

/// Decode [`encode_config`].
pub(crate) fn decode_config(mut buf: &[u8]) -> Result<TgiConfig, CodecError> {
    let b = &mut buf;
    let events_per_timespan = get_varint(b)? as usize;
    let eventlist_size = get_varint(b)? as usize;
    let arity = get_varint(b)? as usize;
    let partition_size = get_varint(b)? as usize;
    let horizontal_partitions = get_varint(b)? as u32;
    let strategy = match get_varint(b)? {
        0 => PartitionStrategy::Random,
        1 => PartitionStrategy::Locality {
            replicate_boundary: false,
        },
        2 => PartitionStrategy::Locality {
            replicate_boundary: true,
        },
        t => {
            return Err(CodecError::BadTag {
                what: "PartitionStrategy",
                tag: t as u8,
            })
        }
    };
    let version_chains = get_varint(b)? != 0;
    let omega = match get_varint(b)? {
        0 => Omega::Median,
        1 => Omega::UnionMax,
        2 => Omega::UnionMean,
        t => {
            return Err(CodecError::BadTag {
                what: "Omega",
                tag: t as u8,
            })
        }
    };
    let weighting = match get_varint(b)? {
        0 => NodeWeighting::Uniform,
        1 => NodeWeighting::Degree,
        2 => NodeWeighting::AvgDegree,
        t => {
            return Err(CodecError::BadTag {
                what: "NodeWeighting",
                tag: t as u8,
            })
        }
    };
    // Descriptors written before the read cache existed omit the
    // budget; fall back to the default rather than failing the open.
    let read_cache_bytes = match get_varint(b) {
        Ok(v) => v as usize,
        Err(_) => crate::config::DEFAULT_READ_CACHE_BYTES,
    };
    // Not persisted (see `encode_config`): reopened handles write with
    // the default buffering.
    let write_batch_rows = crate::config::DEFAULT_WRITE_BATCH_ROWS;
    // Also a runtime knob (cache striping), not persisted: reopened
    // handles serve with the default stripe count.
    let read_cache_shards = crate::read_cache::DEFAULT_READ_CACHE_SHARDS;
    // Retry/breaker policy is likewise runtime-only: reopened handles
    // install the default policy on their store.
    let retry = hgs_store::RetryPolicy::default();
    // Descriptors written before the columnar layout existed are
    // row-wise by construction.
    let layout = match get_varint(b) {
        Ok(0) | Err(_) => StorageLayout::RowWise,
        Ok(1) => StorageLayout::Columnar,
        Ok(t) => {
            return Err(CodecError::BadTag {
                what: "StorageLayout",
                tag: t as u8,
            })
        }
    };
    // Descriptors written before the secondary indexes existed never
    // wrote index rows; the reopened handle must treat them as off.
    let secondary_indexes = match get_varint(b) {
        Ok(v) => v != 0,
        Err(_) => false,
    };
    Ok(TgiConfig {
        events_per_timespan,
        eventlist_size,
        arity,
        partition_size,
        horizontal_partitions,
        strategy,
        version_chains,
        omega,
        weighting,
        read_cache_bytes,
        read_cache_shards,
        write_batch_rows,
        layout,
        secondary_indexes,
        retry,
    })
}

/// Decode a persisted locality partition map blob.
pub(crate) fn decode_partition_map(mut buf: &[u8]) -> Result<PartitionMap, CodecError> {
    let b = &mut buf;
    let parts = get_varint(b)? as u32;
    let n = get_varint(b)? as usize;
    let mut map: FxHashMap<NodeId, u32> = FxHashMap::default();
    map.reserve(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.wrapping_add(get_varint(b)?);
        map.insert(prev, get_varint(b)? as u32);
    }
    Ok(PartitionMap::explicit(map, parts.max(1)))
}

impl Tgi {
    /// Re-open an index previously built on `store`, reconstructing
    /// all in-memory metadata from the persisted tables. The returned
    /// handle answers queries identically and accepts further
    /// [`Tgi::append_events`] batches.
    pub fn open(store: Arc<SimStore>) -> Result<Tgi, OpenError> {
        // Global descriptor.
        let meta_row = store
            // hgs-lint: allow(batched-store-discipline, "open() bootstrap reads one singleton metadata row; nothing to batch")
            .get(Table::Graph, b"meta", 0)
            .map_err(OpenError::Store)?
            .ok_or(OpenError::NotFound)?;
        let mut slice: &[u8] = &meta_row;
        let b = &mut slice;
        let span_count = get_varint(b).map_err(OpenError::Corrupt)? as usize;
        let end_time: Time = get_varint(b).map_err(OpenError::Corrupt)?;
        let event_count = get_varint(b).map_err(OpenError::Corrupt)? as usize;
        let cfg_row = store
            // hgs-lint: allow(batched-store-discipline, "open() bootstrap reads one singleton config row; nothing to batch")
            .get(Table::Graph, b"config", 0)
            .map_err(OpenError::Store)?
            .ok_or(OpenError::NotFound)?;
        let cfg = decode_config(&cfg_row).map_err(OpenError::Corrupt)?;

        // Per-timespan metadata and partition maps.
        let mut spans = Vec::with_capacity(span_count);
        for tsid in 0..span_count as u32 {
            let row = store
                // hgs-lint: allow(batched-store-discipline, "open() reads one descriptor row per span, once at startup; not a query path")
                .get(
                    Table::Timespans,
                    &tsid.to_be_bytes(),
                    hgs_delta::hash::hash_u64(tsid as u64),
                )
                .map_err(OpenError::Store)?
                .ok_or(OpenError::NotFound)?;
            let meta = TimespanMeta::decode(&row).map_err(OpenError::Corrupt)?;
            let maps = match cfg.strategy {
                PartitionStrategy::Random => meta
                    .pid_counts
                    .iter()
                    .map(|&p| PartitionMap::random(p.max(1)))
                    .collect(),
                PartitionStrategy::Locality { .. } => {
                    let mut maps = Vec::with_capacity(meta.pid_counts.len());
                    for sid in 0..meta.pid_counts.len() as u32 {
                        let key = mp_key(tsid, sid);
                        let token = hgs_store::PlacementKey::new(tsid, sid).token();
                        let blob = store
                            // hgs-lint: allow(batched-store-discipline, "open() reads one partition-map row per (tsid, sid), once at startup; not a query path")
                            .get(Table::Micropartitions, &key, token)
                            .map_err(OpenError::Store)?
                            .ok_or(OpenError::NotFound)?;
                        maps.push(decode_partition_map(&blob).map_err(OpenError::Corrupt)?);
                    }
                    maps
                }
            };
            spans.push(Arc::new(SpanRuntime {
                meta,
                maps: Arc::new(maps),
            }));
        }

        let mut tgi = Tgi {
            view: TgiView {
                cfg,
                store,
                spans,
                end_time,
                event_count,
                node_count: 0,
                edge_count: 0,
                cost: CostModel::default(),
                clients: 1,
                read_cache: Arc::new(crate::read_cache::ReadCache::with_shards(
                    cfg.read_cache_bytes,
                    cfg.read_cache_shards,
                )),
                epoch: 0,
            },
            tail_state: hgs_delta::Delta::new(),
            poisoned: false,
        };
        // The tail state (needed for appends) is the latest snapshot;
        // the view's shape summary follows it.
        if end_time > 0 {
            tgi.tail_state = tgi.snapshot(end_time);
            tgi.view.node_count = tgi.tail_state.cardinality();
            tgi.view.edge_count = tgi.tail_state.edge_count();
        }
        tgi.view.epoch = 1;
        Ok(tgi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrip() {
        for cfg in [
            TgiConfig::default(),
            TgiConfig::deltagraph(),
            TgiConfig::default().with_strategy(PartitionStrategy::Locality {
                replicate_boundary: true,
            }),
            TgiConfig::default().with_layout(StorageLayout::RowWise),
            TgiConfig::default().with_secondary_indexes(false),
        ] {
            let back = decode_config(&encode_config(&cfg)).unwrap();
            assert_eq!(format!("{cfg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn open_on_empty_store_is_not_found() {
        let store = Arc::new(SimStore::new(hgs_store::StoreConfig::new(1, 1)));
        assert!(matches!(Tgi::open(store), Err(OpenError::NotFound)));
    }
}

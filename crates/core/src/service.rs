//! Concurrent serving: snapshot-isolated reads over live ingest.
//!
//! The paper positions TGI as infrastructure for "snapshot retrieval
//! and temporal analytics at scale" — an always-available service over
//! an ever-growing history, not a single-owner handle. [`TgiService`]
//! is that service layer: one writer appends event batches while any
//! number of reader threads keep answering snapshot/history/k-hop
//! queries, each isolated at the **watermark** it observed at entry.
//!
//! # Watermark semantics
//!
//! The index is append-only at span granularity: an append creates
//! *new* timespans and never rewrites a sealed row (closing the
//! previous open span's time range is per-view metadata, not stored
//! rows — see [`Tgi::try_append_events`]). The writer therefore
//! publishes, at the end of each successful append, an immutable
//! [`TgiView`] — config, span metadata, partition maps and summary
//! counters — tagged with a monotonically increasing epoch. That
//! publication *is* the watermark:
//!
//! * [`TgiService::pin`] hands a reader an `Arc<TgiView>` of the
//!   latest published watermark. Everything the reader does through
//!   that view answers from the sealed prefix the watermark denotes —
//!   byte-identical before, during and after any concurrent append.
//! * Rows belonging to an in-flight append are unreachable from every
//!   published view (their spans are not in any published `TgiView`),
//!   so no reader ever observes a partially written span.
//! * Publication happens strictly **after** the batch's rows are
//!   flushed and the graph descriptor is persisted (the
//!   `watermark-publish` lint rule guards this ordering), and the
//!   epoch counter is stored with release ordering after the view
//!   swap — a reader that sees watermark `n` can reach every row of
//!   epoch `n`.
//!
//! # Failure semantics
//!
//! A failed append poisons the *writer* exactly as on a plain [`Tgi`]
//! handle ([`BuildError::Poisoned`] on retry) and publishes nothing:
//! already-pinned readers and new [`TgiService::pin`] calls keep
//! answering at the last durable watermark. Once the cluster heals,
//! [`TgiService::try_recover`] re-opens the writer from the durable
//! state *in place* — same service, same shared cache, watermark
//! sequence intact — and finishes with an anti-entropy
//! [`TgiService::try_repair`] pass that re-replicates any rows a
//! degraded write left short (see [`SimStore::try_repair`]).
//!
//! # Caching
//!
//! All views share one lock-striped [`read
//! cache`](crate::read_cache): index rows are write-once, so an entry
//! cached at watermark `n` is still exact at watermark `n+k`; the
//! stripes keep concurrent pinned readers from serializing on a
//! single cache mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hgs_delta::Event;
use hgs_store::{RepairReport, SimStore, StoreConfig};

use crate::build::{BuildError, Tgi, TgiView};
use crate::config::TgiConfig;
use crate::persist::OpenError;
use crate::read_cache::CacheStats;

/// A shared, concurrently-usable TGI: one serialized writer, any
/// number of watermark-pinned readers. Cheap to share as
/// `Arc<TgiService>` across threads.
pub struct TgiService {
    /// The owning handle with its mutable append state. Locked only
    /// by appends (and writer-side accessors); never by readers.
    writer: Mutex<Tgi>,
    /// The latest published watermark. Readers take the read lock
    /// just long enough to clone the `Arc`.
    published: RwLock<Arc<TgiView>>,
    /// Epoch of the latest published watermark, readable without any
    /// lock. Stored with release ordering after the view swap.
    watermark: AtomicU64,
}

impl TgiService {
    /// Wrap an existing handle (built or re-opened) into a service,
    /// publishing its current state as the first watermark.
    pub fn from_handle(tgi: Tgi) -> Arc<TgiService> {
        let view = Arc::new(tgi.view());
        let watermark = AtomicU64::new(view.epoch());
        Arc::new(TgiService {
            writer: Mutex::new(tgi),
            published: RwLock::new(view),
            watermark,
        })
    }

    /// Build an index over `events` on a fresh simulated cluster and
    /// serve it. Panics on write failure; see
    /// [`TgiService::try_build`].
    pub fn build(cfg: TgiConfig, store_cfg: StoreConfig, events: &[Event]) -> Arc<TgiService> {
        TgiService::from_handle(Tgi::build(cfg, store_cfg, events))
    }

    /// Fallible [`TgiService::build`].
    pub fn try_build(
        cfg: TgiConfig,
        store_cfg: StoreConfig,
        events: &[Event],
    ) -> Result<Arc<TgiService>, BuildError> {
        Ok(TgiService::from_handle(Tgi::try_build(
            cfg, store_cfg, events,
        )?))
    }

    /// Fallible build on an existing store (see [`Tgi::try_build_on`]).
    pub fn try_build_on(
        cfg: TgiConfig,
        store: Arc<SimStore>,
        events: &[Event],
    ) -> Result<Arc<TgiService>, BuildError> {
        Ok(TgiService::from_handle(Tgi::try_build_on(
            cfg, store, events,
        )?))
    }

    /// Pin the latest published watermark. The returned view is
    /// immutable: every query through it answers from the sealed
    /// prefix of that watermark, unaffected by concurrent appends.
    /// Pin once per logical query (or per request) and run every
    /// sub-query against the same view — that is what makes a
    /// multi-fetch answer internally consistent.
    pub fn pin(&self) -> Arc<TgiView> {
        Arc::clone(&self.published.read())
    }

    /// Epoch of the latest published watermark (lock-free).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Append a batch of events, publishing a new watermark on
    /// success. Appends serialize on the writer lock; readers are
    /// never blocked — they keep answering at the previous watermark
    /// until the swap, and at their pinned view regardless.
    ///
    /// On error the service publishes nothing: the writer is poisoned
    /// (see [`Tgi::try_append_events`]) and every reader — pinned or
    /// future — stays at the last durable watermark. Returns the new
    /// watermark epoch on success.
    pub fn try_append_events(&self, events: &[Event]) -> Result<u64, BuildError> {
        let mut writer = self.writer.lock();
        writer.try_append_events(events)?;
        // Publish only after the append's rows are flushed and the
        // graph descriptor is durable (both happen inside
        // `try_append_events`, before it returns Ok): watermark
        // publication must never make unflushed rows reachable.
        let view = Arc::new(writer.view());
        let epoch = view.epoch();
        *self.published.write() = view;
        self.watermark.store(epoch, Ordering::Release);
        Ok(epoch)
    }

    /// Panicking wrapper over [`TgiService::try_append_events`]; see
    /// the crate's infallible/fallible API convention.
    pub fn append_events(&self, events: &[Event]) -> u64 {
        self.try_append_events(events).unwrap_or_else(|e| {
            // hgs-lint: allow(no-panic-in-try, "documented panic bridge of the infallible service API; try_append_events surfaces the error")
            panic!(
                "TGI service append failed ({e}); use try_append_events to handle write failures"
            )
        })
    }

    /// Whether an earlier append failed partway, refusing further
    /// appends (the read side keeps serving the last watermark).
    pub fn is_poisoned(&self) -> bool {
        self.writer.lock().is_poisoned()
    }

    /// Set the writer's client width (clamped to host parallelism;
    /// see [`Tgi::set_clients`]). Takes effect for subsequent appends
    /// and for views published after the next append.
    pub fn set_clients(&self, c: usize) {
        self.writer.lock().set_clients(c);
    }

    /// [`TgiService::set_clients`] without the clamp (see
    /// [`Tgi::set_clients_forced`]).
    pub fn set_clients_forced(&self, c: usize) {
        self.writer.lock().set_clients_forced(c);
    }

    /// Aggregated counters of the shared read cache (all views of
    /// this service share one cache; see [`crate::read_cache`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.pin().cache_stats()
    }

    /// Re-budget the shared read cache (see
    /// [`TgiView::set_read_cache_budget`]).
    pub fn set_read_cache_budget(&self, bytes: usize) {
        self.pin().set_read_cache_budget(bytes);
    }

    /// The backing store of the served index.
    pub fn store(&self) -> Arc<SimStore> {
        Arc::clone(self.pin().store())
    }

    /// Run one anti-entropy pass over the backing store
    /// ([`SimStore::try_repair`]): re-replicate every row an earlier
    /// degraded write left under-replicated. Honest about progress —
    /// rows whose replicas are still refusing stay recorded and are
    /// reported as `still_degraded`.
    pub fn try_repair(&self) -> Result<RepairReport, OpenError> {
        self.store().try_repair().map_err(OpenError::Store)
    }

    /// Recover a poisoned writer in place and repair the store.
    ///
    /// A failed append leaves the writer poisoned at the last durable
    /// watermark (readers never stopped serving it). Once the cluster
    /// heals — machines healed, fault plan detached or its windows
    /// elapsed — this re-opens the index from the store's durable
    /// state, carries the service's runtime state over to the fresh
    /// writer (shared read cache, client width, runtime config knobs,
    /// watermark continuity), and finishes with an anti-entropy pass
    /// so rows degraded by the same fault window are re-replicated.
    /// Appends work again afterwards; the next one publishes the next
    /// epoch in the service's watermark sequence.
    ///
    /// On an unpoisoned writer this is just [`TgiService::try_repair`]
    /// behind the writer lock. If the store is still refusing reads
    /// the re-open fails with an honest [`OpenError`] and the writer
    /// stays poisoned — call again once the cluster actually healed.
    pub fn try_recover(&self) -> Result<RepairReport, OpenError> {
        let mut writer = self.writer.lock();
        if writer.is_poisoned() {
            let store = Arc::clone(writer.store());
            let mut reopened = Tgi::open(store)?;
            // Runtime state is not persisted; carry it across the
            // swap so recovery is invisible to everything but the
            // poison flag.
            reopened.view.read_cache = Arc::clone(&writer.view.read_cache);
            reopened.view.clients = writer.view.clients;
            reopened.view.cfg.write_batch_rows = writer.view.cfg.write_batch_rows;
            reopened.view.cfg.read_cache_shards = writer.view.cfg.read_cache_shards;
            reopened.view.cfg.retry = writer.view.cfg.retry;
            // `Tgi::open` restarts epochs at 1; the service's sequence
            // must keep ascending past the already-published watermark.
            reopened.view.epoch = self.watermark.load(Ordering::Acquire);
            *writer = reopened;
        }
        writer.store().try_repair().map_err(OpenError::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::EventKind;

    /// A growing chain with one event per timestamp, so the history
    /// can be split into append batches at any index.
    fn chain_events(n: u64) -> Vec<Event> {
        let mut evs = Vec::new();
        let mut t = 1;
        for i in 0..n {
            evs.push(Event::new(t, EventKind::AddNode { id: i }));
            t += 1;
            if i > 0 {
                evs.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: i - 1,
                        dst: i,
                        weight: 1.0,
                        directed: false,
                    },
                ));
                t += 1;
            }
        }
        evs
    }

    #[test]
    fn watermark_advances_per_append_and_pins_are_stable() {
        let evs = chain_events(60);
        let svc = TgiService::build(
            TgiConfig::default()
                .with_timespan(50)
                .with_eventlist_size(20),
            StoreConfig::new(4, 1),
            &evs[..40],
        );
        let w0 = svc.watermark();
        assert_eq!(w0, 1, "initial build publishes the first watermark");
        let pinned = svc.pin();
        assert_eq!(pinned.epoch(), w0);
        let t = pinned.end_time();
        let before = pinned.snapshot(t);
        let w1 = svc.append_events(&evs[40..]);
        assert_eq!(w1, w0 + 1);
        assert_eq!(svc.watermark(), w1);
        // The pinned view still answers from its own sealed prefix...
        assert_eq!(pinned.snapshot(t), before);
        assert_eq!(pinned.epoch(), w0);
        // ...while a fresh pin sees the appended history.
        let now = svc.pin();
        assert_eq!(now.epoch(), w1);
        assert!(now.event_count() > pinned.event_count());
    }

    #[test]
    fn recover_unpoisons_the_writer_and_keeps_the_watermark_sequence() {
        let evs = chain_events(120);
        let store = Arc::new(SimStore::new(StoreConfig::new(4, 2)));
        let svc = TgiService::try_build_on(
            TgiConfig::default()
                .with_timespan(50)
                .with_eventlist_size(20),
            Arc::clone(&store),
            &evs[..40],
        )
        .expect("clean build");
        let w1 = svc.append_events(&evs[40..80]);
        // Take the whole cluster down transiently: the next append
        // fails and poisons the writer, readers stay at w1.
        let mut plan = hgs_store::FaultPlan::new(0xBAD);
        for m in 0..store.machine_count() {
            plan = plan.with_outage(m, 0, u64::MAX);
        }
        store.set_fault_plan(Some(plan));
        assert!(svc.try_append_events(&evs[80..]).is_err());
        assert!(svc.is_poisoned());
        assert_eq!(svc.watermark(), w1);
        let pinned = svc.pin();
        // Recovery while the cluster is still refusing is honest.
        assert!(svc.try_recover().is_err());
        assert!(svc.is_poisoned());
        // Heal (detach the plan), recover in place, append again.
        store.set_fault_plan(None);
        let report = svc.try_recover().expect("healed cluster reopens");
        assert_eq!(report.still_degraded, 0);
        assert!(!svc.is_poisoned());
        let w2 = svc.append_events(&evs[80..]);
        assert_eq!(w2, w1 + 1, "watermark sequence survives recovery");
        assert_eq!(pinned.epoch(), w1, "pre-failure pins are untouched");
        // The recovered service answers identically to a never-faulted
        // build over the same history.
        let oracle = TgiService::build(
            TgiConfig::default()
                .with_timespan(50)
                .with_eventlist_size(20),
            StoreConfig::new(4, 2),
            &evs,
        );
        let now = svc.pin();
        let t = now.end_time();
        assert_eq!(now.snapshot(t), oracle.pin().snapshot(t));
    }

    #[test]
    fn readers_pin_across_concurrent_appends() {
        let evs = chain_events(300);
        let svc = TgiService::build(
            TgiConfig::default()
                .with_timespan(100)
                .with_eventlist_size(40)
                .with_horizontal(2),
            StoreConfig::new(4, 1),
            &evs[..100],
        );
        let pinned = svc.pin();
        let t = pinned.end_time();
        let baseline = pinned.snapshot(t);
        std::thread::scope(|s| {
            let svc = &svc;
            let evs = &evs;
            let reader = {
                let pinned = Arc::clone(&pinned);
                let baseline = baseline.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(pinned.snapshot(t), baseline);
                        std::thread::yield_now();
                    }
                })
            };
            s.spawn(move || {
                for batch in evs[100..].chunks(50) {
                    svc.append_events(batch);
                }
            });
            reader.join().expect("reader panicked");
        });
        let batches = evs[100..].chunks(50).count() as u64;
        assert_eq!(svc.watermark(), 1 + batches, "one publication per append");
        let latest = svc.pin();
        assert_eq!(
            latest.snapshot(latest.end_time()).cardinality(),
            300,
            "latest watermark sees the whole history"
        );
    }
}

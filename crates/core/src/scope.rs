//! Scope-restricted event application.
//!
//! TGI's partitioned snapshots (leaf states per horizontal partition)
//! are maintained by replaying the span's events *restricted to the
//! partition's node set*: an edge event whose endpoints live in
//! different partitions updates each endpoint's description in its own
//! partition only. The union of all partitioned states then equals the
//! full graph state — an invariant the integration tests check.

use hgs_delta::{Delta, EdgeDir, EventKind, Neighbor, NodeId, StaticNode};

/// Apply `kind` to `state`, but only mutate node descriptions whose id
/// satisfies `in_scope`. Endpoints outside the scope are neither
/// created nor modified.
pub fn apply_event_scoped<F: Fn(NodeId) -> bool>(state: &mut Delta, kind: &EventKind, in_scope: F) {
    match kind {
        EventKind::AddNode { id } => {
            if in_scope(*id) && !state.contains(*id) {
                state.insert(StaticNode::new(*id));
            }
        }
        EventKind::RemoveNode { id } => {
            if in_scope(*id) {
                if let Some(node) = state.remove(*id) {
                    // Scrub reverse entries of *in-scope* neighbors
                    // only. Out-of-scope neighbors are another
                    // partition's responsibility (their own eventlist
                    // piece carries the normalized `RemoveEdge`
                    // copies); scrubbing them here would make replays
                    // of several pieces into one shared state depend
                    // on piece order — a later piece's RemoveNode must
                    // not undo an earlier piece's re-added edge.
                    for nbr in node.all_neighbors() {
                        if in_scope(nbr) {
                            if let Some(n) = state.node_mut(nbr) {
                                n.remove_all_edges_to(*id);
                            }
                        }
                    }
                    return;
                }
            }
            // The removed node is absent (or out of scope), but
            // *in-scope* neighbors still lose their edges to it.
            // Out-of-scope holders stay untouched for the same reason
            // as above — their own piece's replay owns their state.
            let holders: Vec<NodeId> = state
                .iter()
                .filter(|n| in_scope(n.id) && n.has_neighbor(*id))
                .map(|n| n.id)
                .collect();
            for h in holders {
                if let Some(n) = state.node_mut(h) {
                    n.remove_all_edges_to(*id);
                }
            }
        }
        EventKind::AddEdge {
            src,
            dst,
            weight,
            directed,
        } => {
            let (d_src, d_dst) = if *directed {
                (EdgeDir::Out, EdgeDir::In)
            } else {
                (EdgeDir::Both, EdgeDir::Both)
            };
            if in_scope(*src) {
                ensure(state, *src).insert_edge(Neighbor::weighted(*dst, d_src, *weight));
            }
            if src != dst && in_scope(*dst) {
                ensure(state, *dst).insert_edge(Neighbor::weighted(*src, d_dst, *weight));
            }
        }
        EventKind::RemoveEdge { src, dst } => {
            if in_scope(*src) {
                if let Some(n) = state.node_mut(*src) {
                    n.remove_all_edges_to(*dst);
                }
            }
            if src != dst && in_scope(*dst) {
                if let Some(n) = state.node_mut(*dst) {
                    n.remove_all_edges_to(*src);
                }
            }
        }
        EventKind::SetEdgeWeight { src, dst, weight } => {
            for (a, b) in endpoint_pairs(*src, *dst) {
                if in_scope(a) {
                    if let Some(n) = state.node_mut(a) {
                        for e in n.edges.iter_mut().filter(|e| e.nbr == b) {
                            e.weight = *weight;
                        }
                    }
                }
            }
        }
        EventKind::SetNodeAttr { id, key, value } => {
            if in_scope(*id) {
                ensure(state, *id).attrs.set(key.clone(), value.clone());
            }
        }
        EventKind::RemoveNodeAttr { id, key } => {
            if in_scope(*id) {
                if let Some(n) = state.node_mut(*id) {
                    n.attrs.remove(key);
                }
            }
        }
        EventKind::SetEdgeAttr {
            src,
            dst,
            key,
            value,
        } => {
            for (a, b) in endpoint_pairs(*src, *dst) {
                if in_scope(a) {
                    if let Some(n) = state.node_mut(a) {
                        for e in n.edges.iter_mut().filter(|e| e.nbr == b) {
                            e.set_attr(key.clone(), value.clone());
                        }
                    }
                }
            }
        }
        EventKind::RemoveEdgeAttr { src, dst, key } => {
            for (a, b) in endpoint_pairs(*src, *dst) {
                if in_scope(a) {
                    if let Some(n) = state.node_mut(a) {
                        for e in n.edges.iter_mut().filter(|e| e.nbr == b) {
                            e.remove_attr(key);
                        }
                    }
                }
            }
        }
    }
}

fn ensure(state: &mut Delta, id: NodeId) -> &mut StaticNode {
    if !state.contains(id) {
        state.insert(StaticNode::new(id));
    }
    // hgs-lint: allow(no-panic-in-try, "the node was inserted two lines above when absent")
    state.node_mut(id).expect("just inserted")
}

fn endpoint_pairs(src: NodeId, dst: NodeId) -> impl Iterator<Item = (NodeId, NodeId)> {
    let second = if src == dst { None } else { Some((dst, src)) };
    std::iter::once((src, dst)).chain(second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Event;

    fn scoped_union_equals_global(events: &[Event], parts: u32) {
        let mut global = Delta::new();
        let mut scoped: Vec<Delta> = (0..parts).map(|_| Delta::new()).collect();
        for e in events {
            global.apply_event(&e.kind);
            for p in 0..parts {
                apply_event_scoped(&mut scoped[p as usize], &e.kind, |id| {
                    id % parts as u64 == p as u64
                });
            }
        }
        let mut union = Delta::new();
        for s in &scoped {
            union.sum_assign(s);
        }
        assert_eq!(union, global);
    }

    #[test]
    fn union_invariant_on_mixed_history() {
        let mk = |t, kind| Event::new(t, kind);
        let events = vec![
            mk(
                1,
                EventKind::AddEdge {
                    src: 1,
                    dst: 2,
                    weight: 1.0,
                    directed: false,
                },
            ),
            mk(
                2,
                EventKind::AddEdge {
                    src: 2,
                    dst: 3,
                    weight: 1.0,
                    directed: true,
                },
            ),
            mk(
                3,
                EventKind::SetNodeAttr {
                    id: 1,
                    key: "a".into(),
                    value: 5i64.into(),
                },
            ),
            mk(
                4,
                EventKind::SetEdgeAttr {
                    src: 1,
                    dst: 2,
                    key: "k".into(),
                    value: true.into(),
                },
            ),
            mk(
                5,
                EventKind::SetEdgeWeight {
                    src: 1,
                    dst: 2,
                    weight: 9.0,
                },
            ),
            mk(6, EventKind::RemoveEdge { src: 2, dst: 3 }),
            mk(7, EventKind::RemoveNode { id: 2 }),
            mk(
                8,
                EventKind::AddEdge {
                    src: 3,
                    dst: 4,
                    weight: 1.0,
                    directed: false,
                },
            ),
            mk(
                9,
                EventKind::RemoveNodeAttr {
                    id: 1,
                    key: "a".into(),
                },
            ),
            mk(
                10,
                EventKind::RemoveEdgeAttr {
                    src: 3,
                    dst: 4,
                    key: "none".into(),
                },
            ),
        ];
        scoped_union_equals_global(&events, 2);
        scoped_union_equals_global(&events, 3);
    }

    #[test]
    fn cross_scope_edge_updates_one_side() {
        // Nodes 1 (odd scope) and 2 (even scope).
        let mut even = Delta::new();
        apply_event_scoped(
            &mut even,
            &EventKind::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0,
                directed: false,
            },
            |id| id % 2 == 0,
        );
        assert!(!even.contains(1), "out-of-scope endpoint not created");
        assert!(even.node(2).unwrap().has_neighbor(1));
    }

    #[test]
    fn out_of_scope_node_removal_scrubs_in_scope_edges() {
        let mut even = Delta::new();
        apply_event_scoped(
            &mut even,
            &EventKind::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0,
                directed: false,
            },
            |id| id % 2 == 0,
        );
        apply_event_scoped(&mut even, &EventKind::RemoveNode { id: 1 }, |id| {
            id % 2 == 0
        });
        assert_eq!(even.node(2).unwrap().degree(), 0);
    }
}

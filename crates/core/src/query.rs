//! TGI retrieval — the paper's Query Manager and Algorithms 1–5
//! (§4.6): snapshot retrieval, node history, k-hop neighborhoods (both
//! strategies), and 1-hop neighborhood history.
//!
//! # Error-handling contract
//!
//! Every retrieval primitive comes in two flavours:
//!
//! * a fallible `try_*` variant returning
//!   `Result<_, `[`StoreError`]`>` — when **all** replicas of a chunk
//!   the query needs are down, the query fails with
//!   [`StoreError::Unavailable`] instead of silently returning a
//!   *smaller* graph;
//! * the classic infallible name (`snapshot`, `node_history`, …),
//!   which is a thin wrapper that panics on store failure. These are
//!   for tests, benches and examples running against healthy
//!   clusters; production callers should use `try_*`.
//!
//! A missing *row* (`Ok(None)` / empty scan) is not an error — deltas
//! that were never written (empty micro-partitions) are legitimately
//! absent. Only machine unavailability surfaces as `Err`.

use std::sync::Arc;

use hgs_delta::{
    ColumnarDelta, ColumnarEventlist, Delta, Event, Eventlist, FxHashMap, FxHashSet, NodeId,
    StaticNode, StorageLayout, Time, TimeRange,
};
use hgs_store::key::{chain_prefix, node_placement_token};
use hgs_store::parallel::parallel_chunks;
use hgs_store::{DeltaKey, PlacementKey, StoreError, Table};

use crate::build::{SpanRuntime, TgiView};
use crate::costs::{access_cost, CostProfile, IndexKind, QueryKind};
use crate::meta::{decode_chain, sid_of, ChainEntry, AUX_BASE, ELIST_BASE};
use crate::read_cache::{CacheKey, Cached};
use crate::scope::apply_event_scoped;

/// How to fetch a k-hop neighborhood (§4.6, Algorithms 3 & 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KhopStrategy {
    /// Fetch the whole snapshot, then filter (Algorithm 3). Wins for
    /// large `k`.
    ViaSnapshot,
    /// Fetch the node, then its neighbors, recursively (Algorithm 4),
    /// exploiting micro-partitions and auxiliary replicas. Wins for
    /// `k <= 2`.
    Recursive,
}

/// The history of one node over a time range (Algorithm 2's result):
/// its state at the range start plus every event touching it within
/// the range.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHistory {
    /// The node.
    pub id: NodeId,
    /// Queried half-open range.
    pub range: TimeRange,
    /// State as of `range.start` (`None` if the node did not exist).
    pub initial: Option<StaticNode>,
    /// Chronological events touching the node strictly after
    /// `range.start` and before `range.end`.
    pub events: Vec<Event>,
}

impl NodeHistory {
    /// Number of change points in the range.
    pub fn change_count(&self) -> usize {
        self.events.len()
    }

    /// Materialize the version sequence: `(time, state)` starting with
    /// the initial state, then one entry per distinct event timestamp.
    pub fn versions(&self) -> Vec<(Time, Option<StaticNode>)> {
        let mut out = Vec::with_capacity(self.events.len() + 1);
        let mut scratch = Delta::new();
        if let Some(n) = &self.initial {
            scratch.insert(n.clone());
        }
        out.push((self.range.start, self.initial.clone()));
        let mut i = 0usize;
        while i < self.events.len() {
            let t = self.events[i].time;
            while i < self.events.len() && self.events[i].time == t {
                apply_event_scoped(&mut scratch, &self.events[i].kind, |id| id == self.id);
                i += 1;
            }
            out.push((t, scratch.node(self.id).cloned()));
        }
        out
    }

    /// State of the node as of time `t` within the queried range.
    pub fn state_at(&self, t: Time) -> Option<StaticNode> {
        debug_assert!(self.range.contains(t) || t == self.range.start);
        let mut scratch = Delta::new();
        if let Some(n) = &self.initial {
            scratch.insert(n.clone());
        }
        for e in self.events.iter().take_while(|e| e.time <= t) {
            apply_event_scoped(&mut scratch, &e.kind, |id| id == self.id);
        }
        scratch.node(self.id).cloned()
    }
}

/// The 1-hop neighborhood history of a node (Algorithm 5's result).
#[derive(Debug, Clone)]
pub struct NeighborhoodHistory {
    /// The center node's history.
    pub center: NodeHistory,
    /// Histories of every node that was a neighbor at some point in
    /// the range.
    pub neighbors: Vec<NodeHistory>,
    /// Queried range.
    pub range: TimeRange,
}

impl NeighborhoodHistory {
    /// Materialize the neighborhood subgraph as of `t`: the center and
    /// its *current* neighbors at `t`, with their states.
    pub fn subgraph_at(&self, t: Time) -> Delta {
        let mut out = Delta::new();
        let Some(center) = self.center.state_at(t) else {
            return out;
        };
        let current: FxHashSet<NodeId> = center.all_neighbors().collect();
        for h in &self.neighbors {
            if current.contains(&h.id) {
                if let Some(s) = h.state_at(t) {
                    out.insert(s);
                }
            }
        }
        out.insert(center);
        out
    }

    /// All distinct change timepoints in the neighborhood.
    pub fn change_times(&self) -> Vec<Time> {
        let mut times: Vec<Time> = self
            .center
            .events
            .iter()
            .chain(self.neighbors.iter().flat_map(|h| h.events.iter()))
            .map(|e| e.time)
            .collect();
        times.sort_unstable();
        times.dedup();
        times
    }
}

/// Panic with context on a store failure reaching an infallible API.
pub(crate) fn unwrap_read<T>(r: Result<T, StoreError>) -> T {
    // hgs-lint: allow(no-panic-in-try, "documented panic bridge of the infallible query API; try_* variants surface StoreError")
    r.unwrap_or_else(|e| panic!("TGI read failed ({e}); use the try_* variant to handle failures"))
}

/// A fetched delta row in whichever representation the cache holds:
/// fully decoded, or a lazily-decoded columnar row that answers
/// single-node record probes from its node-index column alone.
#[derive(Clone)]
pub(crate) enum DeltaHandle {
    Full(Arc<Delta>),
    Col(Arc<ColumnarDelta>),
}

impl DeltaHandle {
    /// The stored record of `nid` in this row, if any. A columnar row
    /// decodes its node-index column here, so corruption surfaces as
    /// [`StoreError::Corrupt`] instead of a panic.
    fn record(&self, nid: NodeId) -> Result<Option<StaticNode>, StoreError> {
        match self {
            DeltaHandle::Full(d) => Ok(d.node(nid).cloned()),
            DeltaHandle::Col(c) => c.node_record(nid).map_err(StoreError::Corrupt),
        }
    }
}

/// A fetched eventlist row in whichever representation the cache
/// holds. Node-scoped callers pull only the events touching one node,
/// which a columnar row answers without materializing the payload
/// columns of events the node never touches.
#[derive(Clone)]
pub(crate) enum ElistHandle {
    Full(Arc<Eventlist>),
    Col(Arc<ColumnarEventlist>),
}

impl ElistHandle {
    /// Chronological events touching `nid`. A columnar row decodes its
    /// payload columns here, so corruption surfaces as
    /// [`StoreError::Corrupt`] instead of a panic.
    fn events_touching(&self, nid: NodeId) -> Result<Vec<Event>, StoreError> {
        match self {
            ElistHandle::Full(el) => Ok(el
                .events()
                .iter()
                .filter(|e| touches(e, nid))
                .cloned()
                .collect()),
            ElistHandle::Col(c) => c.events_touching(nid).map_err(StoreError::Corrupt),
        }
    }
}

impl TgiView {
    // ------------------------------------------------------------------
    // Algorithm 1: snapshot retrieval
    // ------------------------------------------------------------------

    /// The full graph as of time `t`, fetched with the default client
    /// parallelism. Panics if a needed chunk is fully unavailable; see
    /// [`TgiView::try_snapshot`].
    pub fn snapshot(&self, t: Time) -> Delta {
        unwrap_read(self.try_snapshot(t))
    }

    /// Fallible [`TgiView::snapshot`].
    pub fn try_snapshot(&self, t: Time) -> Result<Delta, StoreError> {
        self.try_snapshot_c(t, self.clients)
    }

    /// Snapshot with an explicit parallel fetch factor `c`.
    pub fn snapshot_c(&self, t: Time, c: usize) -> Delta {
        unwrap_read(self.try_snapshot_c(t, c))
    }

    /// Fallible [`TgiView::snapshot_c`]: errors when all replicas of any
    /// chunk the query still has to fetch are down, instead of
    /// returning a silently incomplete graph.
    ///
    /// Runs as a degenerate one-time plan through the multipoint
    /// machinery ([`TgiView::try_snapshots_c`]), so
    /// it consults and populates the session-wide read cache: a warm
    /// repeat pays only the checkpoint-state clone and the eventlist
    /// replay, never the tree-path fetch + decode. The cache-bypassing
    /// reference path remains as [`TgiView::try_snapshot_uncached_c`].
    pub fn try_snapshot_c(&self, t: Time, c: usize) -> Result<Delta, StoreError> {
        let mut out = self.try_snapshots_c(std::slice::from_ref(&t), c)?;
        // hgs-lint: allow(no-panic-in-try, "try_snapshots_c returns exactly one state per requested time")
        Ok(out.pop().expect("one snapshot per requested time"))
    }

    /// Cache-bypassing [`TgiView::snapshot`]: refetches and re-decodes the
    /// whole root-to-leaf path, touching neither cached entries nor
    /// the cache's counters. This is the reference implementation the
    /// cached paths are tested against, and the honest "cold" baseline
    /// for benchmarks.
    pub fn snapshot_uncached(&self, t: Time) -> Delta {
        unwrap_read(self.try_snapshot_uncached_c(t, self.clients))
    }

    /// Fallible [`TgiView::snapshot_uncached`] with an explicit parallel
    /// fetch factor `c`.
    pub fn try_snapshot_uncached_c(&self, t: Time, c: usize) -> Result<Delta, StoreError> {
        let span = self.span_for(t);
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        let j = meta.leaf_for_time(t);
        let path = meta.shape.path_to_leaf(j);

        // One fetch job per (sid, did-in-path) plus one per sid for the
        // eventlist chunk: this is the unit of work the c clients pull.
        #[derive(Clone, Copy)]
        struct Job {
            sid: u32,
            did: u64,
        }
        let mut jobs: Vec<Job> = Vec::with_capacity(ns as usize * (path.len() + 1));
        for sid in 0..ns {
            for &did in &path {
                jobs.push(Job { sid, did });
            }
            jobs.push(Job {
                sid,
                did: ELIST_BASE + j as u64,
            });
        }

        // (sid, did, micro-partition pieces keyed by pid).
        type FetchedDelta = (u32, u64, Vec<(u32, bytes::Bytes)>);
        let store = &self.store;
        let fetched: Vec<Result<FetchedDelta, StoreError>> = parallel_chunks(jobs, c, |chunk| {
            chunk
                .into_iter()
                .map(|job| {
                    let prefix = DeltaKey::delta_prefix(tsid, job.sid, job.did);
                    let token = PlacementKey::new(tsid, job.sid).token();
                    // hgs-lint: allow(batched-store-discipline, "uncached reference path kept deliberately plan-free as the correctness oracle for the planned path")
                    let rows = store.scan_prefix(Table::Deltas, &prefix, token)?;
                    let pieces = rows
                        .into_iter()
                        .filter_map(|(k, v)| DeltaKey::decode(&k).map(|dk| (dk.pid, v)))
                        .collect();
                    Ok((job.sid, job.did, pieces))
                })
                .collect()
        });

        // Merge: per sid, sum tree deltas in path order, then apply the
        // chunk-j events (scoped per micro-partition) up to t.
        let mut per_sid: FxHashMap<u32, FxHashMap<u64, Vec<(u32, bytes::Bytes)>>> =
            FxHashMap::default();
        for item in fetched {
            let (sid, did, pieces) = item?;
            per_sid.entry(sid).or_default().insert(did, pieces);
        }
        let mut out = Delta::new();
        for sid in 0..ns {
            let Some(mut by_did) = per_sid.remove(&sid) else {
                continue;
            };
            let mut state = Delta::new();
            for &did in &path {
                if let Some(pieces) = by_did.remove(&did) {
                    for (_pid, bytes) in pieces {
                        let d = self.decode_delta_blob(&bytes)?;
                        state.sum_assign_owned(d);
                    }
                }
            }
            if let Some(pieces) = by_did.remove(&(ELIST_BASE + j as u64)) {
                // hgs-lint: allow(no-panic-in-try, "sid enumerates 0..ns and span.maps holds ns entries")
                let map = &span.maps[sid as usize];
                for (pid, bytes) in pieces {
                    let el = self.decode_elist_blob(&bytes)?;
                    for e in el.events().iter().take_while(|e| e.time <= t) {
                        apply_event_scoped(&mut state, &e.kind, |id| {
                            sid_of(id, ns) == sid && map.assign(id) == pid
                        });
                    }
                }
            }
            out.sum_assign_owned(state);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // static vertex / micro-partition fetches
    // ------------------------------------------------------------------

    /// State of one node as of `t` (a *static vertex* fetch in Table
    /// 1's terms): touches only the node's micro-partition along the
    /// tree path.
    pub fn node_at(&self, nid: NodeId, t: Time) -> Option<StaticNode> {
        unwrap_read(self.try_node_at(nid, t))
    }

    /// Fallible [`TgiView::node_at`].
    pub fn try_node_at(&self, nid: NodeId, t: Time) -> Result<Option<StaticNode>, StoreError> {
        let span = self.span_for(t);
        let ns = self.cfg.horizontal_partitions;
        let sid = sid_of(nid, ns);
        // hgs-lint: allow(no-panic-in-try, "sid_of returns sid < ns and span.maps holds ns entries")
        let pid = span.maps[sid as usize].assign(nid);
        if self.cfg.layout == StorageLayout::Columnar {
            return self.try_node_at_pruned(span, nid, sid, pid, t);
        }
        let state = self.try_fetch_partition_state(span, sid, pid, t)?;
        Ok(state.node(nid).cloned())
    }

    /// Column-pruned static-vertex fetch (columnar layout only).
    ///
    /// The id-wise delta sum is right-biased — a later path delta's
    /// record for a node *replaces* any earlier one — so the node's
    /// checkpoint record is simply the record in the **last** path
    /// delta containing it. Walking the path leaf-most first, each
    /// columnar row answers "do you hold this node?" from its node
    /// index column alone; only the one winning record slice is ever
    /// parsed, and rows not containing the node decode nothing else.
    /// The eventlist roll-forward likewise materializes only the
    /// events touching the node (normalization expands `RemoveNode`
    /// into explicit `RemoveEdge`s, so those events are sufficient).
    fn try_node_at_pruned(
        &self,
        span: &SpanRuntime,
        nid: NodeId,
        sid: u32,
        pid: u32,
        t: Time,
    ) -> Result<Option<StaticNode>, StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let j = meta.leaf_for_time(t);
        let mut scratch = Delta::new();
        // A checkpoint state materialized by a full-replay path
        // already holds the summed record — use it instead of walking.
        match self
            .read_cache
            .get(CacheKey::Part(tsid, sid, pid, j as u32))
        {
            Some(Cached::Delta(d)) => {
                if let Some(n) = d.node(nid) {
                    scratch.insert(n.clone());
                }
            }
            _ => {
                let path = meta.shape.path_to_leaf(j);
                for &did in path.iter().rev() {
                    if let Some(h) = self.try_fetch_delta_handle(tsid, sid, did, pid)? {
                        if let Some(n) = h.record(nid)? {
                            scratch.insert(n);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(el) = self.try_fetch_elist(tsid, sid, j as u32, pid)? {
            for e in el
                .events_touching(nid)?
                .into_iter()
                .take_while(|e| e.time <= t)
            {
                apply_event_scoped(&mut scratch, &e.kind, |id| id == nid);
            }
        }
        Ok(scratch.node(nid).cloned())
    }

    /// Fetch (or serve from the read cache) one tree-delta row as a
    /// [`DeltaHandle`] — under the columnar layout a cache miss parses
    /// only the row header, deferring column decodes to the caller's
    /// actual probes.
    fn try_fetch_delta_handle(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
    ) -> Result<Option<DeltaHandle>, StoreError> {
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key.clone()) {
            Some(Cached::Delta(d)) => return Ok(Some(DeltaHandle::Full(d))),
            Some(Cached::ColDelta(c)) => return Ok(Some(DeltaHandle::Col(c))),
            Some(Cached::Absent) => return Ok(None),
            _ => {}
        }
        let dk = DeltaKey::new(tsid, sid, did, pid);
        let token = PlacementKey::new(tsid, sid).token();
        // hgs-lint: allow(batched-store-discipline, "cache-miss point read of one (tsid, sid, did, pid) row; callers batch across rows, not within one")
        match self.store.get(Table::Deltas, &dk.encode(), token)? {
            Some(bytes) => Ok(Some(self.insert_delta_handle(tsid, sid, did, pid, bytes)?)),
            None => {
                self.read_cache.put(key, Cached::Absent);
                Ok(None)
            }
        }
    }

    /// Cache a freshly fetched delta row in its layout-native handle
    /// form: row-wise rows decode eagerly, columnar rows stay lazy.
    fn insert_delta_handle(
        &self,
        tsid: u32,
        sid: u32,
        did: u64,
        pid: u32,
        bytes: bytes::Bytes,
    ) -> Result<DeltaHandle, StoreError> {
        Ok(match self.cfg.layout {
            StorageLayout::RowWise => {
                DeltaHandle::Full(self.insert_decoded_delta(tsid, sid, did, pid, &bytes)?)
            }
            StorageLayout::Columnar => {
                let c = Arc::new(ColumnarDelta::parse(bytes).map_err(StoreError::Corrupt)?);
                self.read_cache.put(
                    CacheKey::Row(tsid, sid, did, pid),
                    Cached::ColDelta(c.clone()),
                );
                DeltaHandle::Col(c)
            }
        })
    }

    /// Reconstruct the state of micro-partition `(sid, pid)` as of
    /// `t`: tree-path micro-deltas + the eventlist chunk, a degenerate
    /// single-partition chunk plan over the shared read cache.
    ///
    /// The checkpoint state (path rows summed, before replay) caches
    /// under [`CacheKey::Part`]; individual rows cache under
    /// [`CacheKey::Row`]. Everything still unknown travels in **one**
    /// batched multi-get (the rows share a placement chunk) — that
    /// fallible fetch is re-run on every miss, including misses caused
    /// by eviction, so a down chunk surfaces
    /// [`StoreError::Unavailable`] instead of a stale or partial
    /// state.
    pub(crate) fn try_fetch_partition_state(
        &self,
        span: &SpanRuntime,
        sid: u32,
        pid: u32,
        t: Time,
    ) -> Result<Delta, StoreError> {
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        let j = meta.leaf_for_time(t);
        let elist_did = ELIST_BASE + j as u64;
        let path = meta.shape.path_to_leaf(j);

        let part_key = CacheKey::Part(tsid, sid, pid, j as u32);
        let base = match self.read_cache.get(part_key.clone()) {
            Some(Cached::Delta(d)) => Some(d),
            _ => None,
        };

        // Resolve what the cache already holds; everything else goes
        // into one batched fetch.
        let mut tree_rows: FxHashMap<u64, Option<Arc<Delta>>> = FxHashMap::default();
        let mut fetch_dids: Vec<u64> = Vec::new();
        if base.is_none() {
            for &did in &path {
                match self.read_cache.get(CacheKey::Row(tsid, sid, did, pid)) {
                    Some(Cached::Delta(d)) => {
                        tree_rows.insert(did, Some(d));
                    }
                    Some(Cached::Absent) => {
                        tree_rows.insert(did, None);
                    }
                    _ => fetch_dids.push(did),
                }
            }
        }
        let mut elist: Option<Arc<Eventlist>> = None;
        match self
            .read_cache
            .get(CacheKey::Row(tsid, sid, elist_did, pid))
        {
            Some(Cached::Elist(e)) => elist = Some(e),
            Some(Cached::Absent) => {}
            _ => fetch_dids.push(elist_did),
        }

        if !fetch_dids.is_empty() {
            let token = PlacementKey::new(tsid, sid).token();
            let keys: Vec<[u8; 20]> = fetch_dids
                .iter()
                .map(|&did| DeltaKey::new(tsid, sid, did, pid).encode())
                .collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| &k[..]).collect();
            let values = self.store.multi_get(Table::Deltas, &refs, token)?;
            for (&did, bytes) in fetch_dids.iter().zip(values) {
                match bytes {
                    Some(bytes) if did == elist_did => {
                        elist = Some(self.insert_decoded_elist(tsid, sid, did, pid, &bytes)?);
                    }
                    Some(bytes) => {
                        tree_rows.insert(
                            did,
                            Some(self.insert_decoded_delta(tsid, sid, did, pid, &bytes)?),
                        );
                    }
                    None => {
                        // Absence of a write-once row is permanent for
                        // sealed spans: cache it too.
                        self.read_cache
                            .put(CacheKey::Row(tsid, sid, did, pid), Cached::Absent);
                        if did != elist_did {
                            tree_rows.insert(did, None);
                        }
                    }
                }
            }
        }
        // Checkpoint state, then the per-time eventlist replay.
        let mut state = match base {
            Some(d) => (*d).clone(),
            None => {
                let mut s = Delta::new();
                for &did in &path {
                    if let Some(Some(d)) = tree_rows.get(&did) {
                        s.sum_assign(d);
                    }
                }
                if self.read_cache.is_enabled() {
                    self.read_cache
                        .put(part_key, Cached::Delta(Arc::new(s.clone())));
                }
                s
            }
        };
        if let Some(el) = elist {
            // hgs-lint: allow(no-panic-in-try, "sid_of returns sid < ns and span.maps holds ns entries")
            let map = &span.maps[sid as usize];
            for e in el.events().iter().take_while(|e| e.time <= t) {
                apply_event_scoped(&mut state, &e.kind, |id| {
                    sid_of(id, ns) == sid && map.assign(id) == pid
                });
            }
        }
        Ok(state)
    }

    /// Fetch (or serve from the read cache) one eventlist chunk row as
    /// an [`ElistHandle`]. A miss re-runs the fallible point lookup; a
    /// confirmed-absent row is cached as such (write-once rows cannot
    /// appear later in a sealed span). Under the columnar layout a
    /// miss parses only the row header — the node-scoped callers of
    /// this path then decode just the columns their probes touch.
    pub(crate) fn try_fetch_elist(
        &self,
        tsid: u32,
        sid: u32,
        chunk: u32,
        pid: u32,
    ) -> Result<Option<ElistHandle>, StoreError> {
        let did = ELIST_BASE + chunk as u64;
        let key = CacheKey::Row(tsid, sid, did, pid);
        match self.read_cache.get(key.clone()) {
            Some(Cached::Elist(e)) => return Ok(Some(ElistHandle::Full(e))),
            Some(Cached::ColElist(c)) => return Ok(Some(ElistHandle::Col(c))),
            Some(Cached::Absent) => return Ok(None),
            _ => {}
        }
        let dk = DeltaKey::new(tsid, sid, did, pid);
        let token = PlacementKey::new(tsid, sid).token();
        // hgs-lint: allow(batched-store-discipline, "cache-miss point read of one (tsid, sid, did, pid) row; callers batch across rows, not within one")
        match self.store.get(Table::Deltas, &dk.encode(), token)? {
            Some(bytes) => Ok(Some(match self.cfg.layout {
                StorageLayout::RowWise => {
                    ElistHandle::Full(self.insert_decoded_elist(tsid, sid, did, pid, &bytes)?)
                }
                StorageLayout::Columnar => {
                    let c = Arc::new(ColumnarEventlist::parse(bytes).map_err(StoreError::Corrupt)?);
                    self.read_cache.put(key, Cached::ColElist(c.clone()));
                    ElistHandle::Col(c)
                }
            })),
            None => {
                self.read_cache.put(key, Cached::Absent);
                Ok(None)
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 2: node history via version chains
    // ------------------------------------------------------------------

    /// The version chain of a node (empty when chains are disabled or
    /// the node never appeared).
    pub fn version_chain(&self, nid: NodeId) -> Vec<ChainEntry> {
        unwrap_read(self.try_version_chain(nid))
    }

    /// Fallible [`TgiView::version_chain`]: one prefix scan over the
    /// node's append-only chain-delta rows, concatenated in key (i.e.
    /// `tsid`, i.e. chronological) order. A legacy whole-chain row —
    /// keyed by the bare 8-byte node key — matches the same prefix and
    /// sorts before every `(nid, tsid)` row, so indexes written by the
    /// old read-modify-write path still read correctly.
    pub fn try_version_chain(&self, nid: NodeId) -> Result<Vec<ChainEntry>, StoreError> {
        // hgs-lint: allow(batched-store-discipline, "one prefix scan per node is the version chain's native access (Algorithm 2 batches across chunks)")
        let rows = self.store.scan_prefix(
            Table::Versions,
            &chain_prefix(nid),
            node_placement_token(nid),
        )?;
        let mut chain = Vec::new();
        for (_key, bytes) in rows {
            chain.extend(decode_chain(&bytes).map_err(StoreError::Corrupt)?);
        }
        Ok(chain)
    }

    /// Node history over `range` (Algorithm 2): initial state at
    /// `range.start`, then all events touching the node inside the
    /// range, located via the version chain.
    pub fn node_history(&self, nid: NodeId, range: TimeRange) -> NodeHistory {
        unwrap_read(self.try_node_history(nid, range))
    }

    /// Fallible [`TgiView::node_history`].
    pub fn try_node_history(
        &self,
        nid: NodeId,
        range: TimeRange,
    ) -> Result<NodeHistory, StoreError> {
        self.try_node_history_c(nid, range, self.clients)
    }

    /// [`TgiView::node_history`] with an explicit fetch parallelism.
    pub fn node_history_c(&self, nid: NodeId, range: TimeRange, c: usize) -> NodeHistory {
        unwrap_read(self.try_node_history_c(nid, range, c))
    }

    /// Fallible [`TgiView::node_history_c`].
    pub fn try_node_history_c(
        &self,
        nid: NodeId,
        range: TimeRange,
        c: usize,
    ) -> Result<NodeHistory, StoreError> {
        let initial = self.try_node_at(nid, range.start)?;
        let chain = self.try_version_chain(nid)?;
        // Distinct eventlist refs covering (range.start, range.end).
        // A chain entry records the *first* touch in a chunk run, so
        // the last entry at or before range.start may still point to a
        // chunk holding later in-range events — include it. Chains can
        // revisit a (tsid, chunk, pid) non-adjacently (a node bouncing
        // between chunks across spans), so dedup with a set rather
        // than `Vec::dedup`, which would double-fetch — and
        // double-count — such refs.
        let boundary = chain.partition_point(|e| e.time <= range.start);
        let from = boundary.saturating_sub(1);
        let mut seen: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
        // hgs-lint: allow(no-panic-in-try, "partition_point + saturating_sub keep `from` within chain.len()")
        let refs: Vec<(u32, u32, u32)> = chain[from..]
            .iter()
            .filter(|e| e.time < range.end)
            .map(|e| (e.tsid, e.chunk, e.pid))
            .filter(|r| seen.insert(*r))
            .collect();
        let ns = self.cfg.horizontal_partitions;
        let sid = sid_of(nid, ns);
        let lists: Vec<Result<Vec<Event>, StoreError>> = parallel_chunks(refs, c, |chunk| {
            chunk
                .into_iter()
                .map(|(tsid, ch, pid)| {
                    Ok(match self.try_fetch_elist(tsid, sid, ch, pid)? {
                        Some(el) => el
                            .events_touching(nid)?
                            .into_iter()
                            .filter(|e| e.time > range.start && e.time < range.end)
                            .collect(),
                        None => Vec::new(),
                    })
                })
                .collect()
        });
        let mut events: Vec<Event> = Vec::new();
        for list in lists {
            events.extend(list?);
        }
        events.sort_by_key(|e| e.time);
        Ok(NodeHistory {
            id: nid,
            range,
            initial,
            events,
        })
    }

    // ------------------------------------------------------------------
    // Algorithms 3 & 4: k-hop neighborhood
    // ------------------------------------------------------------------

    /// The k-hop neighborhood of `center` as of `t`, as a partitioned
    /// snapshot restricted to the neighborhood's nodes. The fetch
    /// strategy (Algorithm 3 vs 4) is picked automatically from the
    /// Table-1 access-cost estimators; use [`TgiView::khop_with`] to force
    /// one.
    pub fn khop(&self, center: NodeId, t: Time, k: usize) -> Delta {
        unwrap_read(self.try_khop(center, t, k))
    }

    /// Fallible [`TgiView::khop`].
    pub fn try_khop(&self, center: NodeId, t: Time, k: usize) -> Result<Delta, StoreError> {
        self.try_khop_with(center, t, k, self.khop_strategy_for(t, k))
    }

    /// K-hop neighborhood with an explicit strategy (§4.6, Algorithms
    /// 3 & 4).
    pub fn khop_with(&self, center: NodeId, t: Time, k: usize, strategy: KhopStrategy) -> Delta {
        unwrap_read(self.try_khop_with(center, t, k, strategy))
    }

    /// Fallible [`TgiView::khop_with`].
    pub fn try_khop_with(
        &self,
        center: NodeId,
        t: Time,
        k: usize,
        strategy: KhopStrategy,
    ) -> Result<Delta, StoreError> {
        match strategy {
            KhopStrategy::ViaSnapshot => self.try_khop_via_snapshot(center, t, k),
            KhopStrategy::Recursive => self.try_khop_recursive(center, t, k),
        }
    }

    /// Pick the cheaper k-hop strategy for this index and `k` by
    /// evaluating the paper's Table-1 access-cost formulas
    /// ([`crate::costs::access_cost`]) on the index's current shape:
    /// the recursive walk costs roughly one micro-partition one-hop
    /// fetch per frontier node (`~|R|^(k-1)` of them), while the
    /// via-snapshot plan pays the fixed full-path cost once.
    pub fn khop_strategy_for(&self, t: Time, k: usize) -> KhopStrategy {
        let span = self.span_for(t);
        let s = (self.node_count.max(1)) as f64;
        let g = (self.event_count.max(1)) as f64;
        let e = self.cfg.eventlist_size as f64;
        let h = (span.meta.shape.height().max(1)) as f64;
        let pid_total: u32 = span.meta.pid_counts.iter().sum();
        let p = (pid_total as f64 / span.meta.pid_counts.len().max(1) as f64).max(1.0);
        let r = (2.0 * self.edge_count as f64 / s).max(1.0);
        let w = CostProfile {
            g,
            s,
            e,
            h,
            v: (g / s).max(1.0),
            r,
            p,
            c: (2.0 * g / s).max(1.0),
        };
        let (snap_cost, _) = access_cost(IndexKind::Tgi, QueryKind::Snapshot, &w);
        let (hop_cost, _) = access_cost(IndexKind::Tgi, QueryKind::OneHop, &w);
        let recursive_cost = hop_cost * r.powi(k.saturating_sub(1) as i32);
        if recursive_cost <= snap_cost {
            KhopStrategy::Recursive
        } else {
            KhopStrategy::ViaSnapshot
        }
    }

    fn try_khop_via_snapshot(
        &self,
        center: NodeId,
        t: Time,
        k: usize,
    ) -> Result<Delta, StoreError> {
        let snap = self.try_snapshot(t)?;
        let keep = bfs_set(&snap, center, k);
        Ok(snap.restrict(|id| keep.contains(&id)))
    }

    fn try_khop_recursive(&self, center: NodeId, t: Time, k: usize) -> Result<Delta, StoreError> {
        let span = self.span_for(t);
        let meta = &span.meta;
        let ns = self.cfg.horizontal_partitions;
        let tsid = meta.tsid;
        let j = meta.leaf_for_time(t) as u32;

        let mut fetched_parts: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut part_states: FxHashMap<(u32, u32), Delta> = FxHashMap::default();
        let mut elist_cache: FxHashMap<(u32, u32), Option<ElistHandle>> = FxHashMap::default();
        let mut aux: Option<DeltaHandle> = None;

        let center_sid = sid_of(center, ns);
        // hgs-lint: allow(no-panic-in-try, "sid_of returns sid < ns and span.maps holds ns entries")
        let center_pid = span.maps[center_sid as usize].assign(center);
        let center_state = self.try_fetch_partition_state(span, center_sid, center_pid, t)?;
        fetched_parts.insert((center_sid, center_pid));

        // Auxiliary 1-hop replicas (Fig. 5d): states of boundary
        // neighbors at checkpoint j, to be rolled forward with their
        // own eventlist chunks. Aux rows are write-once too, so they
        // ride the same read cache — held by `Arc`, never deep-copied
        // (the resolve closure only ever reads `aux.node(..)`).
        if meta.has_aux {
            let did = AUX_BASE + j as u64;
            let ckey = CacheKey::Row(tsid, center_sid, did, center_pid);
            aux = match self.read_cache.get(ckey.clone()) {
                Some(Cached::Delta(d)) => Some(DeltaHandle::Full(d)),
                Some(Cached::ColDelta(c)) => Some(DeltaHandle::Col(c)),
                Some(Cached::Absent) => None,
                _ => {
                    let key = DeltaKey::new(tsid, center_sid, did, center_pid);
                    let token = PlacementKey::new(tsid, center_sid).token();
                    // hgs-lint: allow(batched-store-discipline, "cache-miss point read of the single aux row of this k-hop center; nothing to batch")
                    match self.store.get(Table::Deltas, &key.encode(), token)? {
                        Some(bytes) => Some(
                            self.insert_delta_handle(tsid, center_sid, did, center_pid, bytes)?,
                        ),
                        None => {
                            self.read_cache.put(ckey, Cached::Absent);
                            None
                        }
                    }
                }
            };
        }
        part_states.insert((center_sid, center_pid), center_state);

        let mut result: Delta = Delta::new();
        let resolve = |nid: NodeId,
                       part_states: &mut FxHashMap<(u32, u32), Delta>,
                       fetched_parts: &mut FxHashSet<(u32, u32)>,
                       elist_cache: &mut FxHashMap<(u32, u32), Option<ElistHandle>>|
         -> Result<Option<StaticNode>, StoreError> {
            let sid = sid_of(nid, ns);
            // hgs-lint: allow(no-panic-in-try, "sid_of returns sid < ns and span.maps holds ns entries")
            let pid = span.maps[sid as usize].assign(nid);
            if let Some(state) = part_states.get(&(sid, pid)) {
                return Ok(state.node(nid).cloned());
            }
            // Aux fast path: state at checkpoint + roll forward with the
            // node's own eventlist chunk only (columnar rows answer the
            // record probe and the touching-events pull without
            // materializing unrelated columns).
            let aux_base = match aux.as_ref() {
                Some(a) => a.record(nid)?,
                None => None,
            };
            if let Some(base) = aux_base {
                let el = match elist_cache.entry((sid, pid)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(self.try_fetch_elist(tsid, sid, j, pid)?)
                    }
                };
                let mut scratch = Delta::new();
                scratch.insert(base);
                if let Some(el) = el {
                    for e in el
                        .events_touching(nid)?
                        .into_iter()
                        .take_while(|e| e.time <= t)
                    {
                        apply_event_scoped(&mut scratch, &e.kind, |id| id == nid);
                    }
                }
                return Ok(scratch.node(nid).cloned());
            }
            // Full micro-partition fetch.
            let state = self.try_fetch_partition_state(span, sid, pid, t)?;
            fetched_parts.insert((sid, pid));
            let out = state.node(nid).cloned();
            part_states.insert((sid, pid), state);
            Ok(out)
        };

        let mut frontier: Vec<NodeId> = vec![center];
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        seen.insert(center);
        for hop in 0..=k {
            let mut next: Vec<NodeId> = Vec::new();
            for nid in frontier.drain(..) {
                let Some(node) =
                    resolve(nid, &mut part_states, &mut fetched_parts, &mut elist_cache)?
                else {
                    continue;
                };
                if hop < k {
                    for nbr in node.all_neighbors() {
                        if seen.insert(nbr) {
                            next.push(nbr);
                        }
                    }
                }
                result.insert(node);
            }
            frontier = next;
        }
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Algorithm 5: 1-hop neighborhood history
    // ------------------------------------------------------------------

    /// The evolving 1-hop neighborhood of `nid` over `range`
    /// (Algorithm 5): the center's history plus the history of every
    /// node that is its neighbor at any point in the range.
    pub fn one_hop_history(&self, nid: NodeId, range: TimeRange) -> NeighborhoodHistory {
        unwrap_read(self.try_one_hop_history(nid, range))
    }

    /// Fallible [`TgiView::one_hop_history`].
    pub fn try_one_hop_history(
        &self,
        nid: NodeId,
        range: TimeRange,
    ) -> Result<NeighborhoodHistory, StoreError> {
        let center = self.try_node_history(nid, range)?;
        let mut nbrs: FxHashSet<NodeId> = FxHashSet::default();
        if let Some(n) = &center.initial {
            nbrs.extend(n.all_neighbors());
        }
        for e in &center.events {
            let (a, b) = e.kind.touched();
            if a != nid {
                nbrs.insert(a);
            }
            if let Some(b) = b {
                if b != nid {
                    nbrs.insert(b);
                }
            }
        }
        let mut list: Vec<NodeId> = nbrs.into_iter().collect();
        list.sort_unstable();
        let fetched: Vec<Result<NodeHistory, StoreError>> =
            parallel_chunks(list, self.clients, |chunk| {
                chunk
                    .into_iter()
                    .map(|m| self.try_node_history(m, range))
                    .collect()
            });
        let neighbors = fetched.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(NeighborhoodHistory {
            center,
            neighbors,
            range,
        })
    }
}

impl TgiView {
    // ------------------------------------------------------------------
    // bulk fetch (the TAF parallel-fetch protocol's per-worker unit)
    // ------------------------------------------------------------------

    /// Number of horizontal partitions — the unit TAF workers pull in
    /// parallel (Fig. 10: each analytics worker handshakes with the
    /// query processors owning some `sid`s).
    pub fn horizontal_partitions(&self) -> u32 {
        self.cfg.horizontal_partitions
    }

    /// All node histories of one horizontal partition over `range`:
    /// the partition's state at `range.start` plus, per node, the
    /// events touching it strictly inside the range. Nodes that first
    /// appear mid-range are included with `initial == None`.
    ///
    /// This is the bulk equivalent of Algorithm 2 and the fetch unit
    /// of the TAF protocol; one call per `sid` reconstructs the whole
    /// `SoN`.
    pub fn node_histories_for_sid(&self, sid: u32, range: TimeRange) -> Vec<NodeHistory> {
        unwrap_read(self.try_node_histories_for_sid(sid, range))
    }

    /// Fallible [`TgiView::node_histories_for_sid`]. All eventlist chunks
    /// a timespan contributes are pulled in one grouped scan (one
    /// round-trip per span), and store failures are propagated instead
    /// of silently dropping a span's worth of events.
    pub fn try_node_histories_for_sid(
        &self,
        sid: u32,
        range: TimeRange,
    ) -> Result<Vec<NodeHistory>, StoreError> {
        let ns = self.cfg.horizontal_partitions;
        debug_assert!(sid < ns);
        // Initial states: the sid's slice of the snapshot at range.start.
        let initial = self.try_sid_state_at(sid, range.start)?;
        let mut histories: FxHashMap<NodeId, NodeHistory> = FxHashMap::default();
        for n in initial.iter() {
            histories.insert(
                n.id,
                NodeHistory {
                    id: n.id,
                    range,
                    initial: Some(n.clone()),
                    events: Vec::new(),
                },
            );
        }
        // Walk every eventlist chunk overlapping (range.start,
        // range.end), one grouped scan per overlapping span.
        for span in &self.spans {
            let meta = &span.meta;
            if !meta.range.overlaps(&range) {
                continue;
            }
            // hgs-lint: allow(no-panic-in-try, "sid enumerates 0..ns and span.maps holds ns entries")
            let map = &span.maps[sid as usize];
            let chunks = meta.checkpoints.len();
            let mut prefixes: Vec<[u8; 16]> = Vec::new();
            for chunk in 0..chunks {
                // hgs-lint: allow(no-panic-in-try, "chunk enumerates 0..meta.checkpoints.len()")
                let c_start = meta.checkpoints[chunk];
                let c_end = meta
                    .checkpoints
                    .get(chunk + 1)
                    .copied()
                    .unwrap_or(meta.range.end);
                if c_end <= range.start || c_start >= range.end {
                    continue;
                }
                prefixes.push(DeltaKey::delta_prefix(
                    meta.tsid,
                    sid,
                    ELIST_BASE + chunk as u64,
                ));
            }
            if prefixes.is_empty() {
                continue;
            }
            let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
            let token = PlacementKey::new(meta.tsid, sid).token();
            let groups = self.store.scan_prefix_batch(Table::Deltas, &refs, token)?;
            for rows in groups {
                for (k, v) in rows {
                    let Some(dk) = DeltaKey::decode(&k) else {
                        continue;
                    };
                    let el = self.decoded_elist(meta.tsid, sid, dk.did, dk.pid, &v)?;
                    for e in el.events() {
                        if e.time <= range.start || e.time >= range.end {
                            continue;
                        }
                        let (a, b) = e.kind.touched();
                        // A node's events live exactly in its own pid's
                        // list, which also dedups the cross-pid copies.
                        for nid in [Some(a), b].into_iter().flatten() {
                            if sid_of(nid, ns) != sid || map.assign(nid) != dk.pid {
                                continue;
                            }
                            histories
                                .entry(nid)
                                .or_insert_with(|| NodeHistory {
                                    id: nid,
                                    range,
                                    initial: None,
                                    events: Vec::new(),
                                })
                                .events
                                .push(e.clone());
                            if b == Some(a) {
                                break;
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<NodeHistory> = histories.into_values().collect();
        for h in out.iter_mut() {
            h.events.sort_by_key(|e| e.time);
        }
        out.sort_by_key(|h| h.id);
        Ok(out)
    }

    /// One horizontal partition's slice of the snapshot at `t`.
    pub fn sid_state_at(&self, sid: u32, t: Time) -> Delta {
        unwrap_read(self.try_sid_state_at(sid, t))
    }

    /// Fallible [`TgiView::sid_state_at`]: the whole root-to-leaf path
    /// plus the eventlist chunk travel as one grouped scan.
    pub fn try_sid_state_at(&self, sid: u32, t: Time) -> Result<Delta, StoreError> {
        let span = self.span_for(t);
        let meta = &span.meta;
        let tsid = meta.tsid;
        let ns = self.cfg.horizontal_partitions;
        let j = meta.leaf_for_time(t);
        let token = PlacementKey::new(tsid, sid).token();
        let mut dids = meta.shape.path_to_leaf(j);
        dids.push(ELIST_BASE + j as u64);
        let prefixes: Vec<[u8; 16]> = dids
            .iter()
            .map(|&did| DeltaKey::delta_prefix(tsid, sid, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let groups = self.store.scan_prefix_batch(Table::Deltas, &refs, token)?;
        let mut state = Delta::new();
        // hgs-lint: allow(no-panic-in-try, "sid is validated against ns by the caller and span.maps holds ns entries")
        let map = &span.maps[sid as usize];
        for (&did, rows) in dids.iter().zip(groups) {
            if did >= ELIST_BASE {
                for (k, v) in rows {
                    let Some(dk) = DeltaKey::decode(&k) else {
                        continue;
                    };
                    let el = self.decoded_elist(tsid, sid, did, dk.pid, &v)?;
                    for e in el.events().iter().take_while(|e| e.time <= t) {
                        apply_event_scoped(&mut state, &e.kind, |id| {
                            sid_of(id, ns) == sid && map.assign(id) == dk.pid
                        });
                    }
                }
            } else {
                for (k, v) in rows {
                    let Some(dk) = DeltaKey::decode(&k) else {
                        continue;
                    };
                    let d = self.decoded_delta(tsid, sid, did, dk.pid, &v)?;
                    state.sum_assign(&d);
                }
            }
        }
        Ok(state)
    }
}

fn touches(e: &Event, nid: NodeId) -> bool {
    let (a, b) = e.kind.touched();
    a == nid || b == Some(nid)
}

/// BFS over a materialized snapshot (used by Algorithm 3).
fn bfs_set(snap: &Delta, center: NodeId, k: usize) -> FxHashSet<NodeId> {
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    if snap.node(center).is_none() {
        return seen;
    }
    seen.insert(center);
    let mut frontier = vec![center];
    for _ in 0..k {
        let mut next = Vec::new();
        for id in frontier {
            if let Some(n) = snap.node(id) {
                for nbr in n.all_neighbors() {
                    if seen.insert(nbr) {
                        next.push(nbr);
                    }
                }
            }
        }
        frontier = next;
    }
    seen
}

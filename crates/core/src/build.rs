//! TGI construction — the paper's Index Manager (§4.4 *Construction
//! and Update*).
//!
//! Construction proceeds a timespan at a time:
//!
//! 1. the span's events are chunked every `l` events (timestamp
//!    groups never split), defining checkpoint times `c_0..c_{q-1}`;
//! 2. a partition map per horizontal partition is computed (hash for
//!    [`PartitionStrategy::Random`]; LDG+KL over the Ω-collapsed span
//!    graph for [`PartitionStrategy::Locality`]);
//! 3. the span is replayed: at each checkpoint the per-`sid`
//!    partitioned snapshot (leaf) is pushed into a progressive
//!    intersection-tree builder which stores the root and every
//!    `child − parent` derived delta, micro-partitioned by `pid`;
//! 4. each chunk's events are scoped per `sid`, sub-partitioned per
//!    `pid`, and stored as partitioned eventlists; version-chain
//!    entries are accumulated per touched node;
//! 5. under locality+replication, auxiliary 1-hop boundary deltas are
//!    stored per (leaf, `sid`, `pid`).
//!
//! Updates append in batches (`Tgi::append_events`), equivalent to the
//! paper's "create an independent TGI with the new events and merge":
//! new timespans continue the id sequence, the previous last span's
//! open time range is closed, and version chains are extended.
//!
//! ## Write path
//!
//! Construction and ingest write at store speed: every encoded row of
//! a span (tree micro-deltas, eventlists, aux boundary deltas, version
//! chains, partition maps) is pushed into a [`WriteBuffer`] and
//! flushed through [`SimStore::put_batch`] — **one round trip per
//! machine per flush** instead of one per row
//! ([`TgiConfig::write_batch_rows`] bounds the buffer; `0` restores
//! the seed row-at-a-time reference path). When the handle's client
//! width ([`Tgi::set_clients`]) exceeds one, the span's heavy
//! per-`(sid, pid)` encoding runs as one work item per horizontal
//! partition on [`hgs_store::parallel::parallel_steal`]: each item
//! replays the span scoped to its `sid` (full-state replay when aux
//! boundary replication needs other partitions' node records), builds
//! its own intersection tree, buckets its eventlists and collects its
//! (disjoint) version-chain entries; outputs merge in deterministic
//! `sid` order. Both paths are property-tested to produce byte-for-byte
//! identical stores.

use std::sync::Arc;

use bytes::BytesMut;
use hgs_delta::codec::{encode_delta, encode_eventlist, put_varint};
use hgs_delta::columnar::{encode_columnar_delta, encode_columnar_eventlist};
use hgs_delta::{Delta, Event, Eventlist, FxHashMap, NodeId, StorageLayout, Time, TimeRange};
use hgs_partition::{
    CollapsedGraph, LocalityPartitioner, PartitionMap, Partitioner, RandomPartitioner,
};
use hgs_store::key::{chain_key, node_placement_token, term_key, term_token};
use hgs_store::parallel::{parallel_steal, steal_worker_count};
use hgs_store::{
    CostModel, DeltaKey, PlacementKey, PutRow, SimStore, StoreConfig, StoreError, Table,
    WriteBuffer,
};

use crate::config::{PartitionStrategy, TgiConfig};
use crate::meta::{
    encode_chain, sid_of, ChainEntry, TimespanMeta, TreeShape, AUX_BASE, ELIST_BASE,
};

/// Encode a delta row in the configured physical layout.
fn encode_delta_value(layout: StorageLayout, d: &Delta) -> bytes::Bytes {
    match layout {
        StorageLayout::RowWise => encode_delta(d),
        StorageLayout::Columnar => encode_columnar_delta(d),
    }
}

/// Encode an eventlist row in the configured physical layout.
fn encode_elist_value(layout: StorageLayout, el: &Eventlist) -> bytes::Bytes {
    match layout {
        StorageLayout::RowWise => encode_eventlist(el),
        StorageLayout::Columnar => encode_columnar_eventlist(el),
    }
}

/// Runtime state of one built timespan. Once pushed into a
/// [`TgiView`] the runtime is *sealed*: published views share it by
/// `Arc` and never mutate it (closing a span's open time range swaps
/// in a fresh `Arc`, leaving older views on the old one).
pub(crate) struct SpanRuntime {
    pub meta: TimespanMeta,
    /// Partition map per horizontal partition (shared between the
    /// open-ended and the closed incarnation of the same span).
    pub maps: Arc<Vec<PartitionMap>>,
}

/// An immutable, cheaply-clonable snapshot of the index's sealed
/// read state: configuration, store handle, per-span metadata and
/// partition maps, and the summary counters the query planner needs.
///
/// Every read path lives on `TgiView` (the owning [`Tgi`] handle
/// `Deref`s to its current view, so `tgi.snapshot(t)` keeps working).
/// A clone shares the spans, the store and the read cache by `Arc` —
/// this is what [`TgiService`](crate::service::TgiService) publishes
/// as the watermark: readers pin one clone and keep answering from
/// that sealed prefix no matter what the writer does behind them.
#[derive(Clone)]
pub struct TgiView {
    pub(crate) cfg: TgiConfig,
    pub(crate) store: Arc<SimStore>,
    pub(crate) spans: Vec<Arc<SpanRuntime>>,
    pub(crate) end_time: Time,
    pub(crate) event_count: usize,
    /// Node/edge cardinality of the tail state at publication time
    /// (the query planner's k-hop strategy needs graph-shape summary
    /// numbers without holding the writer's mutable tail state).
    pub(crate) node_count: usize,
    pub(crate) edge_count: usize,
    pub(crate) cost: CostModel,
    pub(crate) clients: usize,
    /// Session-wide byte-budgeted sharded LRU read cache shared by
    /// every query path *and every published view* (index rows are
    /// write-once, so entries never go stale across watermarks); see
    /// [`crate::read_cache`].
    pub(crate) read_cache: Arc<crate::read_cache::ReadCache>,
    /// Monotonic publication counter: bumped once per successful
    /// append. [`TgiService`](crate::service::TgiService) uses it as
    /// the watermark readers pin.
    pub(crate) epoch: u64,
}

/// The Temporal Graph Index handle.
///
/// Owns the current sealed read state (a [`TgiView`]) plus the
/// writer-only append state: the running tail used to normalize and
/// replay further batches, and the poison flag. `Deref`s to the view,
/// so every query method is callable directly on the handle.
pub struct Tgi {
    pub(crate) view: TgiView,
    pub(crate) tail_state: Delta,
    /// Set when an append failed partway (see
    /// [`Tgi::try_append_events`]); further appends are refused.
    pub(crate) poisoned: bool,
}

impl std::ops::Deref for Tgi {
    type Target = TgiView;
    fn deref(&self) -> &TgiView {
        &self.view
    }
}

impl std::ops::DerefMut for Tgi {
    fn deref_mut(&mut self) -> &mut TgiView {
        &mut self.view
    }
}

/// Errors from the fallible build path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A store write reached zero replicas.
    Store(StoreError),
    /// A previous `try_append_events` failed partway: some of that
    /// batch's rows and span-metadata updates are persisted and the
    /// in-memory tail state has advanced, so retrying the batch on
    /// this handle would double-apply events. Discard the handle and
    /// rebuild (or [`Tgi::open`](crate::persist) a fresh one from the
    /// store once the cluster is healthy).
    Poisoned,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Store(e) => write!(f, "index write failed: {e}"),
            BuildError::Poisoned => write!(
                f,
                "index poisoned by an earlier failed append; discard this handle and rebuild"
            ),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Store(e) => Some(e),
            BuildError::Poisoned => None,
        }
    }
}

impl From<StoreError> for BuildError {
    fn from(e: StoreError) -> BuildError {
        BuildError::Store(e)
    }
}

/// Panic with context when a build against a degraded cluster reaches
/// an infallible API.
fn unwrap_write<T>(r: Result<T, BuildError>) -> T {
    r.unwrap_or_else(|e| {
        // hgs-lint: allow(no-panic-in-try, "documented panic bridge of the infallible build API; try_append_events surfaces the error")
        panic!("TGI build failed ({e}); use the try_* builder to handle write failures")
    })
}

impl Tgi {
    /// Build an index over `events` (chronologically sorted) on a
    /// fresh simulated cluster. Panics if any index write reaches no
    /// replica; see [`Tgi::try_build`].
    pub fn build(cfg: TgiConfig, store_cfg: StoreConfig, events: &[Event]) -> Tgi {
        unwrap_write(Tgi::try_build(cfg, store_cfg, events))
    }

    /// Fallible [`Tgi::build`]: errors with
    /// [`StoreError::Unavailable`] (wrapped in [`BuildError::Store`])
    /// if any delta write is accepted by zero replicas — a build
    /// against a degraded cluster must not silently drop deltas.
    pub fn try_build(
        cfg: TgiConfig,
        store_cfg: StoreConfig,
        events: &[Event],
    ) -> Result<Tgi, BuildError> {
        Tgi::try_build_on(cfg, Arc::new(SimStore::new(store_cfg)), events)
    }

    /// Build on an existing store (lets several indexes share a
    /// cluster in experiments). Panics on write failure; see
    /// [`Tgi::try_build_on`].
    pub fn build_on(cfg: TgiConfig, store: Arc<SimStore>, events: &[Event]) -> Tgi {
        unwrap_write(Tgi::try_build_on(cfg, store, events))
    }

    /// Fallible [`Tgi::build_on`].
    pub fn try_build_on(
        cfg: TgiConfig,
        store: Arc<SimStore>,
        events: &[Event],
    ) -> Result<Tgi, BuildError> {
        Tgi::try_build_on_c(cfg, store, events, 1)
    }

    /// Fallible [`Tgi::build`] with an explicit build parallelism `c`:
    /// span encoding fans out over `c` work-stealing clients (one work
    /// item per horizontal partition). Like the read-side `_c` query
    /// variants, `c` is taken as-is — production callers should prefer
    /// [`Tgi::set_clients`], which clamps to the host's parallelism.
    pub fn try_build_c(
        cfg: TgiConfig,
        store_cfg: StoreConfig,
        events: &[Event],
        c: usize,
    ) -> Result<Tgi, BuildError> {
        Tgi::try_build_on_c(cfg, Arc::new(SimStore::new(store_cfg)), events, c)
    }

    /// Fallible [`Tgi::build_on`] with an explicit build parallelism
    /// `c` (see [`Tgi::try_build_c`]). The returned handle keeps `c`
    /// as its client width for queries and further appends.
    pub fn try_build_on_c(
        cfg: TgiConfig,
        store: Arc<SimStore>,
        events: &[Event],
        c: usize,
    ) -> Result<Tgi, BuildError> {
        cfg.validate();
        // Runtime knob: every read/write the index issues from here on
        // retries under this policy.
        store.set_retry_policy(cfg.retry);
        let mut tgi = Tgi {
            view: TgiView {
                cfg,
                store,
                spans: Vec::new(),
                end_time: 0,
                event_count: 0,
                node_count: 0,
                edge_count: 0,
                cost: CostModel::default(),
                clients: c.max(1),
                read_cache: Arc::new(crate::read_cache::ReadCache::with_shards(
                    cfg.read_cache_bytes,
                    cfg.read_cache_shards,
                )),
                epoch: 0,
            },
            tail_state: Delta::new(),
            poisoned: false,
        };
        tgi.try_append_events(events)?;
        Ok(tgi)
    }

    /// Append a batch of events. Events must not precede the current
    /// end of history.
    ///
    /// The batch is normalized first ([`hgs_delta::normalize_events`]):
    /// `RemoveNode` events are expanded with explicit `RemoveEdge`
    /// events for their incident edges, so that partitioned eventlists
    /// and version chains reach every affected node. Normalization
    /// needs the edges *entering* the batch too, so the expansion runs
    /// against the current tail state.
    pub fn append_events(&mut self, events: &[Event]) {
        unwrap_write(self.try_append_events(events));
    }

    /// Fallible [`Tgi::append_events`]: surfaces any index write that
    /// reached zero replicas as [`StoreError::Unavailable`] (wrapped
    /// in [`BuildError::Store`]). Writes that reach only *some*
    /// replicas succeed with degraded durability and are counted in
    /// [`SimStore::partial_put_count`].
    ///
    /// An append is **not atomic**: on `Err` some of the batch's rows
    /// and metadata updates may already be persisted and the
    /// in-memory tail state may have advanced. The handle is then
    /// *poisoned* — every further append fails with
    /// [`BuildError::Poisoned`] (queries remain allowed; they reflect
    /// whatever was durably written). Recover by rebuilding, or by
    /// re-opening from the store on a healed cluster.
    pub fn try_append_events(&mut self, events: &[Event]) -> Result<(), BuildError> {
        if self.poisoned {
            return Err(BuildError::Poisoned);
        }
        let events = &self.normalize_batch(events)[..];
        if events.is_empty() {
            if self.view.spans.is_empty() {
                // An index over an empty history still answers queries
                // (with empty results): materialize one empty span.
                self.poisoned = true;
                self.build_span(&[], TimeRange::new(0, Time::MAX))?;
                self.poisoned = false;
                self.view.epoch += 1;
            }
            return Ok(());
        }
        assert!(
            // hgs-lint: allow(no-panic-in-try, "caller-contract precondition; windows(2) always yields 2-element slices")
            events.windows(2).all(|w| w[0].time <= w[1].time),
            "events must be chronologically sorted"
        );
        assert!(
            // hgs-lint: allow(no-panic-in-try, "caller-contract precondition; the empty-batch early return above guarantees events[0] exists")
            events[0].time >= self.end_time,
            "batch starts at {} before index end {}",
            // hgs-lint: allow(no-panic-in-try, "same non-empty guarantee as the precondition assert above")
            events[0].time,
            self.end_time
        );

        // Everything past this point mutates persisted and in-memory
        // state; stay poisoned unless the whole batch lands.
        self.poisoned = true;
        // Close the previous open-ended span at the batch start. The
        // closed incarnation is a *fresh* `Arc` (sharing the maps):
        // views published before this append keep the open-ended span
        // runtime and stay byte-identical at their pinned watermark.
        let mut start = if let Some(last) = self.view.spans.last_mut() {
            // hgs-lint: allow(no-panic-in-try, "the empty-batch early return above guarantees events[0] exists")
            let cut = last.meta.range.start.max(events[0].time);
            let mut meta = last.meta.clone();
            meta.range = TimeRange::new(meta.range.start, cut);
            *last = Arc::new(SpanRuntime {
                meta,
                maps: Arc::clone(&last.maps),
            });
            self.persist_meta(self.view.spans.len() - 1)?;
            cut
        } else {
            0
        };

        let spans = hgs_partition::plan_timespans(events, self.cfg.events_per_timespan);
        let n = spans.len();
        for (i, sp) in spans.into_iter().enumerate() {
            let range_end = if i + 1 == n { Time::MAX } else { sp.range.end };
            let range = TimeRange::new(start, range_end);
            // hgs-lint: allow(no-panic-in-try, "span event ranges are produced by split_spans from this same events slice")
            self.build_span(&events[sp.ev_start..sp.ev_end], range)?;
            start = range_end;
        }
        self.view.end_time = events
            .last()
            .map(|e| e.time + 1)
            .unwrap_or(self.view.end_time);
        self.view.event_count += events.len();
        self.persist_graph_meta()?;
        self.view.node_count = self.tail_state.cardinality();
        self.view.edge_count = self.tail_state.edge_count();
        self.view.epoch += 1;
        self.poisoned = false;
        Ok(())
    }

    /// Normalize a batch against the current tail state: seed the
    /// expansion with synthetic edge state from `tail_state`, then
    /// normalize the batch alone.
    fn normalize_batch(&self, events: &[Event]) -> Vec<Event> {
        // Prefix the batch with the live adjacency as AddEdge events at
        // an irrelevant time, normalize, then drop the prefix.
        let state = &self.tail_state;
        let mut seeded: Vec<Event> = Vec::with_capacity(state.cardinality() + events.len());
        let mut prefix = 0usize;
        for n in state.iter() {
            for e in &n.edges {
                if n.id <= e.nbr {
                    seeded.push(Event::new(
                        0,
                        hgs_delta::EventKind::AddEdge {
                            src: n.id,
                            dst: e.nbr,
                            weight: e.weight,
                            directed: false,
                        },
                    ));
                    prefix += 1;
                }
            }
        }
        seeded.extend(events.iter().cloned());
        let mut out = hgs_delta::normalize_events(&seeded);
        out.drain(..prefix);
        out
    }

    // ------------------------------------------------------------------
    // writer-side accessors (need the append state)
    // ------------------------------------------------------------------

    /// Whether an earlier append failed partway, refusing further
    /// appends (see [`Tgi::try_append_events`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The current (latest) graph state.
    pub fn current_state(&self) -> &Delta {
        &self.tail_state
    }

    /// A clone of the current sealed read state — what
    /// [`TgiService`](crate::service::TgiService) publishes as the
    /// watermark after each successful append.
    pub fn view(&self) -> TgiView {
        self.view.clone()
    }

    /// Default number of parallel clients used by queries and by the
    /// write path's span encoding (`append_events`), **clamped to the
    /// host's available parallelism**: on a small box an
    /// over-provisioned `c` only adds thread spawn/teardown overhead
    /// (the cost model, not wall-clock, answers "what would a bigger
    /// cluster do"). Explicit-`c` calls (`snapshots_c`,
    /// `try_build_on_c`) and [`Tgi::set_clients_forced`] bypass the
    /// clamp.
    pub fn set_clients(&mut self, c: usize) {
        self.view.clients = clamp_clients(c);
    }

    /// [`Tgi::set_clients`] without the host-parallelism clamp — the
    /// escape hatch for tests and benches that must exercise real
    /// thread interleavings on boxes with fewer cores than `c`.
    pub fn set_clients_forced(&mut self, c: usize) {
        self.view.clients = c.max(1);
    }

    /// Latency model used for `modeled_secs` in fetch reports.
    pub fn set_cost_model(&mut self, m: CostModel) {
        self.view.cost = m;
    }

    // ------------------------------------------------------------------
    // span construction
    // ------------------------------------------------------------------

    fn build_span(&mut self, events: &[Event], range: TimeRange) -> Result<(), StoreError> {
        let store = Arc::clone(&self.store);
        let mut buf = WriteBuffer::new(&store, self.cfg.write_batch_rows);
        let result = self.build_span_buffered(events, range, &mut buf);
        if result.is_err() {
            // The build already failed; pending rows would only trip
            // the buffer's lost-write drop guard.
            buf.abandon();
        }
        result
    }

    fn build_span_buffered(
        &mut self,
        events: &[Event],
        range: TimeRange,
        buf: &mut WriteBuffer<'_>,
    ) -> Result<(), StoreError> {
        let cfg = self.cfg;
        let tsid = self.spans.len() as u32;
        let ns = cfg.horizontal_partitions;

        // 1. Chunk the span's events every `l`, snapping timestamp
        // groups; checkpoint c_j = state before chunk j.
        let chunk_bounds = chunk_events(events, cfg.eventlist_size);
        let q = chunk_bounds.len().max(1);
        let mut checkpoints: Vec<Time> = Vec::with_capacity(q);
        checkpoints.push(range.start);
        for &(s, _) in chunk_bounds.iter().skip(1) {
            checkpoints.push(events[s].time);
        }
        let shape = TreeShape::new(q, cfg.arity.min(q.max(2)));

        // 2. Partition maps per sid.
        let maps = self.compute_maps(events, range, ns);
        let pid_counts: Vec<u32> = maps.iter().map(|m| m.parts()).collect();
        let replicate = matches!(
            cfg.strategy,
            PartitionStrategy::Locality {
                replicate_boundary: true
            }
        );

        // 3-5. Replay the span, emitting leaves / eventlists / aux /
        // chain entries. The seed reference mode (`write_batch_rows ==
        // 0`) always runs the fused single pass — the faithful
        // row-at-a-time baseline. The batched path runs the per-sid
        // item encode even at width 1 (inline, no threads): scoped
        // replay clones each checkpoint's state once instead of the
        // fused pass's partition-then-clone twice, which alone roughly
        // halves build time. Exception: aux boundary replication at
        // width 1 stays fused, since per-sid items must then replay
        // the *full* state each (ns× the work) to see neighbor
        // records. All paths produce identical rows (property-tested).
        let workers = steal_worker_count(self.clients, ns as usize);
        let seed_mode = cfg.write_batch_rows == 0;
        // Secondary-index rows are collected from the pre-span tail
        // state plus the span's events — one in-memory pass, identical
        // for the fused and parallel encode paths (which advance the
        // tail state below), pushed into the same buffered flush.
        let index_rows = cfg.secondary_indexes.then(|| {
            crate::attr_index::collect_span_index_rows(&self.tail_state, events, range.start)
        });
        let mut chains: FxHashMap<NodeId, Vec<ChainEntry>> = FxHashMap::default();
        if seed_mode || (replicate && workers <= 1) {
            self.encode_span_fused(
                events,
                &chunk_bounds,
                q,
                &shape,
                &maps,
                tsid,
                replicate,
                buf,
                &mut chains,
            )?;
        } else {
            self.encode_span_parallel(
                events,
                &chunk_bounds,
                q,
                &shape,
                &maps,
                tsid,
                replicate,
                buf,
                &mut chains,
            )?;
        }

        // Version chains: one append-only chain-delta row per touched
        // node, keyed `(nid, tsid)`. No read-modify-write: the row is
        // fresh by construction (each span has a distinct `tsid`), so
        // extending a chain never rereads or rewrites earlier rows —
        // a mid-write failure leaves old chains fully intact and at
        // worst omits whole per-span segments, never half of one.
        // Query-side, a prefix scan by `nid` concatenates the segments
        // in `tsid` (chronological) order.
        if cfg.version_chains {
            for (nid, mut entries) in chains {
                entries.sort_by_key(|e| e.time);
                buf.push(
                    Table::Versions,
                    chain_key(nid, tsid).to_vec(),
                    node_placement_token(nid),
                    encode_chain(&entries),
                )?;
            }
        }

        // Secondary temporal indexes: one self-contained change-point
        // row per (term, span), batched with everything else — zero
        // extra round trips per span.
        if let Some(rows) = index_rows {
            for (term, blob) in rows.value_rows {
                buf.push(
                    Table::AttrIndex,
                    term_key(hgs_delta::TERM_KIND_VALUE, &term, tsid),
                    term_token(hgs_delta::TERM_KIND_VALUE, &term),
                    blob,
                )?;
            }
            for (term, blob) in rows.key_rows {
                buf.push(
                    Table::AttrIndex,
                    term_key(hgs_delta::TERM_KIND_KEY, &term, tsid),
                    term_token(hgs_delta::TERM_KIND_KEY, &term),
                    blob,
                )?;
            }
        }

        // Persist locality partition maps for reconstructability.
        if matches!(cfg.strategy, PartitionStrategy::Locality { .. }) {
            for (sid, map) in maps.iter().enumerate() {
                let blob = encode_partition_map(map, &self.tail_state, ns, sid as u32);
                let key = mp_key(tsid, sid as u32);
                buf.push(
                    Table::Micropartitions,
                    key.to_vec(),
                    PlacementKey::new(tsid, sid as u32).token(),
                    blob,
                )?;
            }
        }

        // Ship the span's remaining rows before the metadata row that
        // makes them reachable.
        buf.flush()?;

        let meta = TimespanMeta {
            tsid,
            range,
            checkpoints,
            shape,
            pid_counts,
            has_aux: replicate,
        };
        self.view.spans.push(Arc::new(SpanRuntime {
            meta,
            maps: Arc::new(maps),
        }));
        self.persist_meta(self.view.spans.len() - 1)
    }

    /// Seed-structure span encoding: one fused pass that replays the
    /// span once, pushing each sid's leaf into its accumulator and
    /// bucketing each chunk's eventlists for all sids together. Rows
    /// go to the write buffer (which may flush mid-span and surface a
    /// store error).
    #[allow(clippy::too_many_arguments)]
    fn encode_span_fused(
        &mut self,
        events: &[Event],
        chunk_bounds: &[(usize, usize)],
        q: usize,
        shape: &TreeShape,
        maps: &[PartitionMap],
        tsid: u32,
        replicate: bool,
        buf: &mut WriteBuffer<'_>,
        chains: &mut FxHashMap<NodeId, Vec<ChainEntry>>,
    ) -> Result<(), StoreError> {
        let cfg = self.cfg;
        let ns = cfg.horizontal_partitions;
        let mut accs: Vec<TreeAccumulator> = (0..ns)
            .map(|_| TreeAccumulator::new(shape.clone()))
            .collect();
        for j in 0..q {
            // Leaf j: per-sid partitioned snapshot of the current state.
            let parts = partition_state(&self.tail_state, ns);
            for sid in 0..ns {
                if replicate {
                    let mut emit = |row: PutRow| buf.push_row(row);
                    emit_aux(
                        cfg.layout,
                        tsid,
                        sid,
                        j as u64,
                        &self.tail_state,
                        maps,
                        ns,
                        &mut emit,
                    )?;
                }
                let map = &maps[sid as usize];
                let mut io: Result<(), StoreError> = Ok(());
                accs[sid as usize].push_leaf(
                    parts[sid as usize].clone(),
                    &mut |level, idx, delta| {
                        if io.is_ok() {
                            let mut emit = |row: PutRow| buf.push_row(row);
                            io = emit_micro(
                                cfg.layout,
                                tsid,
                                sid,
                                shape.did(level, idx),
                                delta,
                                map,
                                &mut emit,
                            );
                        }
                    },
                );
                io?;
            }

            // Chunk j (if events exist): emit partitioned eventlists,
            // collect chain entries, advance the state.
            if let Some(&(s, e)) = chunk_bounds.get(j) {
                let chunk = &events[s..e];
                let buckets = bucket_chunk(
                    chunk,
                    maps,
                    ns,
                    None,
                    tsid,
                    j as u32,
                    cfg.version_chains,
                    chains,
                );
                let mut emit = |row: PutRow| buf.push_row(row);
                emit_eventlist_rows(cfg.layout, tsid, j as u32, buckets, &mut emit)?;
                for ev in chunk {
                    self.tail_state.apply_event(&ev.kind);
                }
            }
        }
        // Finalize trees (emit roots and remaining derived deltas).
        for sid in 0..ns {
            let map = &maps[sid as usize];
            let mut io: Result<(), StoreError> = Ok(());
            accs[sid as usize].finalize(&mut |level, idx, delta| {
                if io.is_ok() {
                    let mut emit = |row: PutRow| buf.push_row(row);
                    io = emit_micro(
                        cfg.layout,
                        tsid,
                        sid,
                        shape.did(level, idx),
                        delta,
                        map,
                        &mut emit,
                    );
                }
            });
            io?;
        }
        Ok(())
    }

    /// Parallel span encoding: one work item per horizontal partition
    /// on the work-stealing queue ([`parallel_steal`], fan-out clamped
    /// to `min(clients, ns)`). Each item replays the span restricted
    /// to its own `sid` (or over the full state when aux boundary
    /// replication needs other partitions' node records), building its
    /// intersection tree, eventlist buckets and chain entries
    /// independently; encoded rows are buffered in-memory per item and
    /// merged into the write buffer in deterministic `sid` order. The
    /// driver advances the tail state by the same replay sequence the
    /// fused path applies, keeping the two paths byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn encode_span_parallel(
        &mut self,
        events: &[Event],
        chunk_bounds: &[(usize, usize)],
        q: usize,
        shape: &TreeShape,
        maps: &[PartitionMap],
        tsid: u32,
        replicate: bool,
        buf: &mut WriteBuffer<'_>,
        chains: &mut FxHashMap<NodeId, Vec<ChainEntry>>,
    ) -> Result<(), StoreError> {
        let cfg = self.cfg;
        let ns = cfg.horizontal_partitions;
        // Per-item starting state: the sid's own partition for scoped
        // replay, or a full-state clone when aux rows must look up
        // out-of-partition neighbor records.
        let items: Vec<(u32, Delta)> = if replicate {
            (0..ns).map(|sid| (sid, self.tail_state.clone())).collect()
        } else {
            partition_state(&self.tail_state, ns)
                .into_iter()
                .enumerate()
                .map(|(sid, part)| (sid as u32, part))
                .collect()
        };
        let outputs: Vec<SidSpanOutput> = parallel_steal(items, self.clients, |(sid, state)| {
            encode_sid_span(SidSpanJob {
                sid,
                state,
                events,
                chunk_bounds,
                q,
                shape,
                maps,
                tsid,
                ns,
                replicate,
                version_chains: cfg.version_chains,
                layout: cfg.layout,
            })
        });
        // Advance the tail state with the same apply sequence as the
        // fused path (identical internal ordering keeps later
        // normalization deterministic across handles).
        for ev in events {
            self.tail_state.apply_event(&ev.kind);
        }
        for out in outputs {
            for row in out.rows {
                buf.push_row(row)?;
            }
            for (nid, entries) in out.chains {
                let prev = chains.insert(nid, entries);
                debug_assert!(prev.is_none(), "chain entries are disjoint across sids");
            }
        }
        Ok(())
    }

    fn compute_maps(&self, events: &[Event], range: TimeRange, ns: u32) -> Vec<PartitionMap> {
        match self.cfg.strategy {
            PartitionStrategy::Random => {
                // Estimate end-of-span node count to size the pid space.
                let adds = events
                    .iter()
                    .filter(|e| matches!(e.kind, hgs_delta::EventKind::AddNode { .. }))
                    .count();
                let est_total = self.tail_state.cardinality() + adds;
                let per_sid = (est_total as f64 / ns as f64).ceil() as usize;
                let parts = per_sid.div_ceil(self.cfg.partition_size).max(1) as u32;
                (0..ns).map(|_| PartitionMap::random(parts)).collect()
            }
            PartitionStrategy::Locality { .. } => {
                let collapsed = CollapsedGraph::collapse(
                    &self.tail_state,
                    events,
                    range,
                    self.cfg.omega,
                    self.cfg.weighting,
                );
                let partitioner = LocalityPartitioner::default();
                (0..ns)
                    .map(|sid| {
                        let sub = collapsed.induced(|id| sid_of(id, ns) == sid);
                        let parts = sub.len().div_ceil(self.cfg.partition_size).max(1) as u32;
                        if parts == 1 {
                            RandomPartitioner.partition(&sub, 1)
                        } else {
                            partitioner.partition(&sub, parts)
                        }
                    })
                    .collect()
            }
        }
    }

    fn persist_meta(&self, span_idx: usize) -> Result<(), StoreError> {
        let meta = &self.spans[span_idx].meta;
        let key = meta.tsid.to_be_bytes();
        put_checked(
            &self.store,
            Table::Timespans,
            &key,
            hgs_delta::hash::hash_u64(meta.tsid as u64),
            meta.encode(),
        )
    }

    fn persist_graph_meta(&self) -> Result<(), StoreError> {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, self.spans.len() as u64);
        put_varint(&mut buf, self.end_time);
        put_varint(&mut buf, self.event_count as u64);
        put_checked(&self.store, Table::Graph, b"meta", 0, buf.freeze())?;
        put_checked(
            &self.store,
            Table::Graph,
            b"config",
            0,
            crate::persist::encode_config(&self.cfg),
        )
    }
}

impl TgiView {
    // ------------------------------------------------------------------
    // read-side accessors (sealed state only; also reachable through
    // the owning `Tgi` handle via `Deref`)
    // ------------------------------------------------------------------

    /// Index configuration.
    pub fn config(&self) -> &TgiConfig {
        &self.cfg
    }

    /// Backing store.
    pub fn store(&self) -> &Arc<SimStore> {
        &self.store
    }

    /// Number of built timespans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// One past the last indexed event time.
    pub fn end_time(&self) -> Time {
        self.end_time
    }

    /// Total events indexed.
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// Total stored bytes (replicas included) — the index-size column
    /// of Table 1.
    pub fn storage_bytes(&self) -> usize {
        self.store.stored_bytes()
    }

    /// The view's client width (inherited from the handle that
    /// published it).
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Publication counter of this view: the watermark a pinned
    /// reader is answering at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn span_index_for(&self, t: Time) -> usize {
        let i = self.spans.partition_point(|s| s.meta.range.end <= t);
        i.min(self.spans.len() - 1)
    }

    pub(crate) fn span_for(&self, t: Time) -> &SpanRuntime {
        &self.spans[self.span_index_for(t)]
    }
}

/// Write a row, surfacing a zero-replica write as
/// [`StoreError::Unavailable`]: a put the cluster did not accept
/// anywhere must fail the build, not silently drop a delta.
fn put_checked(
    store: &SimStore,
    table: Table,
    key: &[u8],
    token: u64,
    value: bytes::Bytes,
) -> Result<(), StoreError> {
    // hgs-lint: allow(batched-store-discipline, "put_checked IS the workspace's single-row write primitive; batching happens upstream in WriteBuffer")
    if store.put(table, key, token, value) == 0 {
        return Err(StoreError::Unavailable { table });
    }
    Ok(())
}

/// Clamp a requested client width to the host's available
/// parallelism (never below 1).
pub(crate) fn clamp_clients(c: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    c.max(1).min(cores)
}

/// Everything one per-`sid` span-encoding work item needs, borrowed
/// from the driver (the per-sid starting `state` is owned).
struct SidSpanJob<'a> {
    sid: u32,
    state: Delta,
    events: &'a [Event],
    chunk_bounds: &'a [(usize, usize)],
    q: usize,
    shape: &'a TreeShape,
    maps: &'a [PartitionMap],
    tsid: u32,
    ns: u32,
    replicate: bool,
    version_chains: bool,
    layout: StorageLayout,
}

/// One work item's encoded output: rows in deterministic emit order,
/// plus this sid's (globally disjoint) version-chain entries.
struct SidSpanOutput {
    rows: Vec<PutRow>,
    chains: FxHashMap<NodeId, Vec<ChainEntry>>,
}

/// Encode one horizontal partition's share of a span: replay the
/// span's events — scoped to the sid's node set, or over the full
/// state when aux replication needs out-of-partition neighbor records
/// — pushing each checkpoint's partitioned snapshot into this sid's
/// intersection tree and bucketing each chunk's eventlists. Purely
/// in-memory: emitted rows are collected, never written, so work items
/// cannot observe store failures (the driver's buffered flush does).
fn encode_sid_span(job: SidSpanJob<'_>) -> SidSpanOutput {
    let SidSpanJob {
        sid,
        mut state,
        events,
        chunk_bounds,
        q,
        shape,
        maps,
        tsid,
        ns,
        replicate,
        version_chains,
        layout,
    } = job;
    let map = &maps[sid as usize];
    let mut rows: Vec<PutRow> = Vec::new();
    let mut chains: FxHashMap<NodeId, Vec<ChainEntry>> = FxHashMap::default();
    let mut acc = TreeAccumulator::new(shape.clone());
    for j in 0..q {
        let leaf = if replicate {
            // Full-state replay: extract this sid's partition for the
            // leaf and emit its aux boundary rows from the full state.
            let mut emit = |row: PutRow| -> Result<(), StoreError> {
                rows.push(row);
                Ok(())
            };
            emit_aux(layout, tsid, sid, j as u64, &state, maps, ns, &mut emit)
                // hgs-lint: allow(no-panic-in-try, "emit closure appends to an in-memory Vec; the Result is only the shared emit-fn signature")
                .expect("in-memory emit cannot fail");
            let mut part = Delta::new();
            for n in state.iter() {
                if sid_of(n.id, ns) == sid {
                    part.insert(n.clone());
                }
            }
            part
        } else {
            state.clone()
        };
        acc.push_leaf(leaf, &mut |level, idx, delta| {
            let mut emit = |row: PutRow| -> Result<(), StoreError> {
                rows.push(row);
                Ok(())
            };
            emit_micro(
                layout,
                tsid,
                sid,
                shape.did(level, idx),
                delta,
                map,
                &mut emit,
            )
            // hgs-lint: allow(no-panic-in-try, "emit closure appends to an in-memory Vec; the Result is only the shared emit-fn signature")
            .expect("in-memory emit cannot fail");
        });
        if let Some(&(s, e)) = chunk_bounds.get(j) {
            let chunk = &events[s..e];
            let buckets = bucket_chunk(
                chunk,
                maps,
                ns,
                Some(sid),
                tsid,
                j as u32,
                version_chains,
                &mut chains,
            );
            let mut emit = |row: PutRow| -> Result<(), StoreError> {
                rows.push(row);
                Ok(())
            };
            emit_eventlist_rows(layout, tsid, j as u32, buckets, &mut emit)
                // hgs-lint: allow(no-panic-in-try, "emit closure appends to an in-memory Vec; the Result is only the shared emit-fn signature")
                .expect("in-memory emit cannot fail");
            if replicate {
                for ev in chunk {
                    state.apply_event(&ev.kind);
                }
            } else {
                for ev in chunk {
                    crate::scope::apply_event_scoped(&mut state, &ev.kind, |id| {
                        sid_of(id, ns) == sid
                    });
                }
            }
        }
    }
    acc.finalize(&mut |level, idx, delta| {
        let mut emit = |row: PutRow| -> Result<(), StoreError> {
            rows.push(row);
            Ok(())
        };
        emit_micro(
            layout,
            tsid,
            sid,
            shape.did(level, idx),
            delta,
            map,
            &mut emit,
        )
        // hgs-lint: allow(no-panic-in-try, "emit closure appends to an in-memory Vec; the Result is only the shared emit-fn signature")
        .expect("in-memory emit cannot fail");
    });
    SidSpanOutput { rows, chains }
}

/// Bucket one chunk's events into per-`(sid, pid)` eventlists and
/// collect version-chain entries, optionally restricted to one `sid`
/// (the per-sid buckets and chain maps of all sids partition the
/// unrestricted result: an event lands at each endpoint's own sid, and
/// a node's chain entries are generated only under its own sid's
/// filter). Each distinct `(sid, pid)` gets exactly one copy of each
/// event *instance* — comparing bucket keys, not event values, keeps
/// genuinely duplicated events (which raw traces do contain) intact.
#[allow(clippy::too_many_arguments)]
fn bucket_chunk(
    chunk: &[Event],
    maps: &[PartitionMap],
    ns: u32,
    only_sid: Option<u32>,
    tsid: u32,
    chunk_idx: u32,
    version_chains: bool,
    chains: &mut FxHashMap<NodeId, Vec<ChainEntry>>,
) -> FxHashMap<(u32, u32), Vec<Event>> {
    let want = |sid: u32| only_sid.is_none_or(|s| s == sid);
    let mut buckets: FxHashMap<(u32, u32), Vec<Event>> = FxHashMap::default();
    for ev in chunk {
        let (a, b) = ev.kind.touched();
        let ta = {
            let sid = sid_of(a, ns);
            (sid, maps[sid as usize].assign(a))
        };
        let tb = b.filter(|&b| b != a).map(|b| {
            let sid = sid_of(b, ns);
            (sid, maps[sid as usize].assign(b))
        });
        if want(ta.0) {
            buckets.entry(ta).or_default().push(ev.clone());
        }
        if let Some(tb) = tb {
            if tb != ta && want(tb.0) {
                buckets.entry(tb).or_default().push(ev.clone());
            }
        }
        if version_chains {
            let mut chain_push = |nid: NodeId, pid: u32| {
                let chain = chains.entry(nid).or_default();
                if chain.last().map(|e| (e.tsid, e.chunk, e.pid)) != Some((tsid, chunk_idx, pid)) {
                    chain.push(ChainEntry {
                        time: ev.time,
                        tsid,
                        chunk: chunk_idx,
                        pid,
                    });
                }
            };
            if want(ta.0) {
                chain_push(a, ta.1);
            }
            if let Some(b) = b {
                if b != a {
                    let sid = sid_of(b, ns);
                    if want(sid) {
                        chain_push(b, maps[sid as usize].assign(b));
                    }
                }
            }
        }
    }
    buckets
}

/// Encode bucketed eventlists as store rows.
fn emit_eventlist_rows(
    layout: StorageLayout,
    tsid: u32,
    chunk_idx: u32,
    buckets: FxHashMap<(u32, u32), Vec<Event>>,
    emit: &mut impl FnMut(PutRow) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    for ((sid, pid), evs) in buckets {
        let el = Eventlist::from_sorted(evs);
        let key = DeltaKey::new(tsid, sid, ELIST_BASE + chunk_idx as u64, pid);
        emit(PutRow::new(
            Table::Deltas,
            key.encode().to_vec(),
            key.placement().token(),
            encode_elist_value(layout, &el),
        ))?;
    }
    Ok(())
}

/// Emit one sid's aux boundary rows for leaf `leaf`: for each `pid` of
/// this sid, the replicated states of out-of-partition 1-hop neighbors
/// (Fig. 5d). Needs the *full* graph state for neighbor lookups.
#[allow(clippy::too_many_arguments)]
fn emit_aux(
    layout: StorageLayout,
    tsid: u32,
    sid: u32,
    leaf: u64,
    state: &Delta,
    maps: &[PartitionMap],
    ns: u32,
    emit: &mut impl FnMut(PutRow) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let map = &maps[sid as usize];
    let mut aux: FxHashMap<u32, Delta> = FxHashMap::default();
    for n in state.iter() {
        if sid_of(n.id, ns) != sid {
            continue;
        }
        let pid = map.assign(n.id);
        for nbr in n.all_neighbors() {
            let same = sid_of(nbr, ns) == sid && map.assign(nbr) == pid;
            if !same {
                if let Some(nbr_state) = state.node(nbr) {
                    aux.entry(pid).or_default().insert(nbr_state.clone());
                }
            }
        }
    }
    for (pid, delta) in aux {
        let key = DeltaKey::new(tsid, sid, AUX_BASE + leaf, pid);
        emit(PutRow::new(
            Table::Deltas,
            key.encode().to_vec(),
            key.placement().token(),
            encode_delta_value(layout, &delta),
        ))?;
    }
    Ok(())
}

/// Chunk `events` into runs of ~`l`, never splitting a timestamp
/// group. Returns `(start, end)` index pairs.
fn chunk_events(events: &[Event], l: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < events.len() {
        let want = (start + l).min(events.len());
        let end = if want >= events.len() {
            events.len()
        } else {
            let t = events[want].time;
            let mut e = want;
            if events[want - 1].time == t {
                while e < events.len() && events[e].time == t {
                    e += 1;
                }
            }
            e
        };
        out.push((start, end));
        start = end;
    }
    out
}

/// Split a state into per-`sid` partitioned snapshots in one pass.
fn partition_state(state: &Delta, ns: u32) -> Vec<Delta> {
    let mut parts: Vec<Delta> = (0..ns).map(|_| Delta::new()).collect();
    for n in state.iter() {
        parts[sid_of(n.id, ns) as usize].insert(n.clone());
    }
    parts
}

/// Emit a delta micro-partitioned by `map`.
#[allow(clippy::too_many_arguments)]
fn emit_micro(
    layout: StorageLayout,
    tsid: u32,
    sid: u32,
    did: u64,
    delta: &Delta,
    map: &PartitionMap,
    emit: &mut impl FnMut(PutRow) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let mut buckets: FxHashMap<u32, Delta> = FxHashMap::default();
    for n in delta.iter() {
        buckets
            .entry(map.assign(n.id))
            .or_default()
            .insert(n.clone());
    }
    for (pid, d) in buckets {
        let key = DeltaKey::new(tsid, sid, did, pid);
        emit(PutRow::new(
            Table::Deltas,
            key.encode().to_vec(),
            key.placement().token(),
            encode_delta_value(layout, &d),
        ))?;
    }
    Ok(())
}

/// Key for a persisted partition map blob.
pub(crate) fn mp_key(tsid: u32, sid: u32) -> [u8; 8] {
    let mut k = [0u8; 8];
    k[0..4].copy_from_slice(&tsid.to_be_bytes());
    k[4..8].copy_from_slice(&sid.to_be_bytes());
    k
}

/// Serialize the explicit entries of a locality partition map for the
/// `Micropartitions` table (the paper's node -> micro-partition map).
fn encode_partition_map(map: &PartitionMap, state: &Delta, ns: u32, sid: u32) -> bytes::Bytes {
    let mut ids: Vec<NodeId> = state.ids().filter(|&id| sid_of(id, ns) == sid).collect();
    ids.sort_unstable();
    let mut buf = BytesMut::with_capacity(ids.len() * 3 + 8);
    put_varint(&mut buf, map.parts() as u64);
    put_varint(&mut buf, ids.len() as u64);
    let mut prev = 0u64;
    for id in ids {
        put_varint(&mut buf, id.wrapping_sub(prev));
        prev = id;
        put_varint(&mut buf, map.assign(id) as u64);
    }
    buf.freeze()
}

/// Progressive k-ary intersection-tree builder.
///
/// Leaves are pushed in order; whenever `arity` siblings are pending at
/// a level their parent (the intersection) is computed, each child's
/// derived delta (`child − parent`) is emitted, the children are
/// dropped, and the parent is pushed one level up. `finalize` reduces
/// partial groups and emits the root in full. Memory never exceeds
/// `arity × height` retained deltas.
struct TreeAccumulator {
    shape: TreeShape,
    /// Pending `(idx, delta)` children per level.
    pending: Vec<Vec<(usize, Delta)>>,
    next_leaf: usize,
}

impl TreeAccumulator {
    fn new(shape: TreeShape) -> TreeAccumulator {
        let levels = shape.level_sizes.len();
        TreeAccumulator {
            shape,
            pending: vec![Vec::new(); levels],
            next_leaf: 0,
        }
    }

    /// Push the next leaf; `emit(level, idx, delta)` is called for
    /// every stored delta that becomes final.
    fn push_leaf(&mut self, leaf: Delta, emit: &mut impl FnMut(usize, usize, &Delta)) {
        let idx = self.next_leaf;
        self.next_leaf += 1;
        debug_assert!(idx < self.shape.leaves);
        self.push(0, idx, leaf, emit);
    }

    fn push(
        &mut self,
        level: usize,
        idx: usize,
        delta: Delta,
        emit: &mut impl FnMut(usize, usize, &Delta),
    ) {
        if level == self.shape.height() {
            // This is the root: store it in full.
            emit(level, idx, &delta);
            return;
        }
        self.pending[level].push((idx, delta));
        if self.pending[level].len() == self.shape.arity {
            self.reduce_level(level, emit);
        }
    }

    fn reduce_level(&mut self, level: usize, emit: &mut impl FnMut(usize, usize, &Delta)) {
        let children = std::mem::take(&mut self.pending[level]);
        debug_assert!(!children.is_empty());
        let refs: Vec<&Delta> = children.iter().map(|(_, d)| d).collect();
        let parent = Delta::intersection_many(&refs);
        for (idx, child) in &children {
            let derived = child.difference(&parent);
            emit(level, *idx, &derived);
        }
        let parent_idx = children[0].0 / self.shape.arity;
        self.push(level + 1, parent_idx, parent, emit);
    }

    /// Reduce all partial groups bottom-up; emits the root.
    fn finalize(&mut self, emit: &mut impl FnMut(usize, usize, &Delta)) {
        for level in 0..self.shape.level_sizes.len() {
            if level < self.pending.len() && !self.pending[level].is_empty() {
                self.reduce_level(level, emit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::StaticNode;

    #[test]
    fn chunking_respects_l_and_timestamps() {
        let events: Vec<Event> = (0..10)
            .map(|i| Event::new(i / 2, hgs_delta::EventKind::AddNode { id: i }))
            .collect();
        // l=3 but timestamps come in pairs: chunk ends snap to even idx.
        let chunks = chunk_events(&events, 3);
        for &(s, e) in &chunks {
            assert!(e == events.len() || events[e - 1].time != events[e].time);
            assert!(e > s);
        }
        let covered: usize = chunks.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, events.len());
    }

    #[test]
    fn tree_accumulator_reconstructs_leaves() {
        // Five leaves, arity 2: reconstruct every leaf from emitted
        // deltas by summing along the path.
        let shape = TreeShape::new(5, 2);
        let mut emitted: FxHashMap<u64, Delta> = FxHashMap::default();
        let mut acc = TreeAccumulator::new(shape.clone());
        let mut leaves = Vec::new();
        for j in 0..5u64 {
            let mut d = Delta::new();
            // Shared node 0 (identical everywhere) + unique node j+1.
            d.insert(StaticNode::new(0));
            d.insert(StaticNode::new(j + 1));
            leaves.push(d.clone());
            let sh = shape.clone();
            acc.push_leaf(d, &mut |level, idx, delta| {
                emitted.insert(sh.did(level, idx), delta.clone());
            });
        }
        let sh = shape.clone();
        acc.finalize(&mut |level, idx, delta| {
            emitted.insert(sh.did(level, idx), delta.clone());
        });

        for (j, leaf) in leaves.iter().enumerate() {
            let mut rebuilt = Delta::new();
            for did in shape.path_to_leaf(j) {
                if let Some(d) = emitted.get(&did) {
                    rebuilt.sum_assign(d);
                }
            }
            assert_eq!(&rebuilt, leaf, "leaf {j}");
        }
    }

    #[test]
    fn tree_accumulator_root_holds_common_core() {
        let shape = TreeShape::new(4, 2);
        let mut emitted: FxHashMap<u64, Delta> = FxHashMap::default();
        let mut acc = TreeAccumulator::new(shape.clone());
        for j in 0..4u64 {
            let mut d = Delta::new();
            d.insert(StaticNode::new(42)); // identical in all leaves
            d.insert(StaticNode::new(100 + j));
            let sh = shape.clone();
            acc.push_leaf(d, &mut |l, i, delta| {
                emitted.insert(sh.did(l, i), delta.clone());
            });
        }
        let sh = shape.clone();
        acc.finalize(&mut |l, i, delta| {
            emitted.insert(sh.did(l, i), delta.clone());
        });
        let root = emitted.get(&0).expect("root emitted");
        assert!(root.contains(42), "common node lives in the root");
        assert_eq!(root.cardinality(), 1, "unique nodes are not in the root");
    }

    #[test]
    fn set_clients_clamps_to_host_parallelism() {
        let mut tgi = Tgi::build(TgiConfig::default(), StoreConfig::new(1, 1), &[]);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        tgi.set_clients(10_000);
        assert!(tgi.clients() <= cores, "clamped to available parallelism");
        tgi.set_clients(0);
        assert_eq!(tgi.clients(), 1, "never below one client");
        tgi.set_clients_forced(10_000);
        assert_eq!(tgi.clients(), 10_000, "escape hatch skips the clamp");
    }

    #[test]
    fn partition_state_unions_back() {
        let mut d = Delta::new();
        for i in 0..50u64 {
            d.apply_event(&hgs_delta::EventKind::AddNode { id: i });
        }
        let parts = partition_state(&d, 4);
        let mut u = Delta::new();
        for p in &parts {
            u.sum_assign(p);
        }
        assert_eq!(u, d);
        assert!(parts.iter().all(|p| p.cardinality() > 0));
    }
}

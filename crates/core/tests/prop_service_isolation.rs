//! Watermark isolation as a property: reader threads querying a live
//! [`TgiService`] — while a writer appends batches — must get answers
//! **byte-identical** to a quiesced from-scratch [`Tgi::build`] over
//! exactly the event prefix their pinned watermark denotes. Across
//! storage layouts and client widths, no interleaving may expose a
//! torn span, a shrunken graph, or a mixed-watermark answer.

use std::sync::Arc;

use hgs_core::{NodeHistory, Tgi, TgiConfig, TgiService};
use hgs_delta::{AttrValue, Delta, Event, EventKind, StorageLayout, TimeRange};
use hgs_store::{SimStore, StoreConfig};
use proptest::prelude::*;

const LABELS: [&str; 2] = ["Author", "Paper"];

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..24;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        3 => (0u64..24, 0u64..24).prop_map(|(src, dst)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed: false }
        }),
        1 => (0u64..24, 0u64..24).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        2 => (id, 0usize..2).prop_map(|(id, l)| EventKind::SetNodeAttr {
            id,
            key: hgs_core::LABEL_KEY.into(),
            value: AttrValue::Text(LABELS[l].into()),
        }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 20..200).prop_map(|kinds| {
        let mut t = 1u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_layout() -> impl Strategy<Value = StorageLayout> {
    prop_oneof![Just(StorageLayout::RowWise), Just(StorageLayout::Columnar)]
}

fn small_cfg(layout: StorageLayout) -> TgiConfig {
    TgiConfig {
        events_per_timespan: 60,
        eventlist_size: 16,
        partition_size: 8,
        horizontal_partitions: 2,
        layout,
        ..TgiConfig::default()
    }
}

/// Cut the history into an initial build plus up to two append
/// batches, with every cut advanced to a strict time boundary (an
/// append must start strictly after the indexed end).
fn boundaries(events: &[Event]) -> Vec<usize> {
    let mut cuts = Vec::new();
    for frac in [3usize, 2] {
        let mut cut = (events.len() / frac).max(1);
        while cut < events.len() && events[cut].time <= events[cut - 1].time {
            cut += 1;
        }
        if cut < events.len() && cuts.last() != Some(&cut) {
            cuts.push(cut);
        }
    }
    cuts.push(events.len());
    // hgs-lint: allow(sorted-dedup, "cuts are built in ascending index order: each boundary starts later and alignment only advances")
    cuts.dedup();
    cuts
}

/// Everything one pinned view answered, replayed later against the
/// quiesced oracle of the same watermark.
struct Observation {
    epoch: u64,
    snapshot: Delta,
    histories: Vec<(u64, NodeHistory)>,
    khop: Delta,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent pinned reads equal the quiesced rebuild at the
    /// pinned watermark, for every layout and client width.
    #[test]
    fn pinned_reads_equal_quiesced_rebuild(
        events in arb_history(),
        layout in arb_layout(),
        c in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let cuts = boundaries(&events);
        let initial = cuts[0];
        let mut handle = Tgi::try_build_on(
            small_cfg(layout),
            Arc::new(SimStore::new(StoreConfig::new(2, 1))),
            &events[..initial],
        )
        .expect("build");
        handle.set_clients_forced(c);
        let svc = TgiService::from_handle(handle);

        let observations: Vec<Observation> = std::thread::scope(|s| {
            let svc = &svc;
            let events = &events;
            let cuts = &cuts;
            let readers: Vec<_> = (0..2)
                .map(|r| {
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        let mut last_epoch = 0;
                        for i in 0..6 {
                            let view = svc.pin();
                            let epoch = view.epoch();
                            assert!(epoch >= last_epoch, "watermark went backwards");
                            last_epoch = epoch;
                            let t = view.end_time();
                            let range = TimeRange::new(0, t + 1);
                            let nids = [(r + i) as u64 % 24, (r + i + 7) as u64 % 24];
                            seen.push(Observation {
                                epoch,
                                snapshot: view.try_snapshot(t).expect("healthy"),
                                histories: nids
                                    .iter()
                                    .map(|&n| {
                                        (n, view.try_node_history(n, range).expect("healthy"))
                                    })
                                    .collect(),
                                khop: view.try_khop(nids[0], t, 2).expect("healthy"),
                            });
                            std::thread::yield_now();
                        }
                        seen
                    })
                })
                .collect();
            s.spawn(move || {
                for w in cuts.windows(2) {
                    svc.try_append_events(&events[w[0]..w[1]]).expect("append");
                }
            });
            readers
                .into_iter()
                .flat_map(|r| r.join().expect("reader panicked"))
                .collect()
        });

        // Epoch e was published after the initial build plus (e - 1)
        // appends: its sealed prefix ends at cuts[e - 1].
        let mut oracles: std::collections::BTreeMap<u64, Tgi> = std::collections::BTreeMap::new();
        for ob in &observations {
            let oracle = oracles.entry(ob.epoch).or_insert_with(|| {
                let prefix = if ob.epoch == 1 { initial } else { cuts[ob.epoch as usize - 1] };
                Tgi::try_build_on(
                    small_cfg(layout),
                    Arc::new(SimStore::new(StoreConfig::new(2, 1))),
                    &events[..prefix],
                )
                .expect("oracle build")
            });
            let t = oracle.end_time();
            prop_assert_eq!(
                &ob.snapshot,
                &oracle.try_snapshot(t).expect("oracle"),
                "snapshot at watermark {}", ob.epoch
            );
            let range = TimeRange::new(0, t + 1);
            for (n, h) in &ob.histories {
                prop_assert_eq!(
                    h,
                    &oracle.try_node_history(*n, range).expect("oracle"),
                    "history of {} at watermark {}", n, ob.epoch
                );
            }
            let root = ob.histories[0].0;
            prop_assert_eq!(
                &ob.khop,
                &oracle.try_khop(root, t, 2).expect("oracle"),
                "khop of {} at watermark {}", root, ob.epoch
            );
        }
    }
}

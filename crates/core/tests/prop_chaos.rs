//! Chaos properties: under an *arbitrary* seeded fault schedule
//! (transient outage windows × per-request flakes × corrupt-on-read ×
//! straggler latency), every TGI operation either answers
//! **byte-identically** to a no-fault oracle or returns an honest
//! error (`Transient`/`Unavailable`/`Corrupt`) — never a panic, never
//! a silently smaller graph. And once the faults are gone and
//! `try_repair` has run, a store degraded mid-build is byte-identical
//! to one that never saw a fault.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig, TgiService};
use hgs_delta::{Event, EventKind, StorageLayout, TimeRange};
use hgs_store::{FaultPlan, RetryPolicy, SimStore, StoreConfig, StoreError};
use proptest::prelude::*;

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..24;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.prop_map(|id| EventKind::RemoveNode { id }),
        3 => (0u64..24, 0u64..24).prop_map(|(src, dst)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed: false }
        }),
        1 => (0u64..24, 0u64..24).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 30..150).prop_map(|kinds| {
        let mut t = 1u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

/// An arbitrary chaos schedule over a 3-machine cluster: every fault
/// class the plan supports, in moderate doses so most operations can
/// still succeed through retries and failover.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u16..250,
        0u16..120,
        prop::collection::vec((0usize..3, 0u64..2_000, 1u64..6_000), 0..3),
        prop_oneof![
            1 => Just(None),
            2 => (0usize..3, 1.0f64..4.0).prop_map(Some),
        ],
    )
        .prop_map(|(seed, flake, corrupt, outages, latency)| {
            let mut plan = FaultPlan::new(seed)
                .with_flake_per_mille(flake)
                .with_corrupt_per_mille(corrupt);
            for (m, from, len) in outages {
                plan = plan.with_outage(m, from, from.saturating_add(len));
            }
            if let Some((m, f)) = latency {
                plan = plan.with_latency_multiplier(m, f);
            }
            plan
        })
}

fn arb_layout() -> impl Strategy<Value = StorageLayout> {
    prop_oneof![Just(StorageLayout::RowWise), Just(StorageLayout::Columnar)]
}

fn small_cfg(layout: StorageLayout) -> TgiConfig {
    TgiConfig {
        events_per_timespan: 60,
        eventlist_size: 16,
        partition_size: 8,
        horizontal_partitions: 2,
        layout,
        ..TgiConfig::default()
    }
}

/// Allowed failure modes under a fault plan with no permanently dead
/// machines: retry exhaustion and wire corruption. Anything else —
/// and in particular any panic — is a bug.
fn honest(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Transient { .. } | StoreError::Unavailable { .. } | StoreError::Corrupt(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The read battery under chaos: every Ok equals the no-fault
    /// oracle (cold cache and warm cache alike), every Err is honest.
    #[test]
    fn faulted_reads_answer_exactly_or_err_honestly(
        events in arb_history(),
        plan in arb_plan(),
        layout in arb_layout(),
        c in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut tgi = Tgi::try_build_on(
            small_cfg(layout),
            Arc::new(SimStore::new(StoreConfig::new(3, 2))),
            &events,
        )
        .expect("fault-free build");
        tgi.set_clients_forced(c);
        let end = tgi.end_time();
        let times = [end / 2, end];
        let range = TimeRange::new(0, end + 1);
        let nids = [0u64, 7, 13];

        // Oracle answers on the healthy cluster, then drain the cache
        // so the first faulted pass is a genuine store read.
        let oracle_snaps: Vec<_> = times
            .iter()
            .map(|&t| tgi.try_snapshot(t).expect("oracle"))
            .collect();
        let oracle_hist: Vec<_> = nids
            .iter()
            .map(|&n| tgi.try_node_history(n, range).expect("oracle"))
            .collect();
        let oracle_khop = tgi.try_khop(nids[0], end, 2).expect("oracle");
        tgi.set_read_cache_budget(0);
        tgi.set_read_cache_budget(hgs_core::DEFAULT_READ_CACHE_BYTES);

        tgi.store().set_fault_plan(Some(plan));
        // Two passes: pass 0 reads cold, pass 1 may be served by
        // whatever pass 0 managed to cache — both must agree with the
        // oracle whenever they answer at all.
        for pass in 0..2 {
            for (i, &t) in times.iter().enumerate() {
                match tgi.try_snapshot(t) {
                    Ok(snap) => prop_assert_eq!(
                        &snap, &oracle_snaps[i],
                        "snapshot(t={}) diverged on pass {}", t, pass
                    ),
                    Err(e) => prop_assert!(honest(&e), "dishonest error: {}", e),
                }
            }
            match tgi.try_snapshots(&times) {
                Ok(snaps) => prop_assert_eq!(&snaps, &oracle_snaps, "multipoint diverged"),
                Err(e) => prop_assert!(honest(&e), "dishonest error: {}", e),
            }
            for (i, &n) in nids.iter().enumerate() {
                match tgi.try_node_history(n, range) {
                    Ok(h) => prop_assert_eq!(
                        &h, &oracle_hist[i],
                        "history({}) diverged on pass {}", n, pass
                    ),
                    Err(e) => prop_assert!(honest(&e), "dishonest error: {}", e),
                }
            }
            match tgi.try_khop(nids[0], end, 2) {
                Ok(k) => prop_assert_eq!(&k, &oracle_khop, "khop diverged on pass {}", pass),
                Err(e) => prop_assert!(honest(&e), "dishonest error: {}", e),
            }
        }

        // Detached plan, breakers reset: the cluster is exactly the
        // healthy one again.
        tgi.store().set_fault_plan(None);
        for (i, &t) in times.iter().enumerate() {
            prop_assert_eq!(&tgi.try_snapshot(t).expect("healed"), &oracle_snaps[i]);
        }
    }

    /// A build that survives chaos leaves — after the plan detaches
    /// and one repair pass runs — a store byte-identical to a build
    /// that never saw a fault. A build that does not survive fails
    /// honestly.
    #[test]
    fn faulted_build_repairs_to_a_byte_identical_store(
        events in arb_history(),
        plan in arb_plan(),
        layout in arb_layout(),
    ) {
        let cfg = small_cfg(layout).with_retry(RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        });
        let store = Arc::new(SimStore::new(StoreConfig::new(3, 2)));
        store.set_fault_plan(Some(plan));
        match Tgi::try_build_on(cfg, Arc::clone(&store), &events) {
            Err(e) => {
                // An overwhelmed build is allowed — but only with an
                // honest store error, and without poisoning the
                // *store* (a later build on the same cluster works).
                match e {
                    hgs_core::BuildError::Store(se) => prop_assert!(honest(&se), "dishonest: {}", se),
                    other => prop_assert!(false, "unexpected build error kind: {}", other),
                }
            }
            Ok(tgi) => {
                store.set_fault_plan(None);
                let report = store.try_repair().expect("repair on a healed cluster");
                prop_assert_eq!(report.still_degraded, 0, "nothing may stay degraded");
                prop_assert_eq!(store.under_replicated_count(), 0);
                // Byte-identical to the never-faulted build: same rows,
                // same replicas, same bytes.
                let oracle_store = Arc::new(SimStore::new(StoreConfig::new(3, 2)));
                let oracle = Tgi::try_build_on(cfg, Arc::clone(&oracle_store), &events)
                    .expect("fault-free build");
                prop_assert_eq!(store.content_rows(), oracle_store.content_rows());
                let end = tgi.end_time();
                prop_assert_eq!(
                    tgi.try_snapshot(end).expect("repaired"),
                    oracle.try_snapshot(end).expect("oracle")
                );
            }
        }
    }

    /// Chaos against the service writer: an append either publishes
    /// the next watermark with oracle-identical answers, or fails
    /// honestly, poisons, and `try_recover` restores the service in
    /// place once the plan detaches.
    #[test]
    fn service_append_under_chaos_recovers_to_the_oracle(
        events in arb_history(),
        plan in arb_plan(),
        layout in arb_layout(),
    ) {
        // Cut at a strict time boundary so the append is legal.
        let mut cut = (events.len() / 2).max(1);
        while cut < events.len() && events[cut].time <= events[cut - 1].time {
            cut += 1;
        }
        if cut >= events.len() {
            // Degenerate history with nothing left to append.
            return Ok(());
        }

        let store = Arc::new(SimStore::new(StoreConfig::new(3, 2)));
        let svc = TgiService::try_build_on(small_cfg(layout), Arc::clone(&store), &events[..cut])
            .expect("fault-free build");
        let w0 = svc.watermark();
        store.set_fault_plan(Some(plan));
        match svc.try_append_events(&events[cut..]) {
            Ok(w1) => {
                prop_assert_eq!(w1, w0 + 1);
                store.set_fault_plan(None);
                prop_assert_eq!(store.try_repair().expect("repair").still_degraded, 0);
            }
            Err(e) => {
                prop_assert!(
                    matches!(e, hgs_core::BuildError::Store(ref se) if honest(se)),
                    "dishonest append failure: {}", e
                );
                prop_assert!(svc.is_poisoned());
                prop_assert_eq!(svc.watermark(), w0, "failed appends publish nothing");
                store.set_fault_plan(None);
                svc.try_recover().expect("recovery on a healed cluster");
                let w1 = svc
                    .try_append_events(&events[cut..])
                    .expect("recovered writer accepts the replay");
                prop_assert_eq!(w1, w0 + 1, "watermark sequence survives recovery");
            }
        }
        // Either way the service now serves the full history exactly.
        let oracle = Tgi::try_build_on(
            small_cfg(layout),
            Arc::new(SimStore::new(StoreConfig::new(3, 2))),
            &events,
        )
        .expect("oracle build");
        let view = svc.pin();
        let end = view.end_time();
        prop_assert_eq!(
            view.try_snapshot(end).expect("served"),
            oracle.try_snapshot(end).expect("oracle")
        );
    }
}

//! Persistence: a TGI re-opened from its store must answer queries
//! identically and accept further appends.

use std::sync::Arc;

use hgs_core::{PartitionStrategy, Tgi, TgiConfig};
use hgs_datagen::{augment_with_churn, WikiGrowth};
use hgs_delta::{Delta, TimeRange};
use hgs_store::{SimStore, StoreConfig};

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_200,
        eventlist_size: 150,
        partition_size: 60,
        horizontal_partitions: 2,
        ..TgiConfig::default()
    }
}

#[test]
fn reopened_index_answers_identically() {
    let base = WikiGrowth {
        events: 2_500,
        seed: 13,
        ..WikiGrowth::default()
    }
    .generate();
    let events = augment_with_churn(&base, 1_000, 0.4, 5);
    let end = events.last().unwrap().time;

    let store = Arc::new(SimStore::new(StoreConfig::new(3, 1)));
    let built = Tgi::build_on(cfg(), store.clone(), &events);
    let reopened = Tgi::open(store).expect("open persisted index");

    assert_eq!(reopened.span_count(), built.span_count());
    assert_eq!(reopened.end_time(), built.end_time());
    assert_eq!(reopened.event_count(), built.event_count());
    for t in [0, end / 3, end / 2, end] {
        assert_eq!(reopened.snapshot(t), built.snapshot(t), "snapshot at t={t}");
    }
    let range = TimeRange::new(end / 4, end);
    for id in [0u64, 7, 23] {
        assert_eq!(
            reopened.node_history(id, range),
            built.node_history(id, range),
            "history of {id}"
        );
    }
}

#[test]
fn reopened_index_with_locality_maps() {
    let events = WikiGrowth {
        events: 2_000,
        seed: 17,
        ..WikiGrowth::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let store = Arc::new(SimStore::new(StoreConfig::new(2, 1)));
    let cfg = cfg().with_strategy(PartitionStrategy::Locality {
        replicate_boundary: true,
    });
    let built = Tgi::build_on(cfg, store.clone(), &events);
    let reopened = Tgi::open(store).expect("open persisted index");
    for t in [end / 2, end] {
        assert_eq!(reopened.snapshot(t), built.snapshot(t), "snapshot at t={t}");
    }
    // Micro-partition-level fetches depend on the reloaded maps.
    for id in [1u64, 9, 31] {
        assert_eq!(
            reopened.node_at(id, end),
            built.node_at(id, end),
            "node {id}"
        );
    }
}

#[test]
fn reopened_index_accepts_appends() {
    let events = WikiGrowth {
        events: 3_000,
        seed: 29,
        ..WikiGrowth::default()
    }
    .generate();
    let cut = events.len() / 2;
    let mut cut_at = cut;
    while cut_at < events.len() && events[cut_at].time == events[cut_at - 1].time {
        cut_at += 1;
    }

    let store = Arc::new(SimStore::new(StoreConfig::new(2, 1)));
    let _first_half = Tgi::build_on(cfg(), store.clone(), &events[..cut_at]);
    let mut reopened = Tgi::open(store).expect("open persisted index");
    reopened.append_events(&events[cut_at..]);

    let end = events.last().unwrap().time;
    for t in [0, end / 2, end] {
        assert_eq!(
            reopened.snapshot(t),
            Delta::snapshot_by_replay(&events, t),
            "post-append snapshot at t={t}"
        );
    }
}

//! Read-cache equivalence and budget properties over whole indexes:
//! cached reads (which may skip fetch + decode on hits) must return
//! exactly what the cache-bypassing reference path returns, on
//! arbitrary histories, budgets — including budgets tiny enough to
//! force constant LRU eviction — and repeat patterns; and the cache's
//! retained bytes must never exceed the configured budget.
//! (Key-level LRU order properties live in `read_cache.rs` unit
//! tests, checked against a reference model.)

use hgs_core::{Tgi, TgiConfig};
use hgs_delta::{AttrValue, Event, EventKind, StorageLayout, TimeRange};
use hgs_store::StoreConfig;
use proptest::prelude::*;

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..40;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        5 => (0u64..40, 0u64..40, any::<bool>()).prop_map(|(src, dst, directed)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed }
        }),
        2 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        2 => (id.clone(), -9i64..9).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id,
            key: "k".into(),
            value: AttrValue::Int(v)
        }),
        1 => id.prop_map(|id| EventKind::RemoveNodeAttr { id, key: "k".into() }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..250).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached single-point reads agree with the cache-bypassing
    /// reference on arbitrary histories, with the budget anywhere
    /// between "evicts constantly" and "holds everything", over
    /// repeated rounds (cold then warm), and the cache never exceeds
    /// its byte budget.
    #[test]
    fn cached_reads_match_bypassed_reads(
        history in arb_history(),
        l in 5usize..40,
        ns in 1u32..4,
        raw_times in prop::collection::vec(0u64..u64::MAX, 1..6),
        budget_kind in 0usize..3,
        columnar in any::<bool>(),
    ) {
        let end = history.last().map(|e| e.time).unwrap_or(0);
        // 0: disabled; 1: tiny (forces eviction churn); 2: ample.
        let budget = [0usize, 4 << 10, 64 << 20][budget_kind];
        let layout = if columnar {
            StorageLayout::Columnar
        } else {
            StorageLayout::RowWise
        };
        let cfg = TgiConfig {
            events_per_timespan: 120.max(l),
            eventlist_size: l,
            partition_size: 10,
            horizontal_partitions: ns,
            read_cache_bytes: budget,
            layout,
            ..TgiConfig::default()
        };
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &history);
        // A twin index with caching disabled: identical construction,
        // every read is a genuine fetch — the bypassed reference for
        // paths that have no dedicated uncached variant.
        let nocache = Tgi::build(
            TgiConfig { read_cache_bytes: 0, ..cfg },
            StoreConfig::new(2, 1),
            &history,
        );
        let times: Vec<u64> = raw_times.iter().map(|r| r % (end + 2)).collect();
        for round in 0..2 {
            for &t in &times {
                let cached = tgi.try_snapshot(t).unwrap();
                let reference = tgi.try_snapshot_uncached_c(t, 1).unwrap();
                prop_assert_eq!(&cached, &reference, "round {} t={}", round, t);
                for id in [0u64, 7, 23] {
                    let via_cache = tgi.try_node_at(id, t).unwrap();
                    prop_assert_eq!(
                        via_cache.as_ref(),
                        reference.node(id),
                        "round {} t={} node {}", round, t, id
                    );
                }
                let s = tgi.cache_stats();
                prop_assert!(
                    s.bytes <= s.budget,
                    "cache exceeded its budget: {:?}", s
                );
            }
            // Histories agree too (elist rows served via the cache).
            let range = TimeRange::new(end / 3, end + 1);
            let h = tgi.try_node_history(0, range).unwrap();
            let h_ref = nocache.try_node_history(0, range).unwrap();
            prop_assert_eq!(&h, &h_ref, "node_history round {}", round);
        }
        if budget == 0 {
            let s = tgi.cache_stats();
            prop_assert_eq!(s.bytes, 0, "disabled cache retains nothing");
            prop_assert_eq!(s.hits, 0, "disabled cache never hits");
        }
    }
}

/// Warm repeats of the same working set are answered from the cache:
/// the second pass issues (almost) no new store requests beyond the
/// liveness eventlist scans, and hit counters move.
#[test]
fn warm_working_set_hits_the_cache() {
    let events: Vec<Event> = (0..4_000u64)
        .map(|i| {
            Event::new(
                i,
                if i % 3 == 0 {
                    EventKind::AddNode { id: i % 400 }
                } else {
                    EventKind::AddEdge {
                        src: i % 400,
                        dst: (i * 7) % 400,
                        weight: 1.0,
                        directed: false,
                    }
                },
            )
        })
        .collect();
    let tgi = Tgi::build(
        TgiConfig {
            events_per_timespan: 2_000,
            eventlist_size: 250,
            partition_size: 100,
            ..TgiConfig::default()
        },
        StoreConfig::new(3, 1),
        &events,
    );
    let end = events.last().unwrap().time;
    let times: Vec<u64> = (1..=4).map(|i| end * i / 4).collect();
    let cold: Vec<_> = times.iter().map(|&t| tgi.snapshot(t)).collect();
    let s_cold = tgi.cache_stats();
    assert!(s_cold.insertions > 0);

    let before = tgi.store().stats_snapshot();
    let warm: Vec<_> = times.iter().map(|&t| tgi.snapshot(t)).collect();
    let diff = hgs_store::SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
    let s_warm = tgi.cache_stats();
    assert_eq!(cold, warm);
    assert!(s_warm.hits > s_cold.hits, "warm pass must hit");
    // Warm snapshots only re-scan eventlist prefixes (the liveness
    // check); no point lookups and no tree-path scans.
    let warm_rows: u64 = diff.iter().map(|m| m.rows_read).sum();
    let cold_rows_estimate = tgi.plan_multipoint(&times).naive_fetch_units as u64;
    assert!(
        warm_rows < cold_rows_estimate,
        "warm pass re-read too much: {warm_rows} vs naive {cold_rows_estimate}"
    );
    assert!(s_warm.bytes <= s_warm.budget);
}

/// Concurrent mixed-key traffic over a live service: the lock-striped
/// cache's aggregated `cache_stats()` must stay coherent while four
/// reader threads hammer different shards — retained bytes within the
/// summed per-shard budgets, the budget reporting exactly the
/// configured total, counters monotone — and a post-quiesce warm pass
/// over the same working set must hit. (Key-level sharded-reference
/// properties live in `read_cache.rs` unit tests.)
#[test]
fn concurrent_readers_aggregate_shard_stats_coherently() {
    let events: Vec<Event> = (0..5_000u64)
        .map(|i| {
            Event::new(
                i,
                if i % 3 == 0 {
                    EventKind::AddNode { id: i % 350 }
                } else {
                    EventKind::AddEdge {
                        src: i % 350,
                        dst: (i * 13) % 350,
                        weight: 1.0,
                        directed: false,
                    }
                },
            )
        })
        .collect();
    let end = events.last().unwrap().time;
    let budget = 2usize << 20;
    let svc = hgs_core::TgiService::build(
        TgiConfig {
            events_per_timespan: 1_500,
            eventlist_size: 200,
            partition_size: 60,
            read_cache_bytes: budget,
            ..TgiConfig::default()
        },
        StoreConfig::new(3, 1),
        &events,
    );
    const { assert!(hgs_core::DEFAULT_READ_CACHE_SHARDS > 1, "striping is on") };
    std::thread::scope(|s| {
        let svc = &svc;
        for r in 0..4usize {
            s.spawn(move || {
                let view = svc.pin();
                for i in 0..12u64 {
                    // Every thread touches its own time/node mix, so
                    // traffic spreads across cache stripes.
                    let t = end * ((r as u64 * 12 + i) % 16 + 1) / 16;
                    let _snap = view.try_snapshot(t).expect("healthy");
                    let _node = view.try_node_at((r as u64 * 31 + i * 7) % 350, t);
                    let stats = view.cache_stats();
                    assert!(
                        stats.bytes <= stats.budget,
                        "reader {r}: stripes overran the summed budget: {stats:?}"
                    );
                    assert_eq!(stats.budget, budget, "reader {r}: budget drifted");
                }
            });
        }
    });
    let s1 = svc.cache_stats();
    assert_eq!(s1.budget, budget);
    assert!(s1.bytes <= s1.budget);
    assert!(s1.insertions > 0, "cold pass populated the stripes");
    assert!(s1.insertions >= s1.evictions, "ledger impossible: {s1:?}");
    assert!(s1.hits + s1.misses > 0);

    // Quiesced warm pass over a subset of the same working set: the
    // aggregate hit counter moves, and the ledger still balances.
    let view = svc.pin();
    for i in 0..8u64 {
        let _ = view.try_snapshot(end * (i % 16 + 1) / 16).expect("warm");
    }
    let s2 = svc.cache_stats();
    assert!(s2.hits > s1.hits, "warm pass must hit: {s1:?} -> {s2:?}");
    assert!(s2.bytes <= s2.budget);

    // Draining every stripe returns the aggregate to exactly zero.
    svc.set_read_cache_budget(0);
    assert_eq!(svc.cache_stats().bytes, 0, "drain leak across stripes");
}

/// Columnar cache entries hold `Bytes` sub-slices of one shared
/// backing slab per row. The cache charges each entry its fixed
/// worst-case weight (backing + fully-decoded columns) exactly once
/// at insert, so interleaving pruned reads (which cache shared-slab
/// `ColDelta`/`ColElist` entries) with full replays (which replace
/// them with decoded entries) can never drift the byte ledger: the
/// retained total stays within budget through arbitrary churn, and
/// draining the LRU returns it to exactly zero.
#[test]
fn columnar_column_sharing_respects_budget() {
    let events: Vec<Event> = (0..6_000u64)
        .map(|i| {
            Event::new(
                i,
                if i % 3 == 0 {
                    EventKind::AddNode { id: i % 300 }
                } else {
                    EventKind::AddEdge {
                        src: i % 300,
                        dst: (i * 11) % 300,
                        weight: 1.0,
                        directed: false,
                    }
                },
            )
        })
        .collect();
    let end = events.last().unwrap().time;
    for budget in [8usize << 10, 256 << 10, 64 << 20] {
        let tgi = Tgi::build(
            TgiConfig {
                events_per_timespan: 1_500,
                eventlist_size: 200,
                partition_size: 60,
                read_cache_bytes: budget,
                ..TgiConfig::default()
            },
            StoreConfig::new(2, 1),
            &events,
        );
        // Pruned reads first: node_at/node_history cache parsed
        // columnar entries whose column slices share one slab.
        for nid in 0..24u64 {
            let _ = tgi.node_at(nid, end / 2);
            let _ = tgi.node_history(nid, TimeRange::new(0, end + 1));
            let s = tgi.cache_stats();
            assert!(s.bytes <= s.budget, "budget {budget}: {s:?}");
        }
        // Full replays over the same rows: entries flip from columnar
        // to fully-decoded representations in place.
        for t in [end / 4, end / 2, end] {
            let _ = tgi.snapshot(t);
            let s = tgi.cache_stats();
            assert!(s.bytes <= s.budget, "budget {budget}: {s:?}");
        }
        // And back to pruned reads against the now-decoded entries.
        for nid in 0..24u64 {
            let _ = tgi.node_at(nid, end);
            let s = tgi.cache_stats();
            assert!(s.bytes <= s.budget, "budget {budget}: {s:?}");
        }
        // Draining the LRU releases every charged byte: the ledger
        // balances only if shared slabs were counted once.
        tgi.set_read_cache_budget(0);
        assert_eq!(tgi.cache_stats().bytes, 0, "budget {budget}: drain leak");
    }
}

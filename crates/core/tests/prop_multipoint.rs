//! Multipoint planner equivalence: `try_snapshots` (shared-path
//! planner, batched fetches, clone-at-divergence) must produce exactly
//! the same graphs as independent per-time `snapshot` calls, on random
//! WikiGrowth traces and index shapes.

use hgs_core::{Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::{AttrValue, Event, EventKind};
use hgs_store::{SimStore, StoreConfig};
use proptest::prelude::*;

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..40;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        5 => (0u64..40, 0u64..40, any::<bool>()).prop_map(|(src, dst, directed)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed }
        }),
        2 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        2 => (id.clone(), -9i64..9).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id,
            key: "k".into(),
            value: AttrValue::Int(v)
        }),
        1 => id.prop_map(|id| EventKind::RemoveNodeAttr { id, key: "k".into() }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..300).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn planner_matches_independent_snapshots(
        seed in any::<u64>(),
        n_events in 500usize..2_000,
        ts in 300usize..900,
        l in 40usize..160,
        arity in 2usize..4,
        ns in 1u32..4,
        raw_times in prop::collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let trace = WikiGrowth { seed, ..WikiGrowth::sized(n_events) }.generate();
        let end = trace.last().unwrap().time;
        let cfg = TgiConfig {
            events_per_timespan: ts.max(l),
            eventlist_size: l,
            arity,
            partition_size: 50,
            horizontal_partitions: ns,
            ..TgiConfig::default()
        };
        let tgi = Tgi::build(cfg, StoreConfig::new(3, 1), &trace);
        // Arbitrary times, including duplicates, unsorted, and past
        // the end of history.
        let times: Vec<u64> = raw_times.iter().map(|r| r % (end + 2)).collect();
        let shared = tgi.try_snapshots(&times).unwrap();
        prop_assert_eq!(shared.len(), times.len());
        for (t, s) in times.iter().zip(&shared) {
            // `try_snapshot` now runs through the same planner + cache,
            // so compare against the cache-bypassing reference path.
            let independent = tgi.try_snapshot_uncached_c(*t, 1).unwrap();
            prop_assert_eq!(s, &independent, "mismatch at t={}", t);
        }
        let plan = tgi.plan_multipoint(&times);
        prop_assert!(plan.shared_fetch_units <= plan.naive_fetch_units);
    }

    /// Arbitrary histories — node/edge removals, attribute churn,
    /// duplicated events — through small index shapes: the planner's
    /// merged-state replay must agree with per-time snapshots, with
    /// both cold and warm caches and with parallel fetch clients.
    #[test]
    fn planner_matches_on_arbitrary_histories(
        history in arb_history(),
        l in 5usize..40,
        ns in 1u32..4,
        raw_times in prop::collection::vec(0u64..u64::MAX, 1..6),
        clients in 1usize..4,
    ) {
        let end = history.last().map(|e| e.time).unwrap_or(0);
        let cfg = TgiConfig {
            events_per_timespan: 120.max(l),
            eventlist_size: l,
            partition_size: 10,
            horizontal_partitions: ns,
            ..TgiConfig::default()
        };
        let mut tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &history);
        // Forced: `set_clients` clamps to the host's cores, which
        // would silence the parallel path on a small CI box.
        tgi.set_clients_forced(clients);
        let times: Vec<u64> = raw_times.iter().map(|r| r % (end + 2)).collect();
        for round in 0..2 {
            let shared = tgi.try_snapshots(&times).unwrap();
            for (t, s) in times.iter().zip(&shared) {
                let independent = tgi.try_snapshot_uncached_c(*t, 1).unwrap();
                prop_assert_eq!(s, &independent, "round {} t={}", round, t);
            }
        }
    }
}

fn arb_sparse_kind() -> impl Strategy<Value = EventKind> {
    // Only four distinct node ids: with up to 4 horizontal partitions,
    // most sids legitimately contribute *empty* partials.
    let id = 0u64..4;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        3 => (0u64..4, 0u64..4).prop_map(|(src, dst)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed: false }
        }),
        1 => (0u64..4, 0u64..4).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
    ]
}

proptest! {
    /// Sparse histories over few node ids: some sids hold no state at
    /// all (their parallel partials are legitimately empty). The merge
    /// must treat "empty" and "not yet filled" as different things, so
    /// `c=1`, `c>1` and the cache-bypassing reference all agree —
    /// warm and cold.
    #[test]
    fn parallel_merge_matches_on_sparse_and_empty_sids(
        history in prop::collection::vec((arb_sparse_kind(), 0u64..3), 1..120)
            .prop_map(|kinds| {
                let mut t = 0u64;
                kinds
                    .into_iter()
                    .map(|(kind, gap)| {
                        t += gap;
                        Event::new(t, kind)
                    })
                    .collect::<Vec<Event>>()
            }),
        l in 5usize..30,
        ns in 2u32..5,
        raw_times in prop::collection::vec(0u64..u64::MAX, 1..6),
    ) {
        let end = history.last().map(|e| e.time).unwrap_or(0);
        let cfg = TgiConfig {
            events_per_timespan: 60.max(l),
            eventlist_size: l,
            partition_size: 4,
            horizontal_partitions: ns,
            ..TgiConfig::default()
        };
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &history);
        let times: Vec<u64> = raw_times.iter().map(|r| r % (end + 2)).collect();
        let reference: Vec<_> = times
            .iter()
            .map(|&t| tgi.try_snapshot_uncached_c(t, 1).unwrap())
            .collect();
        for round in 0..2 {
            for c in [1usize, 2, 4] {
                let got = tgi.try_snapshots_c(&times, c).unwrap();
                prop_assert_eq!(&got, &reference, "round {} c={}", round, c);
            }
        }
    }
}

/// Regression for the partial-merge sentinel: when the first work
/// items of a slot contribute legitimately empty partials (all of the
/// single node's state lives in the *last* sid), a later non-empty
/// partial used to be taken as "first fill" via `is_empty()`. The
/// explicit filled-ness flags must keep every `c` equal to the
/// reference.
#[test]
fn empty_first_partials_merge_exactly() {
    let ns = 4u32;
    // A node id whose sid is the *last* of 4, so sids iterated before
    // it all produce empty partials.
    let nid = (0u64..1_000)
        .find(|&id| hgs_core::meta::sid_of(id, ns) == ns - 1)
        .expect("some id hashes to the last sid");
    let events: Vec<Event> = (0..40u64)
        .flat_map(|i| {
            [
                Event::new(4 * i, EventKind::AddNode { id: nid }),
                Event::new(4 * i + 2, EventKind::RemoveNode { id: nid }),
            ]
        })
        .collect();
    let cfg = TgiConfig {
        events_per_timespan: 50,
        eventlist_size: 8,
        partition_size: 4,
        horizontal_partitions: ns,
        ..TgiConfig::default()
    };
    let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
    let times: Vec<u64> = vec![0, 41, 81, 121, 159];
    let reference: Vec<_> = times
        .iter()
        .map(|&t| tgi.try_snapshot_uncached_c(t, 1).unwrap())
        .collect();
    for c in [1usize, 2, 4, 8] {
        assert_eq!(tgi.try_snapshots_c(&times, c).unwrap(), reference, "c={c}");
    }
}

#[test]
fn plan_shares_fetches_and_batches_round_trips() {
    let trace = WikiGrowth::sized(6_000).generate();
    let end = trace.last().unwrap().time;
    let tgi = Tgi::build(
        TgiConfig {
            events_per_timespan: 3_000,
            eventlist_size: 200,
            partition_size: 100,
            ..TgiConfig::default()
        },
        StoreConfig::new(4, 1),
        &trace,
    );
    let times: Vec<u64> = (1..=4).map(|i| end * i / 4).collect();
    let plan = tgi.plan_multipoint(&times);
    assert_eq!(plan.times, 4);
    assert!(
        plan.shared_fetch_units < plan.naive_fetch_units,
        "4 spread times must share path rows: {plan:?}"
    );
    // The executed plan issues exactly one grouped-scan round-trip per
    // (timespan, sid) chunk.
    let before = tgi.store().stats_snapshot();
    let snaps = tgi.try_snapshots(&times).unwrap();
    let diff = SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
    let batches: u64 = diff.iter().map(|m| m.batches).sum();
    assert_eq!(batches as usize, plan.round_trips);
    assert_eq!(snaps.len(), 4);
}

#[test]
fn times_in_one_leaf_share_a_single_replay() {
    let trace = WikiGrowth::sized(2_000).generate();
    let end = trace.last().unwrap().time;
    let tgi = Tgi::build(
        TgiConfig {
            events_per_timespan: 2_000,
            eventlist_size: 1_000,
            partition_size: 100,
            ..TgiConfig::default()
        },
        StoreConfig::new(2, 1),
        &trace,
    );
    // Many times inside one eventlist chunk: one fetch, one replay.
    let times: Vec<u64> = (0..10).map(|i| end / 2 + i).collect();
    let plan = tgi.plan_multipoint(&times);
    assert_eq!(plan.leaf_groups, 1);
    let shared = tgi.try_snapshots(&times).unwrap();
    for (t, s) in times.iter().zip(&shared) {
        assert_eq!(s, &tgi.try_snapshot_uncached_c(*t, 1).unwrap(), "t={t}");
    }
}

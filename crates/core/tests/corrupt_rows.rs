//! Corruption injection: a stored row whose bytes no longer decode
//! must surface as `StoreError::Corrupt` through the `try_*` read
//! path — never panic inside a caller that opted into `Result`. The
//! decode sites used to `.expect("stored delta decodes")` straight
//! through `try_snapshot`; this pins the contract that replaced them.

use std::collections::BTreeSet;

use bytes::Bytes;
use hgs_core::{Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::TimeRange;
use hgs_store::{SimStore, StoreConfig, StoreError, Table};

fn trace() -> Vec<hgs_delta::Event> {
    WikiGrowth::sized(3_000).generate()
}

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_200,
        eventlist_size: 150,
        partition_size: 60,
        ..TgiConfig::default()
    }
}

/// Overwrite every row of `table` with bytes that fail decoding.
/// Rows are rewritten under every placement token so each replica of
/// each chunk serves the garbage, whichever machine a read lands on.
fn corrupt_table(store: &SimStore, table: Table) -> usize {
    let tag = table.tag();
    let mut keys: BTreeSet<Vec<u8>> = BTreeSet::new();
    for rows in store.content_rows() {
        for (nk, _) in rows {
            if nk.first() == Some(&tag) {
                keys.insert(nk[1..].to_vec());
            }
        }
    }
    let garbage = Bytes::from_static(b"\xff\xfenot a decodable row");
    for key in &keys {
        for token in 0..store.machine_count() as u64 {
            store.put(table, key, token, garbage.clone());
        }
    }
    keys.len()
}

#[test]
fn corrupt_delta_rows_surface_corrupt_not_panic() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 2), &events);

    // Corrupt before the first read: the read cache is cold, so every
    // query below must hit the store and trip the decode.
    let n = corrupt_table(tgi.store(), Table::Deltas);
    assert!(n > 0, "the build must have written delta rows");

    assert!(matches!(tgi.try_snapshot(t), Err(StoreError::Corrupt(_))));
    assert!(matches!(tgi.try_node_at(0, t), Err(StoreError::Corrupt(_))));
    assert!(matches!(
        tgi.try_node_history(0, TimeRange::new(end / 4, (3 * end) / 4)),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn corrupt_version_chain_surfaces_corrupt_not_panic() {
    let events = trace();
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    let n = corrupt_table(tgi.store(), Table::Versions);
    assert!(n > 0, "the build must have written version chains");
    assert!(matches!(
        tgi.try_version_chain(0),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn corrupt_attr_index_rows_surface_corrupt_not_panic() {
    let events = hgs_datagen::SkewedLabels {
        nodes: 200,
        edge_events: 1_000,
        attr_churn: 500,
        ..Default::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    let n = corrupt_table(tgi.store(), Table::AttrIndex);
    assert!(n > 0, "the build must have written secondary-index rows");

    assert!(matches!(
        tgi.try_nodes_with_label_at("Label00", t),
        Err(StoreError::Corrupt(_))
    ));
    assert!(matches!(
        tgi.try_attr_history(0, hgs_core::LABEL_KEY),
        Err(StoreError::Corrupt(_))
    ));
    // The materialization path reads other tables and still answers.
    assert!(tgi
        .try_nodes_matching_at_materialized(
            hgs_core::LABEL_KEY,
            &hgs_delta::AttrValue::Text("Label00".into()),
            t,
        )
        .is_ok());
}

/// Wire-level corruption via the fault plan: a `CorruptRead` verdict
/// hands the decoder undecodable bytes exactly like the at-rest
/// rewrites above — same `StoreError::Corrupt`, never a panic — but
/// the *stored* rows are untouched, so detaching the plan restores
/// byte-identical answers with no repair needed.
#[test]
fn corrupt_on_read_fault_surfaces_corrupt_and_leaves_storage_intact() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 2), &events);
    let reference = tgi.try_snapshot(t).expect("healthy cluster");
    // Cold cache: every read below must hit the (corrupting) wire.
    tgi.set_read_cache_budget(0);
    tgi.store().set_fault_plan(Some(
        hgs_store::FaultPlan::new(0xC0FF).with_corrupt_per_mille(1000),
    ));
    assert!(matches!(tgi.try_snapshot(t), Err(StoreError::Corrupt(_))));
    assert!(matches!(tgi.try_node_at(0, t), Err(StoreError::Corrupt(_))));
    tgi.store().set_fault_plan(None);
    assert_eq!(
        tgi.try_snapshot(t).expect("storage was never touched"),
        reference
    );
}

//! Failure injection under concurrency: a machine dying mid-append
//! poisons the *writer* of a [`TgiService`] — `BuildError::Store` on
//! the failing batch, `BuildError::Poisoned` on retry — while pinned
//! readers, and every fresh pin, stay at the last durable watermark
//! and keep answering byte-identically from its sealed spans.
//!
//! Store availability is orthogonal: with the failure still live, a
//! sealed-span read whose rows sat on the dead machine surfaces
//! `StoreError::Unavailable` exactly as on a single-owner handle
//! (`failure_injection.rs`) — but any *readable* answer must equal the
//! pre-failure baseline, and after healing every read does.

use std::sync::Arc;

use hgs_core::{BuildError, Tgi, TgiConfig, TgiService};
use hgs_datagen::WikiGrowth;
use hgs_store::{PlacementKey, StoreConfig, StoreError};

fn trace() -> Vec<hgs_delta::Event> {
    WikiGrowth::sized(3_000).generate()
}

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_200,
        eventlist_size: 150,
        partition_size: 60,
        ..TgiConfig::default()
    }
}

#[test]
fn machine_death_mid_append_poisons_writer_while_pinned_readers_answer() {
    let events = trace();
    let mid = events.len() / 2;
    let svc =
        TgiService::try_build(cfg(), StoreConfig::new(4, 1), &events[..mid]).expect("healthy");
    let store = svc.store();
    let w0 = svc.watermark();
    let pinned = svc.pin();
    let t = pinned.end_time();
    let baseline = pinned.try_snapshot(t).expect("healthy read");

    // Kill the machine the *next* span's sid-0 delta chunk lands on,
    // then run the doomed append concurrently with a pinned reader.
    let next_tsid = pinned.span_count() as u32;
    store.fail_machine(store.machine_for(PlacementKey::new(next_tsid, 0).token(), 0));
    std::thread::scope(|s| {
        let svc = &svc;
        let events = &events;
        let reader = {
            let pinned = Arc::clone(&pinned);
            let baseline = baseline.clone();
            s.spawn(move || {
                for _ in 0..20 {
                    // With r = 1 the dead machine may hold sealed rows
                    // too; an unreadable chunk errs loudly, but a
                    // readable answer is byte-identical — never a
                    // shrunken graph, never a torn span.
                    match pinned.try_snapshot(t) {
                        Ok(snap) => assert_eq!(snap, baseline, "pinned read diverged"),
                        Err(StoreError::Unavailable { .. }) => {}
                        Err(other) => panic!("unexpected error kind: {other}"),
                    }
                    std::thread::yield_now();
                }
            })
        };
        s.spawn(move || {
            assert!(matches!(
                svc.try_append_events(&events[mid..]),
                Err(BuildError::Store(StoreError::Unavailable { .. }))
            ));
        });
        reader.join().expect("reader panicked");
    });

    // The failed append published nothing.
    assert!(svc.is_poisoned());
    assert_eq!(svc.watermark(), w0, "no watermark for a failed append");
    assert_eq!(
        svc.pin().epoch(),
        w0,
        "fresh pins stay at the durable watermark"
    );
    assert!(matches!(
        svc.try_append_events(&events[mid..]),
        Err(BuildError::Poisoned)
    ));

    // Healed, both the old pin and a fresh one answer the baseline.
    store.heal_all();
    assert_eq!(pinned.try_snapshot(t).expect("healed"), baseline);
    let fresh = svc.pin();
    assert_eq!(fresh.epoch(), w0);
    assert_eq!(fresh.event_count(), pinned.event_count());
    assert_eq!(fresh.try_snapshot(t).expect("healed"), baseline);
}

/// Same recovery contract under *transient* faults: the outage that
/// poisons the writer is a seeded [`FaultPlan`] window rather than a
/// permanent kill, so nothing is ever "healed" by hand — the plan is
/// detached and [`TgiService::try_recover`] re-opens the writer in
/// place on the same service, with the watermark sequence intact.
#[test]
fn recovery_reopens_from_durable_state_and_serves_the_full_history() {
    let events = trace();
    let mid = events.len() / 2;
    let svc =
        TgiService::try_build(cfg(), StoreConfig::new(4, 1), &events[..mid]).expect("healthy");
    let store = svc.store();
    let w0 = svc.watermark();
    let pinned = svc.pin();
    let t = pinned.end_time();
    let baseline = pinned.try_snapshot(t).expect("healthy read");

    // The machine the next span's sid-0 chunk lands on refuses for the
    // whole append: the batch fails, the error is honest about the
    // fault being transient, and the writer poisons.
    let next_tsid = pinned.span_count() as u32;
    let victim = store.machine_for(PlacementKey::new(next_tsid, 0).token(), 0);
    store.set_fault_plan(Some(hgs_store::FaultPlan::new(0x5EED).with_outage(
        victim,
        0,
        u64::MAX,
    )));
    assert!(matches!(
        svc.try_append_events(&events[mid..]),
        Err(BuildError::Store(StoreError::Transient { .. }))
    ));
    assert!(svc.is_poisoned());

    // Faults over: detach the plan and recover the same service in
    // place. The descriptor was persisted only for durable watermarks,
    // so orphan rows of the failed batch are unreachable and the same
    // append replays cleanly.
    store.set_fault_plan(None);
    svc.try_recover().expect("healed cluster reopens in place");
    assert!(!svc.is_poisoned());
    assert_eq!(svc.watermark(), w0, "recovery publishes nothing by itself");
    assert_eq!(
        svc.pin().try_snapshot(t).expect("recovered read"),
        baseline,
        "recovery serves the last durable watermark"
    );
    let w1 = svc
        .try_append_events(&events[mid..])
        .expect("recovered writer accepts the replayed batch");
    assert_eq!(w1, w0 + 1, "watermark sequence survives recovery");

    // The recovered service's full history equals a from-scratch build.
    let end = events.last().unwrap().time;
    let oracle = Tgi::build(cfg(), StoreConfig::new(4, 1), &events);
    let now = svc.pin();
    assert_eq!(
        now.try_snapshot(end).expect("recovered"),
        oracle.try_snapshot(end).expect("oracle")
    );
    assert_eq!(now.event_count(), events.len());
}

//! Property-based TGI validation: for arbitrary event histories and
//! random configurations, every retrieval primitive must agree with
//! brute-force replay.

use hgs_core::{PartitionStrategy, Tgi, TgiConfig};
use hgs_delta::{normalize_events, AttrValue, Delta, Event, EventKind, TimeRange};
use hgs_store::StoreConfig;
use proptest::prelude::*;

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..40;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        5 => (0u64..40, 0u64..40, any::<bool>()).prop_map(|(src, dst, directed)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed }
        }),
        2 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        2 => (id.clone(), -9i64..9).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id,
            key: "k".into(),
            value: AttrValue::Int(v)
        }),
        1 => id.prop_map(|id| EventKind::RemoveNodeAttr { id, key: "k".into() }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..300).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = TgiConfig> {
    (
        20usize..120, // events_per_timespan
        5usize..40,   // eventlist_size
        2usize..4,    // arity
        5usize..50,   // partition_size
        1u32..4,      // horizontal partitions
        0usize..3,    // strategy selector
    )
        .prop_map(|(ts, l, arity, ps, ns, strat)| TgiConfig {
            events_per_timespan: ts.max(l),
            eventlist_size: l,
            arity,
            partition_size: ps,
            horizontal_partitions: ns,
            strategy: match strat {
                0 => PartitionStrategy::Random,
                1 => PartitionStrategy::Locality {
                    replicate_boundary: false,
                },
                _ => PartitionStrategy::Locality {
                    replicate_boundary: true,
                },
            },
            ..TgiConfig::default()
        })
}

proptest! {
    // Each case builds a full index: keep the case count moderate.
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Snapshot retrieval equals replay at arbitrary cut points, for
    /// arbitrary histories (including deletions) and configurations.
    #[test]
    fn snapshot_equals_replay(events in arb_history(), cfg in arb_config(), cut in 0u64..400) {
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
        let got = tgi.snapshot(cut);
        let want = Delta::snapshot_by_replay(&events, cut);
        prop_assert_eq!(got, want);
    }

    /// Static-vertex fetches agree with replay for every node that
    /// ever existed.
    #[test]
    fn node_at_equals_replay(events in arb_history(), cfg in arb_config(), cut in 0u64..400) {
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
        let want = Delta::snapshot_by_replay(&events, cut);
        for id in 0u64..40 {
            let got = tgi.node_at(id, cut);
            prop_assert_eq!(got.as_ref(), want.node(id), "node {}", id);
        }
    }

    /// Node histories contain exactly the node's in-range events and
    /// their final version equals the replayed state.
    #[test]
    fn node_history_equals_replay(events in arb_history(), cfg in arb_config()) {
        let end = events.last().map(|e| e.time).unwrap_or(0);
        let range = TimeRange::new(end / 4, end.max(1));
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
        // The index stores the *normalized* stream (RemoveNode expanded
        // into explicit RemoveEdge events): compare against it.
        let events = normalize_events(&events);
        for id in (0u64..40).step_by(7) {
            let h = tgi.node_history(id, range);
            let want: Vec<&Event> = events
                .iter()
                .filter(|e| {
                    let (a, b) = e.kind.touched();
                    (a == id || b == Some(id)) && e.time > range.start && e.time < range.end
                })
                .collect();
            prop_assert_eq!(h.events.len(), want.len(), "count for {}", id);
            let want_state = Delta::snapshot_by_replay(&events, range.end - 1);
            let versions = h.versions();
            prop_assert_eq!(
                versions.last().unwrap().1.as_ref(),
                want_state.node(id),
                "final version of {}", id
            );
        }
    }
}

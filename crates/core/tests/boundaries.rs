//! Boundary edge cases: queries landing exactly on checkpoint times,
//! timespan borders, and before/after the indexed history.

use hgs_core::{Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::{Delta, Event, EventKind, Time, TimeRange};
use hgs_store::StoreConfig;

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 500,
        eventlist_size: 50,
        partition_size: 40,
        horizontal_partitions: 2,
        ..TgiConfig::default()
    }
}

#[test]
fn snapshots_at_every_event_timestamp() {
    // Exhaustive: every distinct timestamp in a small trace, plus the
    // instants just before and after each.
    let events = WikiGrowth {
        events: 600,
        seed: 3,
        ..WikiGrowth::default()
    }
    .generate();
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    let mut times: Vec<Time> = events.iter().map(|e| e.time).collect();
    times.sort_unstable();
    times.dedup();
    for &t in &times {
        for probe in [t.saturating_sub(1), t, t + 1] {
            assert_eq!(
                tgi.snapshot(probe),
                Delta::snapshot_by_replay(&events, probe),
                "snapshot at t={probe}"
            );
        }
    }
}

#[test]
fn queries_beyond_history_return_final_state() {
    let events = WikiGrowth {
        events: 400,
        seed: 5,
        ..WikiGrowth::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    let final_state = Delta::snapshot_by_replay(&events, u64::MAX);
    for t in [end, end + 1, end * 10, u64::MAX - 1] {
        assert_eq!(tgi.snapshot(t), final_state, "t={t}");
    }
}

#[test]
fn queries_before_history_start() {
    // Shift the trace to start at t=1000; earlier queries see nothing.
    let mut events = WikiGrowth {
        events: 300,
        seed: 7,
        ..WikiGrowth::default()
    }
    .generate();
    for e in &mut events {
        e.time += 1000;
    }
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    for t in [0u64, 500, 999] {
        assert!(tgi.snapshot(t).is_empty(), "pre-history snapshot at t={t}");
        assert_eq!(tgi.node_at(0, t), None);
    }
    assert!(!tgi.snapshot(1_000_000).is_empty());
}

#[test]
fn single_timestamp_burst_history() {
    // Every event at the same instant: one chunk, one checkpoint.
    let events: Vec<Event> = (0..200u64)
        .map(|i| {
            Event::new(
                42,
                EventKind::AddEdge {
                    src: i % 20,
                    dst: (i + 1) % 20,
                    weight: 1.0,
                    directed: false,
                },
            )
        })
        .collect();
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    assert!(tgi.snapshot(41).is_empty());
    assert_eq!(tgi.snapshot(42), Delta::snapshot_by_replay(&events, 42));
    assert_eq!(tgi.snapshot(43), tgi.snapshot(42));
}

#[test]
fn node_history_over_degenerate_ranges() {
    let events = WikiGrowth {
        events: 400,
        seed: 11,
        ..WikiGrowth::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    // Empty range: initial state only, no events.
    let h = tgi.node_history(0, TimeRange::new(end / 2, end / 2));
    assert!(h.events.is_empty());
    assert_eq!(
        h.initial.as_ref(),
        Delta::snapshot_by_replay(&events, end / 2).node(0)
    );
    // Range entirely after history: final state, no events.
    let h2 = tgi.node_history(0, TimeRange::new(end + 10, end + 100));
    assert!(h2.events.is_empty());
    assert_eq!(
        h2.initial.as_ref(),
        Delta::snapshot_by_replay(&events, u64::MAX).node(0)
    );
}

#[test]
fn khop_of_missing_and_isolated_nodes() {
    let mut events = WikiGrowth {
        events: 300,
        seed: 13,
        ..WikiGrowth::default()
    }
    .generate();
    let t_end = events.last().unwrap().time;
    events.push(Event::new(t_end + 1, EventKind::AddNode { id: 999_999 }));
    let tgi = Tgi::build(cfg(), StoreConfig::new(2, 1), &events);
    for strategy in [
        hgs_core::KhopStrategy::ViaSnapshot,
        hgs_core::KhopStrategy::Recursive,
    ] {
        let missing = tgi.khop_with(123_456_789, t_end, 2, strategy);
        assert!(missing.is_empty(), "missing node via {strategy:?}");
        let isolated = tgi.khop_with(999_999, t_end + 1, 2, strategy);
        assert_eq!(isolated.cardinality(), 1, "isolated node via {strategy:?}");
    }
}

//! Version-chain write-path invariants for the append-only
//! chain-delta rows: the build never read-modify-writes a chain (zero
//! `get`/`scan` round trips during a fresh build), and a dead machine
//! mid-chain-write surfaces `StoreError::Unavailable` without ever
//! half-extending a chain — each `(nid, tsid)` row lands atomically or
//! not at all.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_store::key::node_placement_token;
use hgs_store::{SimStore, StoreConfig, StoreError};

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_000,
        eventlist_size: 120,
        partition_size: 50,
        ..TgiConfig::default()
    }
}

/// A fresh build is write-only: version chains are emitted as
/// append-only per-span rows, so the store sees zero point reads and
/// zero scans while building — the old chain path's read-modify-write
/// loop (one `get` per chain extension) is gone.
#[test]
fn fresh_build_issues_zero_reads() {
    let events = WikiGrowth::sized(4_000).generate();
    let store = Arc::new(SimStore::new(StoreConfig::new(3, 2)));
    let before = store.stats_snapshot();
    let tgi = Tgi::try_build_on(cfg(), store.clone(), &events).expect("build");
    let after = store.stats_snapshot();
    let delta = SimStore::stats_since(&after, &before);
    let gets: u64 = delta.iter().map(|m| m.gets).sum();
    let scans: u64 = delta.iter().map(|m| m.scans).sum();
    assert_eq!(gets, 0, "fresh build must not issue point reads");
    assert_eq!(scans, 0, "fresh build must not issue scans");
    // Sanity: chains were actually written and are readable.
    let chain = tgi.version_chain(0);
    assert!(!chain.is_empty(), "node 0 must have a version chain");
}

/// Appends, too, extend chains purely by writing new `(nid, tsid)`
/// rows — no reads of the existing chain.
#[test]
fn append_extends_chains_without_reading_them() {
    let events = WikiGrowth::sized(4_000).generate();
    let split = events.len() / 2;
    let (prefix, suffix) = events.split_at(split);
    let store = Arc::new(SimStore::new(StoreConfig::new(3, 2)));
    let mut tgi = Tgi::try_build_on(cfg(), store.clone(), prefix).expect("build");
    let before = store.stats_snapshot();
    tgi.try_append_events(suffix).expect("append");
    let after = store.stats_snapshot();
    let delta = SimStore::stats_since(&after, &before);
    let gets: u64 = delta.iter().map(|m| m.gets).sum();
    assert_eq!(gets, 0, "append must not read version chains back");
}

/// Chain writes against a dead machine fail loudly and atomically:
/// the append surfaces `StoreError::Unavailable`, and after healing,
/// every node's chain is exactly what it was before the failed append
/// — never a half-extended chain.
#[test]
fn dead_machine_mid_chain_write_never_half_extends() {
    let events = WikiGrowth::sized(4_000).generate();
    let split = events.len() / 2;
    let (prefix, suffix) = events.split_at(split);
    let store = Arc::new(SimStore::new(StoreConfig::new(3, 1)));
    let mut tgi = Tgi::try_build_on(cfg(), store.clone(), prefix).expect("build prefix");

    let probe_ids: Vec<u64> = (0..16).collect();
    let before: Vec<_> = probe_ids
        .iter()
        .map(|&nid| tgi.try_version_chain(nid).expect("healthy read"))
        .collect();

    // Kill the machine that owns node 0's chain row (replication 1:
    // no other replica can absorb the write).
    let dead = store.machine_for(node_placement_token(0), 0);
    store.fail_machine(dead);
    match tgi.try_append_events(suffix) {
        Err(hgs_core::BuildError::Store(StoreError::Unavailable { .. })) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
        Ok(()) => panic!("append against a dead chain owner must fail"),
    }

    store.heal_machine(dead);
    for (nid, old) in probe_ids.iter().zip(&before) {
        let now = tgi.try_version_chain(*nid).expect("healed read");
        // Atomic per-row chain extension: a chain either gained whole
        // per-span rows or none — it can never have been rewritten in
        // place, so the old chain must be a prefix of whatever is
        // readable now.
        assert!(
            now.len() >= old.len() && &now[..old.len()] == old.as_slice(),
            "chain for node {nid} was rewritten in place"
        );
    }
    // Node 0's own chain row targeted the dead machine, so its chain
    // must be exactly the pre-append chain.
    assert_eq!(
        tgi.try_version_chain(0).expect("healed read"),
        before[0],
        "node 0's chain must not be half-extended"
    );
}

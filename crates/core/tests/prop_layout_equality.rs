//! Read-path equivalence across storage layouts: an index built with
//! the columnar layout must answer every query primitive exactly like
//! one built row-wise over the same history — at every read
//! parallelism, for arbitrary histories and partitioning strategies.
//!
//! This is the oracle that replaces byte-identical store comparison
//! for the columnar format (the stored bytes differ by design; the
//! answers may not).

use std::sync::Arc;

use hgs_core::{KhopStrategy, PartitionStrategy, Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::{AttrValue, Event, EventKind, StorageLayout, TimeRange};
use hgs_store::{SimStore, StoreConfig};
use proptest::prelude::*;

fn fresh_store(m: usize, r: usize) -> Arc<SimStore> {
    Arc::new(SimStore::new(StoreConfig::new(m, r)))
}

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..40;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        5 => (0u64..40, 0u64..40, any::<bool>()).prop_map(|(src, dst, directed)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed }
        }),
        2 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        1 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::SetEdgeWeight {
            src,
            dst,
            weight: 2.5
        }),
        2 => (id.clone(), -9i64..9).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id,
            key: "k".into(),
            value: AttrValue::Int(v)
        }),
        1 => (0u64..40, 0u64..40, "[a-b]").prop_map(|(src, dst, key)| EventKind::SetEdgeAttr {
            src,
            dst,
            key,
            value: AttrValue::Bool(true)
        }),
        1 => id.prop_map(|id| EventKind::RemoveNodeAttr { id, key: "k".into() }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..300).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        2 => Just(PartitionStrategy::Random),
        1 => Just(PartitionStrategy::Locality {
            replicate_boundary: false
        }),
        1 => Just(PartitionStrategy::Locality {
            replicate_boundary: true
        }),
    ]
}

/// Compare every query primitive between the two handles.
fn assert_same_answers(row: &Tgi, col: &Tgi, end: u64) {
    let times = [0, end / 3, end / 2, end, end + 1];
    for c in [1usize, 2, 4] {
        for &t in &times {
            assert_eq!(
                row.try_snapshot_c(t, c).unwrap(),
                col.try_snapshot_c(t, c).unwrap(),
                "snapshot mismatch at t={t} c={c}"
            );
        }
    }
    let range = TimeRange::new(0, end + 1);
    for nid in 0..8u64 {
        assert_eq!(
            row.node_at(nid, end / 2),
            col.node_at(nid, end / 2),
            "node_at mismatch for nid={nid}"
        );
        assert_eq!(
            row.try_node_history(nid, range).unwrap(),
            col.try_node_history(nid, range).unwrap(),
            "node_history mismatch for nid={nid}"
        );
        assert_eq!(
            row.try_version_chain(nid).unwrap(),
            col.try_version_chain(nid).unwrap(),
            "version_chain mismatch for nid={nid}"
        );
        for strategy in [KhopStrategy::ViaSnapshot, KhopStrategy::Recursive] {
            assert_eq!(
                row.try_khop_with(nid, end / 2, 2, strategy).unwrap(),
                col.try_khop_with(nid, end / 2, 2, strategy).unwrap(),
                "khop mismatch for nid={nid} strategy={strategy:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary histories (removals, attribute churn, duplicated
    /// events) through small index shapes: both layouts, all query
    /// primitives, identical answers.
    #[test]
    fn layouts_answer_identically_on_arbitrary_histories(
        history in arb_history(),
        l in 5usize..40,
        ns in 1u32..5,
        strategy in arb_strategy(),
    ) {
        let base = TgiConfig {
            events_per_timespan: 120.max(l),
            eventlist_size: l,
            partition_size: 10,
            horizontal_partitions: ns,
            strategy,
            ..TgiConfig::default()
        };
        let row = Tgi::try_build_on(
            base.with_layout(StorageLayout::RowWise),
            fresh_store(2, 1),
            &history,
        )
        .expect("row-wise build");
        let col = Tgi::try_build_on(
            base.with_layout(StorageLayout::Columnar),
            fresh_store(2, 1),
            &history,
        )
        .expect("columnar build");
        let end = history.last().map(|e| e.time).unwrap_or(0);
        assert_same_answers(&row, &col, end);
    }

    /// Generated growth traces through realistic shapes, including the
    /// parallel build path at c=4.
    #[test]
    fn layouts_answer_identically_on_growth_traces(
        seed in any::<u64>(),
        n_events in 400usize..1_200,
        ts in 300usize..900,
        l in 40usize..160,
        ns in 1u32..4,
        strategy in arb_strategy(),
    ) {
        let trace = WikiGrowth { seed, ..WikiGrowth::sized(n_events) }.generate();
        let base = TgiConfig {
            events_per_timespan: ts.max(l),
            eventlist_size: l,
            partition_size: 50,
            horizontal_partitions: ns,
            strategy,
            ..TgiConfig::default()
        };
        let row = Tgi::try_build_on_c(
            base.with_layout(StorageLayout::RowWise),
            fresh_store(2, 1),
            &trace,
            4,
        )
        .expect("row-wise build");
        let col = Tgi::try_build_on_c(
            base.with_layout(StorageLayout::Columnar),
            fresh_store(2, 1),
            &trace,
            4,
        )
        .expect("columnar build");
        let end = trace.last().unwrap().time;
        assert_same_answers(&row, &col, end);
    }
}

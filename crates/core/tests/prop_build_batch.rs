//! Write-path equivalence: the batched, parallel construction path
//! must produce a **byte-identical store** to the seed sequential
//! row-at-a-time build (row-for-row table/key/value equality, per
//! machine), at every client width — and ingest through the same
//! buffered path must answer queries exactly like a from-scratch
//! rebuild over the concatenated history.

use std::sync::Arc;

use hgs_core::{PartitionStrategy, Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::{AttrValue, Event, EventKind};
use hgs_store::{SimStore, StoreConfig};
use proptest::prelude::*;

fn fresh_store(m: usize, r: usize) -> Arc<SimStore> {
    Arc::new(SimStore::new(StoreConfig::new(m, r)))
}

/// The seed reference: sequential encode (c=1), row-at-a-time writes.
fn build_rowwise(cfg: TgiConfig, store: Arc<SimStore>, events: &[Event]) -> Tgi {
    Tgi::try_build_on(cfg.with_write_batch_rows(0), store, events).expect("rowwise build")
}

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..40;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        5 => (0u64..40, 0u64..40, any::<bool>()).prop_map(|(src, dst, directed)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed }
        }),
        2 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        1 => (0u64..40, 0u64..40).prop_map(|(src, dst)| EventKind::SetEdgeWeight {
            src,
            dst,
            weight: 2.5
        }),
        2 => (id.clone(), -9i64..9).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id,
            key: "k".into(),
            value: AttrValue::Int(v)
        }),
        1 => id.prop_map(|id| EventKind::RemoveNodeAttr { id, key: "k".into() }),
    ]
}

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..300).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        2 => Just(PartitionStrategy::Random),
        1 => Just(PartitionStrategy::Locality {
            replicate_boundary: false
        }),
        1 => Just(PartitionStrategy::Locality {
            replicate_boundary: true
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched builds (every client width, including mid-span buffer
    /// flushes forced by tiny `write_batch_rows`) place exactly the
    /// rows the seed row-at-a-time sequential build places.
    #[test]
    fn batched_parallel_build_is_byte_identical_to_seed_sequential(
        seed in any::<u64>(),
        n_events in 400usize..1_500,
        ts in 300usize..900,
        l in 40usize..160,
        arity in 2usize..4,
        ns in 1u32..5,
        strategy in arb_strategy(),
        batch_rows in prop_oneof![Just(7usize), Just(256), Just(8192)],
    ) {
        let trace = WikiGrowth { seed, ..WikiGrowth::sized(n_events) }.generate();
        let cfg = TgiConfig {
            events_per_timespan: ts.max(l),
            eventlist_size: l,
            arity,
            partition_size: 50,
            horizontal_partitions: ns,
            strategy,
            ..TgiConfig::default()
        };
        let reference_store = fresh_store(3, 2);
        build_rowwise(cfg, reference_store.clone(), &trace);
        let reference = reference_store.content_rows();
        for c in [1usize, 2, 4] {
            let store = fresh_store(3, 2);
            Tgi::try_build_on_c(
                cfg.with_write_batch_rows(batch_rows),
                store.clone(),
                &trace,
                c,
            )
            .expect("batched build");
            prop_assert_eq!(
                &store.content_rows(),
                &reference,
                "store content diverged at c={} batch_rows={}",
                c,
                batch_rows
            );
        }
    }

    /// Arbitrary histories (removals, attribute churn, duplicated
    /// events) through small index shapes: parallel scoped-replay
    /// encoding must place the seed's exact rows, and appends through
    /// the buffered path must (a) keep store equality with a rowwise
    /// handle ingesting the same batches and (b) answer queries like a
    /// from-scratch rebuild over the concatenated history.
    #[test]
    fn ingest_through_buffered_path_matches_rebuild(
        history in arb_history(),
        l in 5usize..40,
        ns in 1u32..5,
        strategy in arb_strategy(),
        split_num in 1usize..4,
        clients in 2usize..5,
    ) {
        let cfg = TgiConfig {
            events_per_timespan: 120.max(l),
            eventlist_size: l,
            partition_size: 10,
            horizontal_partitions: ns,
            strategy,
            ..TgiConfig::default()
        };
        // Snap the split to a timestamp-group boundary: an append may
        // not start before the index's end of history (last time + 1).
        let mut split = history.len() * split_num / 4;
        while split > 0 && split < history.len() && history[split].time <= history[split - 1].time {
            split += 1;
        }
        let (prefix, suffix) = history.split_at(split.min(history.len()));

        // Seed rowwise handle: build prefix, append suffix.
        let seed_store = fresh_store(2, 1);
        let mut seed_tgi = build_rowwise(cfg, seed_store.clone(), prefix);
        seed_tgi.try_append_events(suffix).expect("rowwise append");

        // Batched parallel handle ingesting the same batches.
        let store = fresh_store(2, 1);
        let mut tgi = Tgi::try_build_on_c(cfg.with_write_batch_rows(16), store.clone(), prefix, clients)
            .expect("batched build");
        tgi.try_append_events(suffix).expect("batched append");
        prop_assert_eq!(
            &store.content_rows(),
            &seed_store.content_rows(),
            "ingest store content diverged at c={}",
            clients
        );

        // Query equivalence against a from-scratch rebuild (span
        // layout differs, answers must not).
        let rebuilt = build_rowwise(cfg, fresh_store(2, 1), &history);
        let end = history.last().map(|e| e.time).unwrap_or(0);
        let times: Vec<u64> = vec![0, end / 3, end / 2, end, end + 1];
        for &t in &times {
            prop_assert_eq!(
                tgi.try_snapshot(t).unwrap(),
                rebuilt.try_snapshot(t).unwrap(),
                "snapshot mismatch at t={}",
                t
            );
        }
        for id in 0..6u64 {
            prop_assert_eq!(
                tgi.node_at(id, end / 2),
                rebuilt.node_at(id, end / 2),
                "node_at mismatch for id={}",
                id
            );
        }
    }
}

/// A fixed-shape smoke case that always runs the parallel encode path
/// with aux boundary replication and version chains — the heaviest
/// write-path configuration — without depending on proptest shrinking.
#[test]
fn parallel_aux_build_matches_rowwise_exactly() {
    let trace = WikiGrowth::sized(2_500).generate();
    let cfg = TgiConfig {
        events_per_timespan: 800,
        eventlist_size: 100,
        partition_size: 40,
        horizontal_partitions: 3,
        strategy: PartitionStrategy::Locality {
            replicate_boundary: true,
        },
        ..TgiConfig::default()
    };
    let reference_store = fresh_store(4, 1);
    build_rowwise(cfg, reference_store.clone(), &trace);
    let store = fresh_store(4, 1);
    Tgi::try_build_on_c(cfg, store.clone(), &trace, 4).expect("parallel build");
    assert_eq!(store.content_rows(), reference_store.content_rows());
    // And the batched round trips actually happened: far fewer write
    // batches than rows written.
    let stats = store.stats_snapshot();
    let puts: u64 = stats.iter().map(|m| m.puts).sum();
    let batches: u64 = stats.iter().map(|m| m.put_batches).sum();
    assert!(batches > 0, "batched path must issue write batches");
    assert!(
        batches * 10 <= puts,
        "write round trips ({batches}) must stay well under row count ({puts})"
    );
}

//! End-to-end TGI correctness: every retrieval primitive is validated
//! against brute-force replay of the event history, across the
//! configuration space (partitioning strategy, horizontal partitions,
//! eventlist size, partition size, arity, multiple timespans,
//! incremental appends).

use hgs_core::{KhopStrategy, PartitionStrategy, Tgi, TgiConfig};
use hgs_datagen::{augment_with_churn, LabeledChurn, WikiGrowth};
use hgs_delta::{Delta, Event, FxHashSet, NodeId, Time, TimeRange};
use hgs_store::StoreConfig;

fn small_cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_500,
        eventlist_size: 100,
        arity: 2,
        partition_size: 60,
        horizontal_partitions: 3,
        ..TgiConfig::default()
    }
}

fn trace() -> Vec<Event> {
    let base = WikiGrowth {
        events: 3_000,
        seed: 7,
        ..WikiGrowth::default()
    }
    .generate();
    augment_with_churn(&base, 1_500, 0.4, 11)
}

fn check_snapshots(tgi: &Tgi, events: &[Event], times: &[Time]) {
    for &t in times {
        let got = tgi.snapshot(t);
        let want = Delta::snapshot_by_replay(events, t);
        assert_eq!(
            got.cardinality(),
            want.cardinality(),
            "node count mismatch at t={t}"
        );
        // Full structural equality.
        assert_eq!(got, want, "snapshot mismatch at t={t}");
    }
}

fn sample_times(events: &[Event]) -> Vec<Time> {
    let end = events.last().unwrap().time;
    vec![
        0,
        end / 7,
        end / 3,
        end / 2,
        end * 3 / 4,
        end - 1,
        end,
        end + 50,
    ]
}

#[test]
fn snapshots_match_replay_random_partitioning() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(3, 1), &events);
    assert!(tgi.span_count() >= 2, "want multiple timespans");
    check_snapshots(&tgi, &events, &sample_times(&events));
}

#[test]
fn snapshots_match_replay_locality_partitioning() {
    let events = trace();
    let cfg = small_cfg().with_strategy(PartitionStrategy::Locality {
        replicate_boundary: false,
    });
    let tgi = Tgi::build(cfg, StoreConfig::new(3, 1), &events);
    check_snapshots(&tgi, &events, &sample_times(&events));
}

#[test]
fn snapshots_match_replay_with_replication_aux() {
    let events = trace();
    let cfg = small_cfg().with_strategy(PartitionStrategy::Locality {
        replicate_boundary: true,
    });
    let tgi = Tgi::build(cfg, StoreConfig::new(3, 1), &events);
    // Aux deltas must not pollute snapshots.
    check_snapshots(&tgi, &events, &sample_times(&events));
}

#[test]
fn snapshots_match_for_various_parallel_fetch_factors() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(2, 1), &events);
    let t = events.last().unwrap().time / 2;
    let want = Delta::snapshot_by_replay(&events, t);
    for c in [1usize, 2, 4, 8] {
        assert_eq!(tgi.snapshot_c(t, c), want, "c={c}");
    }
}

/// A degenerate plan (single-point read routed through the multipoint
/// machinery, one horizontal partition → one `(sid, leaf)` work item)
/// must clamp its fan-out to the item count: no matter how many
/// clients are requested, the store sees exactly one grouped scan per
/// read. (That the single-item case also runs inline, with no thread
/// spawn at all, is asserted in `hgs_store::parallel`'s tests.)
#[test]
fn degenerate_single_point_plan_clamps_fanout() {
    let events = WikiGrowth {
        events: 1_500,
        seed: 5,
        ..WikiGrowth::default()
    }
    .generate();
    let cfg = TgiConfig {
        events_per_timespan: 2_000,
        eventlist_size: 200,
        partition_size: 100,
        horizontal_partitions: 1,
        ..TgiConfig::default()
    };
    let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
    let t = events.last().unwrap().time / 2;
    let want = tgi.try_snapshot_uncached_c(t, 1).unwrap();
    for c in [1usize, 4, 16] {
        let before = tgi.store().stats_snapshot();
        assert_eq!(tgi.snapshot_c(t, c), want, "c={c}");
        let diff = hgs_store::SimStore::stats_since(&tgi.store().stats_snapshot(), &before);
        let batches: u64 = diff.iter().map(|m| m.batches).sum();
        assert_eq!(batches, 1, "one (sid, leaf) item → one grouped scan, c={c}");
    }
}

#[test]
fn snapshots_match_across_parameter_grid() {
    let events: Vec<Event> = WikiGrowth {
        events: 1_200,
        seed: 3,
        ..WikiGrowth::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    for (l, ps, ns, arity) in [
        (50usize, 30usize, 1u32, 2usize),
        (200, 1000, 2, 3),
        (400, 10, 4, 4),
    ] {
        let cfg = TgiConfig {
            events_per_timespan: 600,
            eventlist_size: l,
            arity,
            partition_size: ps,
            horizontal_partitions: ns,
            ..TgiConfig::default()
        };
        let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), &events);
        for t in [0, end / 3, end / 2, end] {
            assert_eq!(
                tgi.snapshot(t),
                Delta::snapshot_by_replay(&events, t),
                "l={l} ps={ps} ns={ns} arity={arity} t={t}"
            );
        }
    }
}

#[test]
fn node_at_matches_replay() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(3, 1), &events);
    let end = events.last().unwrap().time;
    for t in [end / 4, end / 2, end] {
        let want = Delta::snapshot_by_replay(&events, t);
        // Check a deterministic sample of nodes, including absent ones.
        let ids: Vec<NodeId> = want.sorted_ids().into_iter().step_by(37).take(30).collect();
        for id in ids {
            assert_eq!(
                tgi.node_at(id, t).as_ref(),
                want.node(id),
                "node {id} at t={t}"
            );
        }
        assert_eq!(tgi.node_at(99_999_999, t), None);
    }
}

#[test]
fn node_history_matches_brute_force() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(3, 1), &events);
    let end = events.last().unwrap().time;
    let range = TimeRange::new(end / 4, end * 3 / 4);

    // Pick nodes with real activity in the range.
    let state = Delta::snapshot_by_replay(&events, end);
    let sample: Vec<NodeId> = state
        .sorted_ids()
        .into_iter()
        .step_by(53)
        .take(20)
        .collect();
    for id in sample {
        let h = tgi.node_history(id, range);
        // Brute force: initial state + events touching id in range.
        let want_initial = Delta::snapshot_by_replay(&events, range.start);
        assert_eq!(
            h.initial.as_ref(),
            want_initial.node(id),
            "initial for {id}"
        );
        let want_events: Vec<&Event> = events
            .iter()
            .filter(|e| {
                let (a, b) = e.kind.touched();
                (a == id || b == Some(id)) && e.time > range.start && e.time < range.end
            })
            .collect();
        assert_eq!(h.events.len(), want_events.len(), "event count for {id}");
        for (got, want) in h.events.iter().zip(want_events) {
            assert_eq!(got, want, "event mismatch for {id}");
        }
        // Final version equals replayed state at range end - 1.
        let want_final = Delta::snapshot_by_replay(&events, range.end - 1);
        let versions = h.versions();
        assert_eq!(
            versions.last().unwrap().1.as_ref(),
            want_final.node(id),
            "final version for {id}"
        );
    }
}

#[test]
fn khop_strategies_agree_with_replay_bfs() {
    let events = trace();
    for strategy in [
        PartitionStrategy::Random,
        PartitionStrategy::Locality {
            replicate_boundary: true,
        },
    ] {
        let cfg = small_cfg().with_strategy(strategy);
        let tgi = Tgi::build(cfg, StoreConfig::new(3, 1), &events);
        let end = events.last().unwrap().time;
        let t = end / 2;
        let want_state = Delta::snapshot_by_replay(&events, t);
        let centers: Vec<NodeId> = want_state
            .sorted_ids()
            .into_iter()
            .step_by(101)
            .take(8)
            .collect();
        for center in centers {
            for k in [0usize, 1, 2] {
                let want_ids = bfs_ids(&want_state, center, k);
                let via_snap = tgi.khop_with(center, t, k, KhopStrategy::ViaSnapshot);
                let recursive = tgi.khop_with(center, t, k, KhopStrategy::Recursive);
                let got_snap: FxHashSet<NodeId> = via_snap.ids().collect();
                let got_rec: FxHashSet<NodeId> = recursive.ids().collect();
                assert_eq!(got_snap, want_ids, "via-snapshot ids center={center} k={k}");
                assert_eq!(got_rec, want_ids, "recursive ids center={center} k={k}");
                // Node states must match the replayed truth too.
                for id in recursive.ids() {
                    assert_eq!(
                        recursive.node(id),
                        want_state.node(id),
                        "recursive state center={center} k={k} node={id}"
                    );
                }
            }
        }
    }
}

#[test]
fn one_hop_history_matches_neighborhood_replay() {
    let events = LabeledChurn {
        nodes: 150,
        edge_events: 1_200,
        label_flips: 400,
        seed: 5,
    }
    .generate();
    let tgi = Tgi::build(
        TgiConfig {
            events_per_timespan: 800,
            eventlist_size: 100,
            partition_size: 40,
            horizontal_partitions: 2,
            ..TgiConfig::default()
        },
        StoreConfig::new(2, 1),
        &events,
    );
    let end = events.last().unwrap().time;
    let range = TimeRange::new(end / 4, end);
    let center: NodeId = 7;
    let nh = tgi.one_hop_history(center, range);

    // At several timepoints the materialized neighborhood must equal
    // the replayed 1-hop neighborhood.
    for t in [range.start, (range.start + end) / 2, end - 1] {
        let state = Delta::snapshot_by_replay(&events, t);
        let sub = nh.subgraph_at(t);
        if let Some(c) = state.node(center) {
            let want: FxHashSet<NodeId> =
                c.all_neighbors().chain(std::iter::once(center)).collect();
            let got: FxHashSet<NodeId> = sub.ids().collect();
            assert_eq!(got, want, "1-hop ids at t={t}");
            for id in sub.ids() {
                assert_eq!(sub.node(id), state.node(id), "1-hop state {id} at t={t}");
            }
        } else {
            assert!(sub.is_empty());
        }
    }
}

#[test]
fn incremental_append_equals_bulk_build() {
    let events = trace();
    let mid = events.len() / 2;
    // Align the split to a timestamp boundary so both halves are valid
    // batches.
    let mut cut = mid;
    while cut < events.len() && events[cut].time == events[cut - 1].time {
        cut += 1;
    }
    let bulk = Tgi::build(small_cfg(), StoreConfig::new(2, 1), &events);
    let mut incr = Tgi::build(small_cfg(), StoreConfig::new(2, 1), &events[..cut]);
    incr.append_events(&events[cut..]);

    let end = events.last().unwrap().time;
    for t in [0, end / 3, (3 * end) / 5, end] {
        assert_eq!(
            incr.snapshot(t),
            bulk.snapshot(t),
            "incremental vs bulk at t={t}"
        );
    }
    // Node histories spanning the append boundary must see both halves.
    let state = Delta::snapshot_by_replay(&events, end);
    let some_node = state.sorted_ids()[0];
    let r = TimeRange::new(0, end + 1);
    assert_eq!(
        incr.node_history(some_node, r).events,
        bulk.node_history(some_node, r).events
    );
}

#[test]
fn version_chains_are_complete_and_sorted() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(2, 1), &events);
    let state = Delta::snapshot_by_replay(&events, u64::MAX);
    for id in state.sorted_ids().into_iter().step_by(71).take(15) {
        let chain = tgi.version_chain(id);
        assert!(!chain.is_empty(), "node {id} must have a chain");
        assert!(
            chain.windows(2).all(|w| w[0].time <= w[1].time),
            "sorted chain for {id}"
        );
        // Every event touching the node must be covered by some chain
        // entry's chunk (same tsid+chunk appears once per run).
        let touch_times: Vec<Time> = events
            .iter()
            .filter(|e| {
                let (a, b) = e.kind.touched();
                a == id || b == Some(id)
            })
            .map(|e| e.time)
            .collect();
        assert!(!touch_times.is_empty());
        // The first touch must not precede the first chain entry's time.
        assert!(chain[0].time <= touch_times[0]);
    }
}

#[test]
fn empty_history_index_answers_empty() {
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(2, 1), &[]);
    assert!(tgi.snapshot(0).is_empty());
    assert!(tgi.snapshot(1_000_000).is_empty());
    assert_eq!(tgi.node_at(1, 5), None);
    assert!(tgi
        .node_history(1, TimeRange::new(0, 100))
        .events
        .is_empty());
}

#[test]
fn replicated_store_survives_machine_failure() {
    let events = trace();
    let tgi = Tgi::build(small_cfg(), StoreConfig::new(3, 2), &events);
    let end = events.last().unwrap().time;
    let want = Delta::snapshot_by_replay(&events, end / 2);
    tgi.store().fail_machine(0);
    assert_eq!(tgi.snapshot(end / 2), want, "failover snapshot");
    tgi.store().heal_machine(0);
}

fn bfs_ids(state: &Delta, center: NodeId, k: usize) -> FxHashSet<NodeId> {
    let mut seen = FxHashSet::default();
    if state.node(center).is_none() {
        return seen;
    }
    seen.insert(center);
    let mut frontier = vec![center];
    for _ in 0..k {
        let mut next = Vec::new();
        for id in frontier {
            for nbr in state.node(id).into_iter().flat_map(|n| n.all_neighbors()) {
                if seen.insert(nbr) {
                    next.push(nbr);
                }
            }
        }
        frontier = next;
    }
    seen
}

//! Failure injection: when every replica of a chunk a query needs is
//! down, the `try_*` read path must return
//! `StoreError::Unavailable` — never a silently *smaller* graph — and
//! a build against a dead cluster must error instead of dropping
//! deltas.

use std::sync::Arc;

use hgs_core::{BuildError, Tgi, TgiConfig};
use hgs_datagen::WikiGrowth;
use hgs_delta::TimeRange;
use hgs_store::{PlacementKey, SimStore, StoreConfig, StoreError};

fn trace() -> Vec<hgs_delta::Event> {
    WikiGrowth::sized(3_000).generate()
}

fn cfg() -> TgiConfig {
    TgiConfig {
        events_per_timespan: 1_200,
        eventlist_size: 150,
        partition_size: 60,
        ..TgiConfig::default()
    }
}

#[test]
fn down_chunk_errors_instead_of_shrinking_the_snapshot() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 1), &events);
    let reference = tgi.try_snapshot(t).expect("healthy cluster");

    // With replication 1, failing any machine that holds part of the
    // query's delta path must surface as Unavailable. A machine that
    // happens to hold nothing the query needs may still answer — but
    // then the answer must be *complete*, never a subset.
    let mut errors = 0;
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
        match tgi.try_snapshot(t) {
            Err(StoreError::Unavailable { .. }) => errors += 1,
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(snap) => assert_eq!(
                snap, reference,
                "a readable snapshot must never silently shrink"
            ),
        }
        tgi.store().heal_machine(m);
    }
    assert!(errors > 0, "no machine failure surfaced as Unavailable");
    assert_eq!(tgi.try_snapshot(t).unwrap(), reference, "healed cluster");
}

#[test]
fn every_read_primitive_surfaces_total_failure() {
    let events = trace();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    let range = TimeRange::new(end / 4, (3 * end) / 4);
    assert!(matches!(
        tgi.try_snapshot(end / 2),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_snapshots(&[end / 3, end / 2]),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_node_at(0, end / 2),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_node_history(0, range),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_one_hop_history(0, range),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_khop(0, end / 2, 2),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_sid_state_at(0, end / 2),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_node_histories_for_sid(0, range),
        Err(StoreError::Unavailable { .. })
    ));
}

/// The read cache may serve fully-warm reads without touching the
/// store (its entries are exact copies of write-once rows), but an
/// *evicted* entry is gone: the next read must re-run the fallible
/// fetch and surface `Unavailable` when the row's replicas are dead —
/// never serve a stale or partial graph reconstructed around the gap.
#[test]
fn evicted_row_refetch_surfaces_unavailable_not_stale_data() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let nid = 0u64;
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);

    // Warm the cache with this exact read.
    let healthy = tgi.try_node_at(nid, t).expect("healthy cluster");
    assert!(tgi.cache_stats().bytes > 0, "warm cache retains entries");

    // Kill every replica. The warm cache legitimately still answers —
    // its entries are copies of immutable rows, morally replicas.
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    assert_eq!(
        tgi.try_node_at(nid, t).expect("served from warm cache"),
        healthy,
        "a warm hit must serve the exact same state"
    );

    // Evict the rows (LRU pressure via a zero budget — no wholesale
    // clear() path exists anymore, this drains the LRU tail-first).
    tgi.set_read_cache_budget(0);
    assert_eq!(tgi.cache_stats().bytes, 0);
    tgi.set_read_cache_budget(hgs_core::DEFAULT_READ_CACHE_BYTES);

    // The re-fetch must fail loudly, not serve stale/partial data.
    assert!(matches!(
        tgi.try_node_at(nid, t),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_snapshot(t),
        Err(StoreError::Unavailable { .. })
    ));

    // Healed cluster: the same read round-trips to the same answer.
    tgi.store().heal_all();
    assert_eq!(tgi.try_node_at(nid, t).unwrap(), healthy);
}

/// A warm *snapshot* still notices a dead chunk: the planner's
/// per-chunk eventlist scan is never skipped, so even a fully-cached
/// leaf state cannot mask total chunk unavailability.
#[test]
fn warm_snapshot_still_surfaces_dead_chunks() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 1), &events);
    tgi.try_snapshot(t).expect("warm the cache");
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    assert!(matches!(
        tgi.try_snapshot(t),
        Err(StoreError::Unavailable { .. })
    ));
}

/// The work-stealing parallel fill must be all-or-nothing: with a
/// chunk's replicas dead, `try_snapshots_c` surfaces
/// `StoreError::Unavailable` at *every* fetch parallelism — never a
/// partial snapshot assembled from the items that did succeed — and
/// whether a given machine failure is fatal does not depend on `c`.
#[test]
fn dead_chunk_mid_steal_surfaces_unavailable_at_every_parallelism() {
    let events = trace();
    let end = events.last().unwrap().time;
    let times = [end / 4, end / 2, (3 * end) / 4];
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 1), &events);
    let reference = tgi.try_snapshots_c(&times, 1).expect("healthy cluster");
    let cs = [1usize, 2, 4, 8];
    let mut fatal_machines = 0;
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
        let errors = cs
            .iter()
            .filter(|&&c| match tgi.try_snapshots_c(&times, c) {
                Err(StoreError::Unavailable { .. }) => true,
                Err(other) => panic!("unexpected error kind: {other}"),
                Ok(snaps) => {
                    assert_eq!(
                        snaps, reference,
                        "a readable batch must be complete (m={m} c={c})"
                    );
                    false
                }
            })
            .count();
        assert!(
            errors == 0 || errors == cs.len(),
            "machine {m}: failure must be fatal at every c or none, got {errors}/{}",
            cs.len()
        );
        fatal_machines += usize::from(errors > 0);
        tgi.store().heal_machine(m);
    }
    assert!(fatal_machines > 0, "no machine failure was ever fatal");
    assert_eq!(tgi.try_snapshots_c(&times, 4).unwrap(), reference);
}

#[test]
#[should_panic(expected = "TGI read failed")]
fn infallible_snapshot_panics_rather_than_shrinking() {
    let events = trace();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    let _ = tgi.snapshot(end / 2);
}

#[test]
fn replication_masks_a_single_machine_failure() {
    let events = trace();
    let end = events.last().unwrap().time;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 2), &events);
    let reference = tgi.try_snapshot(end / 2).unwrap();
    tgi.store().fail_machine(1);
    assert_eq!(
        tgi.try_snapshot(end / 2).unwrap(),
        reference,
        "replica failover must keep reads exact"
    );
    let shared = tgi.try_snapshots(&[end / 3, end / 2, end]).unwrap();
    assert_eq!(shared[1], reference);
}

#[test]
fn build_against_dead_cluster_errors() {
    let events = trace();
    let store = Arc::new(SimStore::new(StoreConfig::new(3, 1)));
    for m in 0..store.machine_count() {
        store.fail_machine(m);
    }
    assert!(matches!(
        Tgi::try_build_on(cfg(), store, &events),
        Err(BuildError::Store(StoreError::Unavailable { .. }))
    ));
}

#[test]
fn failed_append_poisons_the_handle() {
    let events = trace();
    let mid = events.len() / 2;
    let mut tgi =
        Tgi::try_build(cfg(), StoreConfig::new(3, 1), &events[..mid]).expect("healthy build");
    assert!(!tgi.is_poisoned());
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    assert!(matches!(
        tgi.try_append_events(&events[mid..]),
        Err(BuildError::Store(StoreError::Unavailable { .. }))
    ));
    assert!(tgi.is_poisoned());
    // Even on a healed cluster, retrying the batch on this handle
    // would double-apply events: the append must refuse.
    tgi.store().heal_all();
    assert!(matches!(
        tgi.try_append_events(&events[mid..]),
        Err(BuildError::Poisoned)
    ));
    // Queries still answer from what was durably written.
    let end = events[mid - 1].time;
    assert!(tgi.try_snapshot(end / 2).is_ok());
}

/// Write-path failure injection for the batched path: a machine dying
/// before the span's `put_batch` flush must surface
/// `StoreError::Unavailable` from `try_build` — never a silently
/// shrunken index — and the whole flushed batch must still be
/// processed, with the failed/partial put counters accounting for
/// every row that could not land (rows on healthy machines included
/// in the puts count).
#[test]
fn machine_death_mid_batched_build_surfaces_unavailable_and_accounts_rows() {
    let events = trace();
    for c in [1usize, 4] {
        let store = Arc::new(SimStore::new(StoreConfig::new(4, 1)));
        // Kill the machine holding span 0 / sid 0's delta chunk and
        // force small flushes, so the *batched write* itself is what
        // fails (not an earlier metadata read).
        store.fail_machine(store.machine_for(PlacementKey::new(0, 0).token(), 0));
        let before = store.stats_snapshot();
        let err = Tgi::try_build_on_c(cfg().with_write_batch_rows(32), store.clone(), &events, c)
            .err()
            .expect("build with a dead machine must fail");
        assert!(matches!(
            err,
            BuildError::Store(StoreError::Unavailable { .. })
        ));
        // Every row of the failed flush is accounted: the batch was
        // processed to completion, so rows placed on live machines
        // landed (counted in puts) and every row aimed at the dead
        // machine is in failed_puts — none simply vanished.
        let diff = SimStore::stats_since(&store.stats_snapshot(), &before);
        let live_puts: u64 = diff.iter().map(|m| m.puts).sum();
        assert!(
            store.failed_put_count() > 0,
            "c={c}: dead-machine rows must be counted as failed"
        );
        assert!(live_puts > 0, "c={c}: healthy machines' rows still land");
        assert_eq!(store.partial_put_count(), 0, "r=1 writes cannot be partial");
    }
}

/// Same injection against `try_append_events`: the first append lands
/// healthy, the machine dies, the second append fails loudly and
/// poisons the handle, and the batch's rows are all accounted.
#[test]
fn machine_death_mid_batched_append_surfaces_unavailable_and_accounts_rows() {
    let events = trace();
    let mid = events.len() / 2;
    for c in [1usize, 4] {
        let store = Arc::new(SimStore::new(StoreConfig::new(4, 1)));
        let mut tgi = Tgi::try_build_on_c(
            cfg().with_write_batch_rows(32),
            store.clone(),
            &events[..mid],
            c,
        )
        .expect("healthy build");
        assert_eq!(store.failed_put_count(), 0);
        let rows_before_failure = store.row_count();
        // The append continues the timespan sequence: kill the machine
        // holding the next span's sid-0 delta chunk.
        let next_tsid = tgi.span_count() as u32;
        store.fail_machine(store.machine_for(PlacementKey::new(next_tsid, 0).token(), 0));
        assert!(matches!(
            tgi.try_append_events(&events[mid..]),
            Err(BuildError::Store(StoreError::Unavailable { .. }))
        ));
        assert!(tgi.is_poisoned(), "c={c}: failed append must poison");
        assert!(
            store.failed_put_count() > 0,
            "c={c}: the dead machine's rows are accounted as failed"
        );
        assert!(
            store.row_count() >= rows_before_failure,
            "c={c}: a failed batch never un-writes existing rows"
        );
        // Replication masks the same failure: the identical append on
        // an r=2 cluster succeeds with partial-put accounting instead.
        let store2 = Arc::new(SimStore::new(StoreConfig::new(4, 2)));
        let mut tgi2 = Tgi::try_build_on_c(
            cfg().with_write_batch_rows(32),
            store2.clone(),
            &events[..mid],
            c,
        )
        .expect("healthy build");
        store2.fail_machine(store2.machine_for(PlacementKey::new(next_tsid, 0).token(), 0));
        tgi2.try_append_events(&events[mid..])
            .expect("one replica is enough");
        assert!(
            store2.partial_put_count() > 0,
            "c={c}: degraded writes must be counted partial"
        );
        assert_eq!(store2.failed_put_count(), 0);
    }
}

#[test]
#[should_panic(expected = "TGI build failed")]
fn infallible_build_panics_on_dead_cluster() {
    let events = trace();
    let store = Arc::new(SimStore::new(StoreConfig::new(3, 1)));
    for m in 0..store.machine_count() {
        store.fail_machine(m);
    }
    // hgs-lint: allow(no-swallowed-result, "should_panic test: the expected panic means no value is ever produced")
    let _ = Tgi::build_on(cfg(), store, &events);
}

#[test]
fn degraded_build_succeeds_but_counts_partial_writes() {
    let events = trace();
    let end = events.last().unwrap().time;
    let store = Arc::new(SimStore::new(StoreConfig::new(4, 2)));
    store.fail_machine(2);
    let tgi = Tgi::try_build_on(cfg(), store, &events).expect("one replica is enough to build");
    assert!(
        tgi.store().partial_put_count() > 0,
        "writes that missed the down replica must be accounted"
    );
    assert_eq!(tgi.store().failed_put_count(), 0);
    // The surviving replicas answer exactly.
    let healthy = Tgi::build(cfg(), StoreConfig::new(4, 2), &events);
    assert_eq!(
        tgi.try_snapshot(end / 2).unwrap(),
        healthy.try_snapshot(end / 2).unwrap()
    );
}

#[test]
fn label_index_reads_surface_total_failure_and_heal() {
    let events = hgs_datagen::SkewedLabels {
        nodes: 200,
        edge_events: 1_000,
        attr_churn: 500,
        ..Default::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    for m in 0..tgi.store().machine_count() {
        tgi.store().fail_machine(m);
    }
    assert!(matches!(
        tgi.try_nodes_with_label_at("Label00", t),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_nodes_matching_at(
            hgs_datagen::CHURN_KEY,
            &hgs_delta::AttrValue::Text("A".into()),
            t
        ),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        tgi.try_attr_history(0, hgs_core::LABEL_KEY),
        Err(StoreError::Unavailable { .. })
    ));
    tgi.store().heal_all();
    // Healed: indexed answers agree with the materialized oracle.
    let got = tgi.try_nodes_with_label_at("Label00", t).expect("healed");
    let want = tgi
        .try_nodes_matching_at_materialized(
            hgs_core::LABEL_KEY,
            &hgs_delta::AttrValue::Text("Label00".into()),
            t,
        )
        .expect("healed oracle");
    assert_eq!(got, want);
    assert!(
        !got.is_empty(),
        "the hot label matches someone at mid-trace"
    );
}

#[test]
fn disabled_index_fallback_is_explicit_never_silent() {
    let events = hgs_datagen::SkewedLabels {
        nodes: 200,
        edge_events: 1_000,
        attr_churn: 500,
        ..Default::default()
    }
    .generate();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let off = Tgi::build(
        cfg().with_secondary_indexes(false),
        StoreConfig::new(3, 1),
        &events,
    );
    // The fallback materializes a snapshot; on a dead cluster that
    // must error — never return an empty match set.
    for m in 0..off.store().machine_count() {
        off.store().fail_machine(m);
    }
    assert!(matches!(
        off.try_nodes_with_label_at("Label00", t),
        Err(StoreError::Unavailable { .. })
    ));
    assert!(matches!(
        off.try_attr_history(0, hgs_core::LABEL_KEY),
        Err(StoreError::Unavailable { .. })
    ));
    off.store().heal_all();
    // Healed, the fallback answers the same as an indexed build.
    let on = Tgi::build(cfg(), StoreConfig::new(3, 1), &events);
    assert_eq!(
        off.try_nodes_with_label_at("Label00", t).expect("fallback"),
        on.try_nodes_with_label_at("Label00", t).expect("indexed"),
    );
}

/// Transient outages are not machine deaths: a seeded [`FaultPlan`]
/// window makes every replica refuse for a stretch of *simulated
/// time*, the read path surfaces `StoreError::Transient` (honest
/// about the retry budget it burned), and once the window elapses the
/// same read answers again — nothing is ever healed by hand.
#[test]
fn transient_outage_surfaces_transient_and_self_heals_with_time() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 1), &events);
    let reference = tgi.try_snapshot(t).expect("healthy cluster");
    // A zero cache budget forces every read below to the store.
    tgi.set_read_cache_budget(0);
    let store = tgi.store();
    let mut plan = hgs_store::FaultPlan::new(7);
    for m in 0..store.machine_count() {
        plan = plan.with_outage(m, 0, 100_000);
    }
    store.set_fault_plan(Some(plan));
    match tgi.try_snapshot(t) {
        Err(StoreError::Transient { .. }) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
        Ok(_) => panic!("a total outage cannot answer"),
    }
    // Simulated time passes the window (plus breaker cooldown): the
    // identical read round-trips to the identical answer.
    store.advance_clock(1_000_000);
    assert_eq!(tgi.try_snapshot(t).expect("window elapsed"), reference);
}

/// Per-request flakes are absorbed by retries and replica failover
/// (a retry only happens when every replica flaked in one sweep, so
/// the rate is high enough to provoke some):
/// every readable answer is byte-identical to the fault-free
/// reference, any error is an honest `Transient`, and the stats
/// snapshot shows the retry layer did the absorbing.
#[test]
fn flaky_cluster_answers_exactly_or_errs_honestly() {
    let events = trace();
    let end = events.last().unwrap().time;
    let t = end / 2;
    let tgi = Tgi::build(cfg(), StoreConfig::new(4, 2), &events);
    let reference = tgi.try_snapshot(t).expect("healthy cluster");
    tgi.set_read_cache_budget(0);
    let store = tgi.store();
    store.set_retry_policy(hgs_store::RetryPolicy {
        max_attempts: 8,
        breaker_threshold: 0,
        ..hgs_store::RetryPolicy::default()
    });
    store.set_fault_plan(Some(
        hgs_store::FaultPlan::new(0xF1A6).with_flake_per_mille(250),
    ));
    let mut ok = 0;
    for _ in 0..8 {
        match tgi.try_snapshot(t) {
            Ok(snap) => {
                assert_eq!(snap, reference, "flaky reads must never shrink the graph");
                ok += 1;
            }
            Err(StoreError::Transient { .. }) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(
        ok > 0,
        "25% flakes under failover + 8 attempts mostly answer"
    );
    let retries: u64 = store.stats_snapshot().iter().map(|m| m.retries).sum();
    assert!(retries > 0, "the answers came through the retry layer");
    store.set_fault_plan(None);
    assert_eq!(tgi.try_snapshot(t).expect("detached plan"), reference);
}

//! Secondary-index equality: every label/attribute predicate query
//! answered from the change-point rows must equal the brute-force
//! snapshot-materialization oracle — across storage layouts, index
//! on/off, build parallelism, and build-vs-append construction.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig, LABEL_KEY};
use hgs_delta::{AttrValue, Event, EventKind, StorageLayout, Time};
use hgs_store::{SimStore, StoreConfig};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["Author", "Paper", "Venue"];
const KEYS: [&str; 2] = [LABEL_KEY, "Grade"];

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    let id = 0u64..24;
    prop_oneof![
        3 => id.clone().prop_map(|id| EventKind::AddNode { id }),
        1 => id.clone().prop_map(|id| EventKind::RemoveNode { id }),
        3 => (0u64..24, 0u64..24).prop_map(|(src, dst)| {
            EventKind::AddEdge { src, dst, weight: 1.0, directed: false }
        }),
        1 => (0u64..24, 0u64..24).prop_map(|(src, dst)| EventKind::RemoveEdge { src, dst }),
        4 => (id.clone(), 0usize..2, 0usize..3).prop_map(|(id, k, l)| EventKind::SetNodeAttr {
            id,
            key: KEYS[k].into(),
            value: AttrValue::Text(LABELS[l].into()),
        }),
        2 => (id, 0usize..2).prop_map(|(id, k)| EventKind::RemoveNodeAttr {
            id,
            key: KEYS[k].into(),
        }),
    ]
}

/// Chronological histories whose attribute churn stays off `t = 0`
/// (time-0 churn is folded into a node history's settled initial
/// state, which the replay oracle cannot tell apart from the index's
/// genuine transition points).
fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((arb_event_kind(), 0u64..3), 1..250).prop_map(|kinds| {
        let mut t = 1u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn arb_layout() -> impl Strategy<Value = StorageLayout> {
    prop_oneof![Just(StorageLayout::RowWise), Just(StorageLayout::Columnar)]
}

fn small_cfg(layout: StorageLayout, on: bool) -> TgiConfig {
    TgiConfig {
        events_per_timespan: 60,
        eventlist_size: 16,
        partition_size: 8,
        horizontal_partitions: 2,
        layout,
        ..TgiConfig::default()
    }
    .with_secondary_indexes(on)
}

fn build_c(cfg: TgiConfig, events: &[Event], c: usize) -> Tgi {
    Tgi::try_build_on_c(
        cfg,
        Arc::new(SimStore::new(StoreConfig::new(2, 1))),
        events,
        c,
    )
    .expect("build")
}

/// Timepoints worth probing: span starts, both sides of the history's
/// middle, the end, and past the end.
fn probe_times(events: &[Event]) -> Vec<Time> {
    let end = events.last().map(|e| e.time).unwrap_or(0);
    vec![0, 1, end / 3, end / 2, end.saturating_sub(1), end, end + 7]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Indexed point-in-time predicate answers equal the
    /// materialize-then-filter oracle at every probe time, under both
    /// layouts and every build width; with the index off, the same
    /// calls answer identically through the documented fallback.
    #[test]
    fn indexed_matching_equals_materialized_oracle(
        events in arb_history(),
        layout in arb_layout(),
        c in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let on = build_c(small_cfg(layout, true), &events, c);
        let off = build_c(small_cfg(layout, false), &events, c);
        for t in probe_times(&events) {
            for key in KEYS {
                for label in LABELS {
                    let value = AttrValue::Text(label.into());
                    let want = on
                        .try_nodes_matching_at_materialized(key, &value, t)
                        .expect("oracle");
                    let got = on.try_nodes_matching_at(key, &value, t).expect("indexed");
                    prop_assert_eq!(&got, &want, "indexed ({}, {}) at {}", key, label, t);
                    let fallback = off.try_nodes_matching_at(key, &value, t).expect("fallback");
                    prop_assert_eq!(&fallback, &want, "fallback ({}, {}) at {}", key, label, t);
                }
            }
        }
    }

    /// Per-node attribute histories from the bare-key rows equal the
    /// full event-replay oracle, and the disabled-index fallback
    /// answers the same.
    #[test]
    fn attr_history_matches_replay_oracle(
        events in arb_history(),
        layout in arb_layout(),
        c in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let on = build_c(small_cfg(layout, true), &events, c);
        let off = build_c(small_cfg(layout, false), &events, c);
        for nid in 0u64..24 {
            for key in KEYS {
                let want = on.try_attr_history_materialized(nid, key).expect("oracle");
                let got = on.try_attr_history(nid, key).expect("indexed");
                prop_assert_eq!(&got, &want, "history of ({}, {})", nid, key);
                let fallback = off.try_attr_history(nid, key).expect("fallback");
                prop_assert_eq!(&fallback, &want, "fallback history of ({}, {})", nid, key);
            }
        }
    }

    /// Build-then-append produces the same indexed answers as one
    /// from-scratch build over the whole history: appended spans carry
    /// the attribute state across the cut correctly.
    #[test]
    fn append_maintains_index_rows(
        events in arb_history(),
        layout in arb_layout(),
    ) {
        let full = build_c(small_cfg(layout, true), &events, 1);
        // Append batches must start strictly after the indexed end:
        // advance the cut to the next time boundary.
        let mut cut = (events.len() / 2).max(1);
        while cut < events.len() && events[cut].time <= events[cut - 1].time {
            cut += 1;
        }
        let mut appended = build_c(small_cfg(layout, true), &events[..cut], 1);
        if cut < events.len() {
            appended.try_append_events(&events[cut..]).expect("append");
        }
        for t in probe_times(&events) {
            for key in KEYS {
                for label in LABELS {
                    let value = AttrValue::Text(label.into());
                    let want = full.try_nodes_matching_at(key, &value, t).expect("full");
                    let got = appended.try_nodes_matching_at(key, &value, t).expect("appended");
                    prop_assert_eq!(&got, &want, "({}, {}) at {}", key, label, t);
                }
            }
        }
        for nid in 0u64..24 {
            let want = full.try_attr_history(nid, LABEL_KEY).expect("full");
            let got = appended.try_attr_history(nid, LABEL_KEY).expect("appended");
            prop_assert_eq!(&got, &want, "history of {}", nid);
        }
    }
}

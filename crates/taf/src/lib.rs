//! # hgs-taf — the Temporal Graph Analysis Framework (§5)
//!
//! TAF lets analysts express temporal graph computations over *sets of
//! temporal nodes* (SoN) and *sets of temporal subgraphs* (SoTS) and
//! runs them data-parallel. The paper builds on Apache Spark; this
//! crate substitutes a worker-pool dataflow engine with the same
//! execution pattern — `RDD<NodeT>` becomes a partitioned vector
//! processed by `ma` OS threads — and the same parallel fetch
//! protocol (each worker pulls whole horizontal partitions straight
//! from the store, Fig. 10).
//!
//! Operators (§5.1): Selection, Timeslicing, Graph materialization,
//! NodeCompute (map), NodeComputeTemporal, NodeComputeDelta
//! (incremental), Compare, Evolution, and the TempAggregation family
//! (Max / Min / Mean / Peak / Saturate).

pub mod aggregate;
pub mod handler;
pub mod node_t;
pub mod son;
pub mod sots;
pub mod subgraph_t;

pub use aggregate::{mean, peak, saturate, TempAggregate};
pub use handler::TgiHandler;
pub use node_t::NodeT;
pub use son::SoN;
pub use sots::SoTS;
pub use subgraph_t::SubgraphT;

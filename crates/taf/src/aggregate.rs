//! TempAggregation (§5.1 operator 9): Peak, Saturate, Max, Min, Mean
//! over scalar timeseries produced by the temporal evaluation
//! operators.

use hgs_delta::Time;

/// Temporal aggregates over a `(time, value)` series.
pub trait TempAggregate {
    /// Maximum value and its (first) time.
    fn t_max(&self) -> Option<(Time, f64)>;
    /// Minimum value and its (first) time.
    fn t_min(&self) -> Option<(Time, f64)>;
    /// Arithmetic mean of the values.
    fn t_mean(&self) -> Option<f64>;
}

impl TempAggregate for [(Time, f64)] {
    fn t_max(&self) -> Option<(Time, f64)> {
        self.iter()
            .copied()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
    }

    fn t_min(&self) -> Option<(Time, f64)> {
        self.iter()
            .copied()
            .reduce(|a, b| if b.1 < a.1 { b } else { a })
    }

    fn t_mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.iter().map(|(_, v)| v).sum::<f64>() / self.len() as f64)
    }
}

/// Mean of a plain value slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// *Peak*: timepoints that are strict local maxima exceeding
/// `threshold` — "times at which there was a peak in the network
/// density" (§5.1).
pub fn peak(series: &[(Time, f64)], threshold: f64) -> Vec<(Time, f64)> {
    let n = series.len();
    let mut out = Vec::new();
    for i in 0..n {
        let v = series[i].1;
        if v < threshold {
            continue;
        }
        let left_ok = i == 0 || series[i - 1].1 < v;
        let right_ok = i + 1 == n || series[i + 1].1 < v;
        if left_ok && right_ok {
            out.push(series[i]);
        }
    }
    out
}

/// *Saturate*: the first time after which the series stays within
/// `tolerance` (relative) of its final value.
pub fn saturate(series: &[(Time, f64)], tolerance: f64) -> Option<Time> {
    let (_, last) = *series.last()?;
    let close = |v: f64| {
        if last == 0.0 {
            v.abs() <= tolerance
        } else {
            ((v - last) / last).abs() <= tolerance
        }
    };
    let mut saturated_from: Option<Time> = None;
    for &(t, v) in series {
        if close(v) {
            if saturated_from.is_none() {
                saturated_from = Some(t);
            }
        } else {
            saturated_from = None;
        }
    }
    saturated_from
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<(Time, f64)> {
        vec![
            (0, 1.0),
            (10, 3.0),
            (20, 2.0),
            (30, 5.0),
            (40, 4.9),
            (50, 5.0),
            (60, 5.0),
        ]
    }

    #[test]
    fn max_min_mean() {
        let s = series();
        assert_eq!(s.t_max(), Some((30, 5.0)));
        assert_eq!(s.t_min(), Some((0, 1.0)));
        let m = s.t_mean().unwrap();
        assert!((m - (1.0 + 3.0 + 2.0 + 5.0 + 4.9 + 5.0 + 5.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn peaks_are_local_maxima() {
        let s = series();
        let p = peak(&s, 2.5);
        // t=10 (3.0, local max) and t=30 (5.0, local max). The final
        // plateau is not a strict peak.
        assert_eq!(p.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![10, 30]);
    }

    #[test]
    fn saturate_finds_stabilization() {
        let s = series();
        // From t=30 on, values stay within 5% of the final 5.0.
        assert_eq!(saturate(&s, 0.05), Some(30));
        assert_eq!(saturate(&s, 0.001), Some(50));
    }

    #[test]
    fn empty_series() {
        let e: Vec<(Time, f64)> = Vec::new();
        assert_eq!(e.t_max(), None);
        assert_eq!(e.t_mean(), None);
        assert_eq!(saturate(&e, 0.1), None);
        assert!(peak(&e, 0.0).is_empty());
    }
}

//! `SoN` — Set of Temporal Nodes (Definition 7) and its operator
//! algebra.
//!
//! The SoN is TAF's prime operand, "bearing correspondence to tables
//! of the relational algebra". It is held as a partitioned vector of
//! [`NodeT`] processed by `workers` OS threads — the `RDD<NodeT>` of
//! the paper's Spark implementation.

use hgs_delta::{Delta, FxHashMap, NodeId, StaticNode, Time, TimeRange};
use hgs_graph::Graph;
use hgs_store::parallel::parallel_chunks;

use crate::aggregate::TempAggregate;
use crate::node_t::NodeT;

/// Caller-supplied selector of evaluation timepoints for
/// [`SoN::node_compute_temporal`] (§5.2 "specifying interesting time
/// points").
pub type TimepointSelector = dyn Fn(&NodeT) -> Vec<Time> + Sync;

/// A set of temporal nodes over a common time range.
#[derive(Debug, Clone)]
pub struct SoN {
    nodes: Vec<NodeT>,
    range: TimeRange,
    workers: usize,
}

impl SoN {
    /// Assemble from fetched temporal nodes.
    pub fn new(mut nodes: Vec<NodeT>, range: TimeRange, workers: usize) -> SoN {
        nodes.sort_by_key(|n| n.id());
        SoN {
            nodes,
            range,
            workers: workers.max(1),
        }
    }

    /// Number of temporal nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The common time range.
    pub fn range(&self) -> TimeRange {
        self.range
    }

    /// Worker-pool width used by the compute operators.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Re-partition over a different worker count.
    pub fn with_workers(mut self, workers: usize) -> SoN {
        self.workers = workers.max(1);
        self
    }

    /// The temporal nodes.
    pub fn nodes(&self) -> &[NodeT] {
        &self.nodes
    }

    /// Look up one temporal node.
    pub fn get(&self, id: NodeId) -> Option<&NodeT> {
        self.nodes
            .binary_search_by_key(&id, |n| n.id())
            .ok()
            .map(|i| &self.nodes[i])
    }

    // ------------------------------------------------------------------
    // operators (§5.1)
    // ------------------------------------------------------------------

    /// **Selection** (operator 1): entity-centric filtering; temporal
    /// and attribute dimensions are untouched.
    pub fn select<F>(&self, pred: F) -> SoN
    where
        F: Fn(&NodeT) -> bool + Sync,
    {
        let kept = parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk.into_iter().filter(|n| pred(n)).collect()
        });
        SoN {
            nodes: kept,
            range: self.range,
            workers: self.workers,
        }
    }

    /// Selection on an attribute of the *latest* state, e.g.
    /// `select_attr("community", "A")` — the Fig. 7b idiom.
    pub fn select_attr(&self, key: &str, value: &str) -> SoN {
        self.select(|n| {
            n.version_at(n.end_time().saturating_sub(1))
                .and_then(|s| {
                    s.attrs
                        .get(key)
                        .and_then(|v| v.as_text().map(|t| t == value))
                })
                .unwrap_or(false)
        })
    }

    /// **Timeslicing** (operator 2) to a sub-interval.
    pub fn timeslice(&self, sub: TimeRange) -> SoN {
        let range = TimeRange::new(sub.start.max(self.range.start), sub.end.min(self.range.end));
        let nodes = parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk.into_iter().map(|n| n.timeslice(range)).collect()
        });
        SoN {
            nodes,
            range,
            workers: self.workers,
        }
    }

    /// Timeslicing to a single timepoint: returns the static states.
    pub fn timeslice_at(&self, t: Time) -> Vec<(NodeId, Option<StaticNode>)> {
        parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|n| (n.id(), n.version_at(t)))
                .collect()
        })
    }

    /// **Filter**: project node attributes down to `keys`.
    pub fn filter_attrs(&self, keys: &[&str]) -> SoN {
        let nodes = parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk.into_iter().map(|n| n.filter_attrs(keys)).collect()
        });
        SoN {
            nodes,
            range: self.range,
            workers: self.workers,
        }
    }

    /// **Graph** (operator 3): materialize an in-memory graph of the
    /// SoN's nodes as of `t` (edges to nodes outside the SoN are
    /// dropped, per the operator's definition).
    pub fn graph_at(&self, t: Time) -> Graph {
        let mut d = Delta::new();
        for n in &self.nodes {
            if let Some(s) = n.version_at(t) {
                d.insert(s);
            }
        }
        Graph::from_delta(d)
    }

    /// **NodeCompute** (operator 4): map a function over every
    /// temporal node.
    pub fn node_compute<R, F>(&self, f: F) -> Vec<(NodeId, R)>
    where
        R: Send,
        F: Fn(&NodeT) -> R + Sync,
    {
        parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk.into_iter().map(|n| (n.id(), f(&n))).collect()
        })
    }

    /// **NodeComputeTemporal** (operator 5): evaluate `f` on every
    /// version of every node. `timepoints` overrides the default
    /// all-change-points evaluation (§5.2 "specifying interesting time
    /// points").
    pub fn node_compute_temporal<R, F>(
        &self,
        f: F,
        timepoints: Option<&TimepointSelector>,
    ) -> Vec<(NodeId, Vec<(Time, R)>)>
    where
        R: Send,
        F: Fn(&StaticNode) -> R + Sync,
    {
        parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|n| {
                    let series = match timepoints {
                        Some(tp) => tp(&n)
                            .into_iter()
                            .filter_map(|t| n.version_at(t).map(|s| (t, f(&s))))
                            .collect(),
                        None => n
                            .versions()
                            .into_iter()
                            .filter_map(|(t, s)| s.map(|s| (t, f(&s))))
                            .collect(),
                    };
                    (n.id(), series)
                })
                .collect()
        })
    }

    /// **Compare** (operator 7): evaluate a scalar function over both
    /// SoNs and return `(node-id, a - b)` for ids present in either
    /// (missing side contributes 0).
    pub fn compare<F>(a: &SoN, b: &SoN, f: F) -> Vec<(NodeId, f64)>
    where
        F: Fn(&NodeT) -> f64 + Sync,
    {
        let fa: FxHashMap<NodeId, f64> = a.node_compute(&f).into_iter().collect();
        let fb: FxHashMap<NodeId, f64> = b.node_compute(&f).into_iter().collect();
        let mut ids: Vec<NodeId> = fa.keys().chain(fb.keys()).copied().collect::<Vec<_>>();
        // Hash-map key order is arbitrary: the sort immediately before
        // the adjacent-only `dedup` is load-bearing.
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|id| {
                (
                    id,
                    fa.get(&id).copied().unwrap_or(0.0) - fb.get(&id).copied().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// Compare one SoN against itself at two timepoints.
    pub fn compare_times<F>(&self, t1: Time, t2: Time, f: F) -> Vec<(NodeId, f64)>
    where
        F: Fn(&StaticNode) -> f64 + Sync,
    {
        parallel_chunks(self.nodes.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|n| {
                    let v1 = n.version_at(t1).map(|s| f(&s)).unwrap_or(0.0);
                    let v2 = n.version_at(t2).map(|s| f(&s)).unwrap_or(0.0);
                    (n.id(), v2 - v1)
                })
                .collect()
        })
    }

    /// **Evolution** (operator 8): sample a whole-SoN quantity at
    /// `points` evenly spaced timepoints over the range.
    pub fn evolution<F>(&self, quantity: F, points: usize) -> Vec<(Time, f64)>
    where
        F: Fn(&Graph) -> f64 + Sync,
    {
        let ts = self.sample_points(points);
        ts.into_iter()
            .map(|t| (t, quantity(&self.graph_at(t))))
            .collect()
    }

    /// Evolution at caller-chosen timepoints.
    pub fn evolution_at<F>(&self, quantity: F, times: &[Time]) -> Vec<(Time, f64)>
    where
        F: Fn(&Graph) -> f64 + Sync,
    {
        times
            .iter()
            .map(|&t| (t, quantity(&self.graph_at(t))))
            .collect()
    }

    /// `points` evenly spaced timepoints across the range (always
    /// includes both endpoints when `points >= 2`).
    pub fn sample_points(&self, points: usize) -> Vec<Time> {
        let points = points.max(1);
        let end = self.range.end.min(
            self.nodes
                .iter()
                .flat_map(|n| n.events().last().map(|e| e.time + 1))
                .max()
                .unwrap_or(self.range.start + 1),
        );
        let start = self.range.start;
        if points == 1 || end <= start + 1 {
            return vec![start];
        }
        (0..points)
            .map(|i| start + (end - 1 - start) * i as u64 / (points as u64 - 1))
            .collect()
    }

    /// **TempAggregation** helper: max over an evolution series.
    pub fn aggregate_max(series: &[(Time, f64)]) -> Option<(Time, f64)> {
        series.t_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_core::NodeHistory;
    use hgs_delta::{AttrValue, Event, EventKind};

    fn node(id: NodeId, attr: &str, deg_edges: &[(Time, NodeId)]) -> NodeT {
        let mut initial = StaticNode::new(id);
        initial.attrs.set("community", AttrValue::Text(attr.into()));
        let events = deg_edges
            .iter()
            .map(|&(t, other)| {
                Event::new(
                    t,
                    EventKind::AddEdge {
                        src: id,
                        dst: other,
                        weight: 1.0,
                        directed: false,
                    },
                )
            })
            .collect();
        NodeT::new(NodeHistory {
            id,
            range: TimeRange::new(0, 100),
            initial: Some(initial),
            events,
        })
    }

    fn sample_son() -> SoN {
        SoN::new(
            vec![
                node(1, "A", &[(10, 2), (20, 3)]),
                node(2, "A", &[(10, 1)]),
                node(3, "B", &[(20, 1)]),
            ],
            TimeRange::new(0, 100),
            2,
        )
    }

    #[test]
    fn select_filters_entities() {
        let son = sample_son();
        let a = son.select_attr("community", "A");
        assert_eq!(a.len(), 2);
        let heavy = son.select(|n| n.change_count() >= 2);
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy.nodes()[0].id(), 1);
    }

    #[test]
    fn timeslice_narrows_range() {
        let son = sample_son();
        let s = son.timeslice(TimeRange::new(15, 100));
        assert_eq!(s.range(), TimeRange::new(15, 100));
        // Node 1's t=10 edge is folded into the initial state.
        let n1 = s.get(1).unwrap();
        assert_eq!(n1.initial().unwrap().degree(), 1);
        assert_eq!(n1.events().len(), 1);
    }

    #[test]
    fn graph_materialization_drops_external_edges() {
        let son = sample_son().select(|n| n.id() != 3);
        let g = son.graph_at(50);
        assert_eq!(g.node_count(), 2);
        // Edge 1-3 is dropped (3 not in SoN); edge 1-2 stays.
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn node_compute_parallel_matches_serial() {
        let son = sample_son();
        let mut par = son.node_compute(|n| n.change_count());
        par.sort_by_key(|(id, _)| *id);
        assert_eq!(par, vec![(1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn node_compute_temporal_walks_versions() {
        let son = sample_son();
        let out = son.node_compute_temporal(|s| s.degree(), None);
        let n1 = out.iter().find(|(id, _)| *id == 1).unwrap();
        let degs: Vec<usize> = n1.1.iter().map(|(_, d)| *d).collect();
        assert_eq!(degs, vec![0, 1, 2]);
    }

    #[test]
    fn compare_diffs_by_id() {
        let son = sample_son();
        let a = son.select_attr("community", "A");
        let b = son.select_attr("community", "B");
        let d = SoN::compare(&a, &b, |n| n.change_count() as f64);
        let m: FxHashMap<NodeId, f64> = d.into_iter().collect();
        assert_eq!(m[&1], 2.0, "only in A");
        assert_eq!(m[&3], -1.0, "only in B");
    }

    #[test]
    fn compare_times_measures_growth() {
        let son = sample_son();
        let d = son.compare_times(5, 50, |s| s.degree() as f64);
        let m: FxHashMap<NodeId, f64> = d.into_iter().collect();
        assert_eq!(m[&1], 2.0);
    }

    #[test]
    fn evolution_density_series() {
        let son = sample_son();
        let series = son.evolution(hgs_graph::algo::density, 5);
        assert_eq!(series.len(), 5);
        assert!(
            series.last().unwrap().1 > series.first().unwrap().1,
            "graph densifies"
        );
        assert_eq!(
            SoN::aggregate_max(&series).unwrap().1,
            series.last().unwrap().1
        );
    }

    #[test]
    fn custom_timepoints_function() {
        let son = sample_son();
        let tp = |n: &NodeT| vec![n.start_time(), (n.start_time() + n.end_time()) / 2];
        let out = son.node_compute_temporal(|s| s.degree(), Some(&tp));
        assert!(out.iter().all(|(_, series)| series.len() == 2));
    }
}

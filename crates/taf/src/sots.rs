//! `SoTS` — Set of Temporal Subgraphs, with the version-based and
//! incremental computation operators (§5.1 operators 5 & 6, Fig. 8).

use hgs_delta::{Delta, Event, NodeId, Time, TimeRange};
use hgs_store::parallel::parallel_chunks;

use crate::subgraph_t::SubgraphT;

/// A set of temporal subgraphs over a common time range.
#[derive(Debug, Clone)]
pub struct SoTS {
    subs: Vec<SubgraphT>,
    range: TimeRange,
    workers: usize,
}

impl SoTS {
    /// Assemble from fetched temporal subgraphs.
    pub fn new(subs: Vec<SubgraphT>, range: TimeRange, workers: usize) -> SoTS {
        SoTS {
            subs,
            range,
            workers: workers.max(1),
        }
    }

    /// Number of subgraphs.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The common range.
    pub fn range(&self) -> TimeRange {
        self.range
    }

    /// The subgraphs.
    pub fn subgraphs(&self) -> &[SubgraphT] {
        &self.subs
    }

    /// Worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// **Selection** on subgraphs.
    pub fn select<F>(&self, pred: F) -> SoTS
    where
        F: Fn(&SubgraphT) -> bool + Sync,
    {
        let subs = parallel_chunks(self.subs.clone(), self.workers, |chunk| {
            chunk.into_iter().filter(|s| pred(s)).collect()
        });
        SoTS {
            subs,
            range: self.range,
            workers: self.workers,
        }
    }

    /// **NodeCompute**: evaluate `f` on each subgraph's state at one
    /// timepoint.
    pub fn compute_at<R, F>(&self, t: Time, f: F) -> Vec<(NodeId, R)>
    where
        R: Send,
        F: Fn(&Delta) -> R + Sync,
    {
        parallel_chunks(self.subs.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|s| (s.root, f(&s.version_at(t))))
                .collect()
        })
    }

    /// **NodeComputeTemporal** (operator 5): recompute `f` from
    /// scratch on every version of every subgraph — `O(N·T)` work, the
    /// baseline of Fig. 17.
    pub fn node_compute_temporal<R, F>(&self, f: F) -> Vec<(NodeId, Vec<(Time, R)>)>
    where
        R: Send,
        F: Fn(&Delta) -> R + Sync,
    {
        parallel_chunks(self.subs.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|s| {
                    // Deliberately materialize each version from
                    // scratch: this is the non-incremental semantics the
                    // operator is defined (and measured) with.
                    let series = s
                        .change_points()
                        .into_iter()
                        .chain(std::iter::once(s.range().start))
                        .collect::<std::collections::BTreeSet<Time>>()
                        .into_iter()
                        .map(|t| (t, f(&s.version_at(t))))
                        .collect();
                    (s.root, series)
                })
                .collect()
        })
    }

    /// **NodeComputeDelta** (operator 6): compute `f` once on the
    /// initial state, then update the value with `f_delta(state_before,
    /// value, event)` per event — `O(N + T)` work. The state is
    /// maintained incrementally and passed to `f_delta` as the
    /// auxiliary information of the paper's definition.
    pub fn node_compute_delta<R, F, FD>(&self, f: F, f_delta: FD) -> Vec<(NodeId, Vec<(Time, R)>)>
    where
        R: Clone + Send,
        F: Fn(&Delta) -> R + Sync,
        FD: Fn(&Delta, &R, &Event) -> R + Sync,
    {
        parallel_chunks(self.subs.clone(), self.workers, |chunk| {
            chunk
                .into_iter()
                .map(|s| {
                    let mut series: Vec<(Time, R)> = Vec::new();
                    // Shared between the two walk callbacks.
                    let value: std::cell::RefCell<Option<R>> = std::cell::RefCell::new(None);
                    s.walk(
                        |state_before, event| {
                            let mut slot = value.borrow_mut();
                            let cur = slot.get_or_insert_with(|| f(state_before));
                            let next = f_delta(state_before, cur, event);
                            *cur = next;
                        },
                        |t, state_after| {
                            let mut slot = value.borrow_mut();
                            let cur = slot.get_or_insert_with(|| f(state_after)).clone();
                            series.push((t, cur));
                        },
                    );
                    (s.root, series)
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::{AttrValue, EventKind, FxHashSet};
    use hgs_graph::algo::count_label;
    use hgs_graph::Graph;

    /// The paper's Fig. 8 workload: count nodes labeled "Author".
    fn count_authors(d: &Delta) -> i64 {
        count_label(&Graph::from_delta(d.clone()), "EntityType", "Author") as i64
    }

    /// Fig. 8(b)'s incremental update function.
    fn count_authors_delta(state_before: &Delta, prev: &i64, e: &Event) -> i64 {
        match &e.kind {
            EventKind::SetNodeAttr { id, key, value } if key == "EntityType" => {
                let was_author = state_before
                    .node(*id)
                    .and_then(|n| n.attrs.get("EntityType"))
                    .and_then(|v| v.as_text())
                    == Some("Author");
                let is_author = value.as_text() == Some("Author");
                prev + (is_author as i64) - (was_author as i64)
            }
            EventKind::RemoveNode { id } => {
                let was_author = state_before
                    .node(*id)
                    .and_then(|n| n.attrs.get("EntityType"))
                    .and_then(|v| v.as_text())
                    == Some("Author");
                prev - (was_author as i64)
            }
            _ => *prev,
        }
    }

    fn sample_sots() -> SoTS {
        let mut initial = Delta::new();
        for (id, label) in [(1u64, "Author"), (2, "Paper"), (3, "Author")] {
            initial.apply_event(&EventKind::AddNode { id });
            initial.apply_event(&EventKind::SetNodeAttr {
                id,
                key: "EntityType".into(),
                value: AttrValue::Text(label.into()),
            });
        }
        let members: FxHashSet<NodeId> = [1u64, 2, 3].into_iter().collect();
        let events = vec![
            Event::new(
                20,
                EventKind::SetNodeAttr {
                    id: 2,
                    key: "EntityType".into(),
                    value: AttrValue::Text("Author".into()),
                },
            ),
            Event::new(
                40,
                EventKind::SetNodeAttr {
                    id: 1,
                    key: "EntityType".into(),
                    value: AttrValue::Text("Venue".into()),
                },
            ),
            Event::new(60, EventKind::RemoveNode { id: 3 }),
        ];
        let sub = SubgraphT::new(1, members, initial, events, TimeRange::new(0, 100));
        SoTS::new(vec![sub], TimeRange::new(0, 100), 2)
    }

    #[test]
    fn temporal_and_delta_agree() {
        let sots = sample_sots();
        let temporal = sots.node_compute_temporal(count_authors);
        let delta = sots.node_compute_delta(count_authors, count_authors_delta);
        assert_eq!(temporal, delta, "incremental must equal recompute");
        let series = &temporal[0].1;
        let counts: Vec<i64> = series.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![2, 3, 2, 1]);
    }

    #[test]
    fn compute_at_single_point() {
        let sots = sample_sots();
        let at30 = sots.compute_at(30, count_authors);
        assert_eq!(at30, vec![(1, 3)]);
    }

    #[test]
    fn select_subgraphs() {
        let sots = sample_sots();
        assert_eq!(sots.select(|s| s.len() >= 3).len(), 1);
        assert_eq!(sots.select(|s| s.len() > 3).len(), 0);
    }
}

//! `SubgraphT` — the temporal subgraph (§5.1).
//!
//! A sequence of states of a subgraph (a set of nodes and the edges
//! among them) over a period of time; typically the k-hop neighborhood
//! of a node. Stored, like `NodeT`, as an initial subgraph snapshot
//! plus chronologically sorted events.
//!
//! Membership is fixed at fetch time (the k-hop set as of the range
//! start, per the paper's SoTS examples); the *states* of the members
//! evolve with the events.

use hgs_delta::{Delta, Event, FxHashSet, NodeId, Time, TimeRange};

/// A temporal subgraph.
#[derive(Debug, Clone)]
pub struct SubgraphT {
    /// The node the subgraph was grown from (e.g. k-hop center).
    pub root: NodeId,
    /// Member node-ids (fixed over the range).
    members: FxHashSet<NodeId>,
    /// Subgraph state at `range.start`.
    initial: Delta,
    /// In-range events touching any member, chronological.
    events: Vec<Event>,
    range: TimeRange,
}

impl SubgraphT {
    /// Assemble from a fetched initial state and member events.
    pub fn new(
        root: NodeId,
        members: FxHashSet<NodeId>,
        initial: Delta,
        mut events: Vec<Event>,
        range: TimeRange,
    ) -> SubgraphT {
        events.sort_by_key(|e| e.time);
        events.retain(|e| e.time > range.start && e.time < range.end);
        SubgraphT {
            root,
            members,
            initial,
            events,
            range,
        }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        self.members.contains(&id)
    }

    /// The covered range.
    pub fn range(&self) -> TimeRange {
        self.range
    }

    /// In-range events (chronological).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The initial state.
    pub fn initial(&self) -> &Delta {
        &self.initial
    }

    /// The member set.
    pub fn members(&self) -> &FxHashSet<NodeId> {
        &self.members
    }

    /// A copy keeping only the first `n` distinct change points —
    /// used to sweep "version count" in the incremental-computation
    /// experiment (Fig. 17).
    pub fn truncate_changes(&self, n: usize) -> SubgraphT {
        let points = self.change_points();
        if points.len() <= n {
            return self.clone();
        }
        let cutoff = points[n]; // first excluded timestamp
        SubgraphT {
            root: self.root,
            members: self.members.clone(),
            initial: self.initial.clone(),
            events: self
                .events
                .iter()
                .filter(|e| e.time < cutoff)
                .cloned()
                .collect(),
            range: TimeRange::new(self.range.start, cutoff),
        }
    }

    /// Distinct change timepoints, ascending.
    ///
    /// `events` is sorted by the constructor, but sort again before
    /// dedup anyway: `Vec::dedup` only removes *adjacent* duplicates,
    /// so this stays correct even if a future construction path stops
    /// guaranteeing chronological order.
    pub fn change_points(&self) -> Vec<Time> {
        let mut ts: Vec<Time> = self.events.iter().map(|e| e.time).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// `getVersionAt(t)`: materialize the subgraph state as of `t`
    /// (an in-memory graph object in the paper's terms — convert with
    /// `hgs_graph::Graph::from_delta`).
    pub fn version_at(&self, t: Time) -> Delta {
        let mut state = self.initial.clone();
        for e in self.events.iter().take_while(|e| e.time <= t) {
            hgs_core::scope::apply_event_scoped(&mut state, &e.kind, |id| {
                self.members.contains(&id)
            });
        }
        state
    }

    /// Iterate `(time, state)` versions incrementally — one shared
    /// evolving state, cloned per yield. Used by NodeComputeTemporal.
    pub fn versions(&self) -> Vec<(Time, Delta)> {
        let mut out = Vec::with_capacity(self.events.len() + 1);
        let mut state = self.initial.clone();
        out.push((self.range.start, state.clone()));
        let mut i = 0usize;
        while i < self.events.len() {
            let t = self.events[i].time;
            while i < self.events.len() && self.events[i].time == t {
                hgs_core::scope::apply_event_scoped(&mut state, &self.events[i].kind, |id| {
                    self.members.contains(&id)
                });
                i += 1;
            }
            out.push((t, state.clone()));
        }
        out
    }

    /// Walk versions *without* cloning states: `visit(t, state_after)`
    /// is called once per distinct timestamp, plus once for the
    /// initial state. This is the incremental walk NodeComputeDelta
    /// uses; `on_event(state_before, event)` fires before each event
    /// is applied.
    pub fn walk<FEv, FVer>(&self, mut on_event: FEv, mut visit: FVer)
    where
        FEv: FnMut(&Delta, &Event),
        FVer: FnMut(Time, &Delta),
    {
        let mut state = self.initial.clone();
        visit(self.range.start, &state);
        let mut i = 0usize;
        while i < self.events.len() {
            let t = self.events[i].time;
            while i < self.events.len() && self.events[i].time == t {
                on_event(&state, &self.events[i]);
                hgs_core::scope::apply_event_scoped(&mut state, &self.events[i].kind, |id| {
                    self.members.contains(&id)
                });
                i += 1;
            }
            visit(t, &state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::EventKind;

    fn sample() -> SubgraphT {
        let mut initial = Delta::new();
        initial.apply_event(&EventKind::AddEdge {
            src: 1,
            dst: 2,
            weight: 1.0,
            directed: false,
        });
        let members: FxHashSet<NodeId> = [1u64, 2, 3].into_iter().collect();
        let events = vec![
            Event::new(
                20,
                EventKind::AddEdge {
                    src: 2,
                    dst: 3,
                    weight: 1.0,
                    directed: false,
                },
            ),
            Event::new(
                30,
                EventKind::AddEdge {
                    src: 2,
                    dst: 99,
                    weight: 1.0,
                    directed: false,
                },
            ),
            Event::new(40, EventKind::RemoveEdge { src: 1, dst: 2 }),
        ];
        SubgraphT::new(1, members, initial, events, TimeRange::new(10, 100))
    }

    #[test]
    fn version_at_applies_member_scoped() {
        let s = sample();
        let v25 = s.version_at(25);
        assert_eq!(v25.edge_count(), 2);
        let v35 = s.version_at(35);
        // Edge to non-member 99 recorded on member 2's side only; 99
        // itself is never materialized.
        assert!(!v35.contains(99));
        assert!(v35.node(2).unwrap().has_neighbor(99));
        let v45 = s.version_at(45);
        assert!(!v45.node(1).unwrap().has_neighbor(2));
    }

    #[test]
    fn versions_count_change_points() {
        let s = sample();
        let v = s.versions();
        assert_eq!(v.len(), 4, "initial + 3 distinct times");
        assert_eq!(s.change_points(), vec![20, 30, 40]);
    }

    /// Regression companion to the `NodeT::change_points` fix: events
    /// handed to the constructor out of order (a timestamp recurring
    /// non-adjacently) must still yield sorted, unique change points.
    #[test]
    fn change_points_dedup_unsorted_input() {
        let members: FxHashSet<NodeId> = [1u64, 2, 3, 4].into_iter().collect();
        let mk = |t, src, dst| {
            Event::new(
                t,
                EventKind::AddEdge {
                    src,
                    dst,
                    weight: 1.0,
                    directed: false,
                },
            )
        };
        let s = SubgraphT::new(
            1,
            members,
            Delta::new(),
            vec![mk(30, 1, 2), mk(20, 2, 3), mk(30, 3, 4)],
            TimeRange::new(10, 100),
        );
        assert_eq!(s.change_points(), vec![20, 30]);
    }

    #[test]
    fn walk_matches_versions() {
        let s = sample();
        let versions = s.versions();
        let mut walked = Vec::new();
        let mut event_count = 0;
        s.walk(
            |_, _| event_count += 1,
            |t, state| walked.push((t, state.clone())),
        );
        assert_eq!(walked, versions);
        assert_eq!(event_count, 3);
    }
}

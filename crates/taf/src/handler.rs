//! `TgiHandler` — the TAF-side connection to a TGI (§5.2 *Data
//! Fetch*).
//!
//! Mirrors the paper's `TGIHandler` / lazy fetch design: a query is a
//! chain of specification calls (`timeslice`, `select_ids`, `khop`)
//! that build a retrieval plan; nothing touches the store until
//! `fetch()` (or `fetch_sots()`), which executes the **parallel fetch
//! protocol** of Fig. 10 — each TAF worker pulls whole horizontal
//! partitions (or node groups) directly from the store shards, and
//! the results land partitioned across workers without a coordinator
//! bottleneck.
//!
//! Fetches follow the same error-handling contract as the TGI query
//! layer ([`hgs_core::query`]): `try_fetch()` surfaces
//! [`StoreError::Unavailable`] when every replica of a chunk the plan
//! needs is down, instead of panicking mid-analytics; the classic
//! `fetch()` names remain as panicking wrappers for healthy-cluster
//! callers.
//!
//! A handler can bind either a single-owner [`Tgi`] handle
//! ([`TgiHandler::new`]) or a live [`TgiService`]
//! ([`TgiHandler::serving`]). In the latter case every `fetch()` pins
//! the latest published watermark once at entry and runs all of its
//! sub-queries against that one [`TgiView`], so an analytics answer
//! never mixes two watermarks even while the service ingests.

use std::sync::Arc;

use hgs_core::{NodeHistory, Tgi, TgiService, TgiView};
use hgs_delta::{AttrValue, Delta, FxHashSet, NodeId, TimeRange};
use hgs_store::parallel::parallel_chunks;
use hgs_store::StoreError;

use crate::node_t::NodeT;
use crate::son::SoN;
use crate::sots::SoTS;
use crate::subgraph_t::SubgraphT;

/// Where the handler's reads come from: a single-owner handle, or a
/// live [`TgiService`] whose watermark advances under concurrent
/// appends.
#[derive(Clone)]
enum Source {
    Handle(Arc<Tgi>),
    Service(Arc<TgiService>),
}

/// Handle binding a TGI to a TAF worker pool.
#[derive(Clone)]
pub struct TgiHandler {
    source: Source,
    workers: usize,
}

impl TgiHandler {
    /// Connect with `workers` analytics workers (the paper's `ma`).
    pub fn new(tgi: Arc<Tgi>, workers: usize) -> TgiHandler {
        TgiHandler {
            source: Source::Handle(tgi),
            workers: workers.max(1),
        }
    }

    /// Connect to a live [`TgiService`]: every fetch pins the latest
    /// published watermark **once at entry** and runs all of its
    /// sub-queries against that one view, so an analytics answer is
    /// internally consistent even while the service ingests.
    pub fn serving(service: Arc<TgiService>, workers: usize) -> TgiHandler {
        TgiHandler {
            source: Source::Service(service),
            workers: workers.max(1),
        }
    }

    /// The underlying index handle. Panics for a service-backed
    /// handler — there is no single owned handle there; use
    /// [`TgiHandler::pin`] for a read view.
    pub fn tgi(&self) -> &Arc<Tgi> {
        match &self.source {
            Source::Handle(tgi) => tgi,
            Source::Service(_) => {
                panic!("handler is service-backed; pin() a watermarked view instead")
            }
        }
    }

    /// Pin a read view: the handle's current state, or — for a
    /// service-backed handler — the latest published watermark
    /// ([`TgiService::pin`]).
    pub fn pin(&self) -> Arc<TgiView> {
        match &self.source {
            Source::Handle(tgi) => Arc::new(tgi.view()),
            Source::Service(service) => service.pin(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Start a lazy SoN query over the full indexed history.
    pub fn son(&self) -> SonQuery {
        SonQuery {
            handler: self.clone(),
            range: TimeRange::new(0, self.pin().end_time().max(1)),
            ids: None,
            attr_eq: None,
        }
    }

    /// Start a lazy SoTS query (k-hop subgraphs around roots).
    pub fn sots(&self, k: usize) -> SotsQuery {
        SotsQuery {
            handler: self.clone(),
            range: TimeRange::new(0, self.pin().end_time().max(1)),
            roots: None,
            roots_attr_eq: None,
            k,
        }
    }
}

/// Lazy SoN retrieval specification.
pub struct SonQuery {
    handler: TgiHandler,
    range: TimeRange,
    ids: Option<Vec<NodeId>>,
    attr_eq: Option<(String, String)>,
}

impl SonQuery {
    /// Restrict the temporal scope (Timeslice pushdown).
    pub fn timeslice(mut self, range: TimeRange) -> SonQuery {
        self.range = range;
        self
    }

    /// Restrict to an explicit node set (Select pushdown: only those
    /// nodes' micro-partitions are fetched).
    pub fn select_ids(mut self, ids: Vec<NodeId>) -> SonQuery {
        self.ids = Some(ids);
        self
    }

    /// Attribute-equality Selection pushdown: keep only nodes whose
    /// attribute `key` equals `value` at the range's last timepoint
    /// (the [`SoN::select_attr`] predicate, pushed into the fetch).
    /// With secondary indexes on, one index row names the matching
    /// nodes ([`TgiView::try_nodes_matching_at`](hgs_core::TgiView::try_nodes_matching_at)) and only their
    /// micro-partitions are fetched; with the index off — or when an
    /// explicit [`SonQuery::select_ids`] set is also given — the fetch
    /// is unchanged and the predicate runs as a post-filter.
    pub fn select_attr_eq(mut self, key: &str, value: &str) -> SonQuery {
        self.attr_eq = Some((key.to_string(), value.to_string()));
        self
    }

    /// Execute the fetch (the first statement after the specification
    /// instructions, per §5.2). Panics if a needed chunk is fully
    /// unavailable; see [`SonQuery::try_fetch`].
    pub fn fetch(self) -> SoN {
        self.try_fetch()
            .unwrap_or_else(|e| panic!("TAF SoN fetch failed ({e}); use try_fetch"))
    }

    /// Fallible [`SonQuery::fetch`]: every worker's store failure is
    /// propagated, so a degraded cluster yields
    /// [`StoreError::Unavailable`] instead of a partial SoN (or a
    /// worker panic).
    pub fn try_fetch(self) -> Result<SoN, StoreError> {
        // Pin ONCE at entry: every sub-fetch below answers from this
        // one watermarked view, so the SoN is internally consistent
        // even while a service-backed source keeps appending.
        let pinned = self.handler.pin();
        let tgi: &TgiView = &pinned;
        let workers = self.handler.workers;
        let range = self.range;
        let mut post_filter: Option<(String, String)> = None;
        let ids = match (self.ids, self.attr_eq) {
            (Some(ids), pred) => {
                // An explicit id set stays authoritative for the fetch;
                // the predicate still applies, as a post-filter.
                post_filter = pred;
                Some(ids)
            }
            (None, Some((key, value))) if tgi.secondary_indexes_enabled() => {
                // Pushdown: one secondary-index row names the matching
                // nodes, so only their rows are fetched — no snapshot
                // materialization, no full-graph read.
                Some(tgi.try_nodes_matching_at(
                    &key,
                    &AttrValue::Text(value.clone()),
                    range.end.saturating_sub(1),
                )?)
            }
            (None, Some(pred)) => {
                // Documented fallback with the index off: full fetch,
                // then the classic `select_attr` filter.
                post_filter = Some(pred);
                None
            }
            (None, None) => None,
        };
        let nodes: Vec<NodeT> = match ids {
            Some(ids) => {
                // Select pushdown: per-node history fetches, spread
                // over the workers.
                let fetched: Vec<Result<NodeT, StoreError>> =
                    parallel_chunks(ids, workers, |chunk| {
                        chunk
                            .into_iter()
                            .map(|id| tgi.try_node_history_c(id, range, 1).map(NodeT::new))
                            .collect()
                    });
                fetched.into_iter().collect::<Result<Vec<_>, _>>()?
            }
            None => {
                // Whole-graph fetch: one job per horizontal partition,
                // workers pulling directly from the store (Fig. 10).
                let sids: Vec<u32> = (0..tgi.horizontal_partitions()).collect();
                let fetched: Vec<Result<Vec<NodeHistory>, StoreError>> =
                    parallel_chunks(sids, workers, |chunk| {
                        chunk
                            .into_iter()
                            .map(|sid| tgi.try_node_histories_for_sid(sid, range))
                            .collect()
                    });
                let mut nodes = Vec::new();
                for hs in fetched {
                    nodes.extend(hs?.into_iter().map(NodeT::new));
                }
                nodes
            }
        };
        let son = SoN::new(nodes, range, workers);
        Ok(match post_filter {
            Some((key, value)) => son.select_attr(&key, &value),
            None => son,
        })
    }
}

/// Lazy SoTS retrieval specification.
pub struct SotsQuery {
    handler: TgiHandler,
    range: TimeRange,
    roots: Option<Vec<NodeId>>,
    roots_attr_eq: Option<(String, String)>,
    k: usize,
}

impl SotsQuery {
    /// Restrict the temporal scope.
    pub fn timeslice(mut self, range: TimeRange) -> SotsQuery {
        self.range = range;
        self
    }

    /// Choose the subgraph roots (default: every node alive at the
    /// range start).
    pub fn roots(mut self, roots: Vec<NodeId>) -> SotsQuery {
        self.roots = Some(roots);
        self
    }

    /// Root the subgraphs at the nodes whose attribute `key` equals
    /// `value` at the range start. With secondary indexes on the roots
    /// come from one index row instead of a materialized snapshot
    /// ([`TgiView::try_nodes_matching_at`](hgs_core::TgiView::try_nodes_matching_at), which itself falls back to
    /// materialization when the index is off). An explicit
    /// [`SotsQuery::roots`] set takes precedence.
    pub fn roots_matching(mut self, key: &str, value: &str) -> SotsQuery {
        self.roots_attr_eq = Some((key.to_string(), value.to_string()));
        self
    }

    /// Execute: for each root, fetch its k-hop membership at the range
    /// start, the members' initial states, and the members' in-range
    /// events. Panics if a needed chunk is fully unavailable; see
    /// [`SotsQuery::try_fetch`].
    pub fn fetch(self) -> SoTS {
        self.try_fetch()
            .unwrap_or_else(|e| panic!("TAF SoTS fetch failed ({e}); use try_fetch"))
    }

    /// Fallible [`SotsQuery::fetch`]: surfaces
    /// [`StoreError::Unavailable`] from any worker's k-hop or history
    /// fetch instead of panicking mid-analytics.
    pub fn try_fetch(self) -> Result<SoTS, StoreError> {
        // Pin ONCE at entry (same discipline as `SonQuery::try_fetch`).
        let pinned = self.handler.pin();
        let tgi: &TgiView = &pinned;
        let workers = self.handler.workers;
        let range = self.range;
        let k = self.k;
        let roots: Vec<NodeId> = match (self.roots, self.roots_attr_eq) {
            (Some(r), _) => r,
            (None, Some((key, value))) => {
                tgi.try_nodes_matching_at(&key, &AttrValue::Text(value.clone()), range.start)?
            }
            (None, None) => tgi.try_snapshot(range.start)?.sorted_ids(),
        };
        let subs: Vec<Result<SubgraphT, StoreError>> = parallel_chunks(roots, workers, |chunk| {
            chunk
                .into_iter()
                .map(|root| {
                    // Strategy picked per root from the Table-1 cost
                    // estimators (recursive for small k, via-snapshot
                    // for deep neighborhoods).
                    let initial: Delta = tgi.try_khop(root, range.start, k)?;
                    let members: FxHashSet<NodeId> = initial.ids().collect();
                    // Events touching two members are returned by both
                    // members' histories; keep a single copy. An event
                    // is a duplicate iff its *other* endpoint is a
                    // member we already collected.
                    let mut collected: FxHashSet<NodeId> = FxHashSet::default();
                    let mut events = Vec::new();
                    let mut member_list: Vec<NodeId> = members.iter().copied().collect();
                    member_list.sort_unstable();
                    for m in member_list {
                        let h = tgi.try_node_history_c(m, range, 1)?;
                        for e in h.events {
                            let (a, b) = e.kind.touched();
                            let other = if a == m { b } else { Some(a) };
                            let dup = other
                                .is_some_and(|o| members.contains(&o) && collected.contains(&o));
                            if !dup {
                                events.push(e);
                            }
                        }
                        collected.insert(m);
                    }
                    Ok(SubgraphT::new(root, members, initial, events, range))
                })
                .collect()
        });
        let subs = subs.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(SoTS::new(subs, range, workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_core::TgiConfig;
    use hgs_datagen::LabeledChurn;
    use hgs_delta::Delta;
    use hgs_store::StoreConfig;

    fn setup() -> (Vec<hgs_delta::Event>, TgiHandler) {
        let events = LabeledChurn {
            nodes: 120,
            edge_events: 900,
            label_flips: 300,
            seed: 9,
        }
        .generate();
        let tgi = Tgi::build(
            TgiConfig {
                events_per_timespan: 700,
                eventlist_size: 80,
                partition_size: 40,
                horizontal_partitions: 2,
                ..TgiConfig::default()
            },
            StoreConfig::new(2, 1),
            &events,
        );
        (events, TgiHandler::new(Arc::new(tgi), 2))
    }

    #[test]
    fn full_son_fetch_covers_graph() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let son = h.son().timeslice(TimeRange::new(0, end + 1)).fetch();
        let final_state = Delta::snapshot_by_replay(&events, end);
        assert_eq!(son.len(), final_state.cardinality());
        // Spot-check a node's final state through the SoN.
        let id = final_state.sorted_ids()[3];
        let got = son.get(id).unwrap().version_at(end).unwrap();
        assert_eq!(&got, final_state.node(id).unwrap());
    }

    #[test]
    fn select_pushdown_fetches_only_requested() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let before = h.tgi().store().stats_snapshot();
        let son = h
            .son()
            .timeslice(TimeRange::new(end / 2, end + 1))
            .select_ids(vec![1, 2, 3])
            .fetch();
        let diff = hgs_store::SimStore::stats_since(&h.tgi().store().stats_snapshot(), &before);
        let rows: u64 = diff.iter().map(|m| m.rows_read).sum();
        assert_eq!(son.len(), 3);
        assert!(
            rows < 200,
            "pushdown must avoid a full-graph read, rows={rows}"
        );
    }

    #[test]
    fn son_fetch_matches_per_node_histories() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 3, end);
        let son = h.son().timeslice(range).fetch();
        for id in [0u64, 5, 17, 40] {
            let direct = h.tgi().node_history(id, range);
            let via_son = son.get(id).expect("node in SoN");
            assert_eq!(via_son.initial(), direct.initial.as_ref(), "initial {id}");
            assert_eq!(via_son.events(), &direct.events[..], "events {id}");
        }
        let _ = events;
    }

    #[test]
    fn sots_fetch_builds_khop_subgraphs() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 2, end);
        let sots = h.sots(1).timeslice(range).roots(vec![0, 1, 2]).fetch();
        assert_eq!(sots.len(), 3);
        let state = Delta::snapshot_by_replay(&events, range.start);
        for sub in sots.subgraphs() {
            let want: FxHashSet<NodeId> = state
                .node(sub.root)
                .map(|n| n.all_neighbors().chain(std::iter::once(sub.root)).collect())
                .unwrap_or_default();
            let got: FxHashSet<NodeId> = sub.initial().ids().collect();
            assert_eq!(got, want, "membership of root {}", sub.root);
        }
    }

    #[test]
    fn attr_pushdown_matches_full_fetch_filter() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let range = TimeRange::new(0, end + 1);
        for label in ["Author", "Paper", "Venue"] {
            let full = h
                .son()
                .timeslice(range)
                .fetch()
                .select_attr("EntityType", label);
            let pushed = h
                .son()
                .timeslice(range)
                .select_attr_eq("EntityType", label)
                .fetch();
            let want: Vec<NodeId> = full.nodes().iter().map(|n| n.id()).collect();
            let got: Vec<NodeId> = pushed.nodes().iter().map(|n| n.id()).collect();
            assert_eq!(got, want, "pushdown answer for {label}");
            assert!(!got.is_empty(), "degenerate: no {label} nodes at all");
        }
    }

    #[test]
    fn attr_pushdown_reads_fewer_bytes_than_full_fetch() {
        // A selective predicate — 5 "Rare" nodes out of 150 — is the
        // workload the pushdown targets: one index row plus the five
        // nodes' micro-partitions instead of the whole graph.
        let mut events = Vec::new();
        for id in 0..150u64 {
            events.push(hgs_delta::Event::new(
                id,
                hgs_delta::EventKind::AddNode { id },
            ));
            events.push(hgs_delta::Event::new(
                id,
                hgs_delta::EventKind::SetNodeAttr {
                    id,
                    key: "EntityType".into(),
                    value: hgs_delta::AttrValue::Text(
                        if id < 5 { "Rare" } else { "Common" }.into(),
                    ),
                },
            ));
        }
        for i in 0..1_000u64 {
            let (a, b) = ((i * 7) % 150, (i * 13 + 1) % 150);
            if a != b {
                events.push(hgs_delta::Event::new(
                    150 + i,
                    hgs_delta::EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }
        }
        // Two identically built TGIs, each with a cold session cache,
        // so the byte counters compare the two plans fairly.
        let fetched_bytes = |pushdown: bool| {
            let tgi = Tgi::build(
                TgiConfig {
                    events_per_timespan: 700,
                    eventlist_size: 80,
                    partition_size: 40,
                    horizontal_partitions: 2,
                    ..TgiConfig::default()
                },
                StoreConfig::new(2, 1),
                &events,
            );
            let h = TgiHandler::new(Arc::new(tgi), 2);
            let end = events.last().unwrap().time;
            let range = TimeRange::new(0, end + 1);
            let before = h.tgi().store().stats_snapshot();
            let son = if pushdown {
                h.son()
                    .timeslice(range)
                    .select_attr_eq("EntityType", "Rare")
                    .fetch()
            } else {
                h.son().timeslice(range).fetch()
            };
            let diff = hgs_store::SimStore::stats_since(&h.tgi().store().stats_snapshot(), &before);
            (son.len(), diff.iter().map(|m| m.bytes_read).sum::<u64>())
        };
        let (pushed_len, pushed_bytes) = fetched_bytes(true);
        let (full_len, full_bytes) = fetched_bytes(false);
        assert_eq!(pushed_len, 5, "exactly the Rare nodes");
        assert_eq!(full_len, 150);
        assert!(
            pushed_bytes < full_bytes,
            "pushdown read {pushed_bytes} bytes, full fetch {full_bytes}"
        );
    }

    #[test]
    fn attr_pushdown_respects_explicit_id_set() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let range = TimeRange::new(0, end + 1);
        let all = h
            .son()
            .timeslice(range)
            .select_attr_eq("EntityType", "Author")
            .fetch();
        let ids: Vec<NodeId> = (0..10).collect();
        let narrowed = h
            .son()
            .timeslice(range)
            .select_ids(ids.clone())
            .select_attr_eq("EntityType", "Author")
            .fetch();
        for n in narrowed.nodes() {
            assert!(ids.contains(&n.id()), "fetched outside the id set");
            assert!(all.get(n.id()).is_some(), "kept a non-Author node");
        }
    }

    #[test]
    fn sots_roots_matching_picks_labelled_roots() {
        let (events, h) = setup();
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 2, end + 1);
        let state = Delta::snapshot_by_replay(&events, range.start);
        let mut want: Vec<NodeId> = state
            .iter()
            .filter(|n| {
                n.attrs
                    .get("EntityType")
                    .and_then(|v| v.as_text())
                    .is_some_and(|t| t == "Venue")
            })
            .map(|n| n.id)
            .collect();
        want.sort_unstable();
        let sots = h
            .sots(1)
            .timeslice(range)
            .roots_matching("EntityType", "Venue")
            .fetch();
        let mut got: Vec<NodeId> = sots.subgraphs().iter().map(|s| s.root).collect();
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "degenerate: no Venue roots at all");
    }

    #[test]
    fn attr_pushdown_surfaces_unavailability() {
        let (_, h) = setup();
        let end = h.tgi().end_time();
        let range = TimeRange::new(0, end.max(2));
        for m in 0..h.tgi().store().machine_count() {
            h.tgi().store().fail_machine(m);
        }
        assert!(matches!(
            h.son()
                .timeslice(range)
                .select_attr_eq("EntityType", "Author")
                .try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            h.sots(1)
                .timeslice(range)
                .roots_matching("EntityType", "Author")
                .try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        for m in 0..h.tgi().store().machine_count() {
            h.tgi().store().heal_machine(m);
        }
        assert!(h
            .son()
            .timeslice(range)
            .select_attr_eq("EntityType", "Author")
            .try_fetch()
            .is_ok());
    }

    #[test]
    fn try_fetch_surfaces_unavailability_instead_of_panicking() {
        let (_, h) = setup();
        let end = h.tgi().end_time();
        let range = TimeRange::new(0, end.max(2));
        for m in 0..h.tgi().store().machine_count() {
            h.tgi().store().fail_machine(m);
        }
        assert!(matches!(
            h.son().timeslice(range).try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            h.son()
                .timeslice(range)
                .select_ids(vec![1, 2, 3])
                .try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            h.sots(1).timeslice(range).roots(vec![0, 1]).try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        // Default roots need a snapshot too: still an Err, not a panic.
        assert!(matches!(
            h.sots(1).timeslice(range).try_fetch(),
            Err(StoreError::Unavailable { .. })
        ));
        // Healed cluster serves the same fetch again.
        for m in 0..h.tgi().store().machine_count() {
            h.tgi().store().heal_machine(m);
        }
        assert!(h.son().timeslice(range).try_fetch().is_ok());
    }

    #[test]
    fn service_backed_fetch_pins_one_watermark_under_ingest() {
        let events = LabeledChurn {
            nodes: 120,
            edge_events: 900,
            label_flips: 300,
            seed: 9,
        }
        .generate();
        let split = events.len() / 2;
        // The service starts with the first half of the history...
        let svc = hgs_core::TgiService::build(
            TgiConfig {
                events_per_timespan: 400,
                eventlist_size: 80,
                partition_size: 40,
                horizontal_partitions: 2,
                ..TgiConfig::default()
            },
            StoreConfig::new(2, 1),
            &events[..split],
        );
        let h = TgiHandler::serving(Arc::clone(&svc), 2);
        let w0 = svc.watermark();
        let range = TimeRange::new(0, svc.pin().end_time() + 1);
        let before = h.son().timeslice(range).fetch();
        // ...and keeps answering the same SoN for the same timeslice
        // while the second half streams in: each fetch pins whatever
        // watermark is current, and sealed history never changes.
        std::thread::scope(|s| {
            let svc = &svc;
            let events = &events;
            s.spawn(move || {
                for batch in events[split..].chunks(200) {
                    svc.append_events(batch);
                }
            });
            for _ in 0..5 {
                let again = h.son().timeslice(range).fetch();
                assert_eq!(again.len(), before.len());
                for n in before.nodes() {
                    let b = again.get(n.id()).expect("node vanished mid-ingest");
                    assert_eq!(b.events(), n.events(), "history of {}", n.id());
                }
                std::thread::yield_now();
            }
        });
        assert!(svc.watermark() > w0, "ingest advanced the watermark");
        // A fresh query (default timeslice re-reads the pinned end
        // time) now covers the full history.
        let full = h.son().fetch();
        let final_state = Delta::snapshot_by_replay(&events, events.last().unwrap().time);
        assert_eq!(full.len(), final_state.cardinality());
    }

    #[test]
    fn worker_counts_agree() {
        let (_, h) = setup();
        let end = h.tgi().end_time();
        let r = TimeRange::new(0, end);
        let son1 = SonQuery {
            handler: TgiHandler::new(h.tgi().clone(), 1),
            range: r,
            ids: None,
            attr_eq: None,
        }
        .fetch();
        let son4 = SonQuery {
            handler: TgiHandler::new(h.tgi().clone(), 4),
            range: r,
            ids: None,
            attr_eq: None,
        }
        .fetch();
        assert_eq!(son1.len(), son4.len());
        let d1 = son1.node_compute(|n| n.change_count());
        let d4 = son4.node_compute(|n| n.change_count());
        assert_eq!(d1, d4);
    }
}

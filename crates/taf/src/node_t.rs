//! `NodeT` — the temporal node (Definition 6).
//!
//! "A temporal node N_T is defined as a sequence of all and only the
//! states of a node N over a time range T." Physically it is stored
//! exactly as §5.2 prescribes: "an initial snapshot of the node,
//! followed by a list of chronologically sorted events" — which is
//! precisely what TGI's Algorithm 2 returns, so `NodeT` wraps
//! [`hgs_core::NodeHistory`].

use hgs_core::NodeHistory;
use hgs_delta::{Event, NodeId, StaticNode, Time, TimeRange};

/// A temporal node: one node's full state sequence over a range.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeT {
    history: NodeHistory,
}

impl NodeT {
    /// Wrap a fetched node history.
    pub fn new(history: NodeHistory) -> NodeT {
        NodeT { history }
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.history.id
    }

    /// `GetStartTime()` of §5.2.
    pub fn start_time(&self) -> Time {
        self.history.range.start
    }

    /// `GetEndTime()` of §5.2.
    pub fn end_time(&self) -> Time {
        self.history.range.end
    }

    /// The covered range.
    pub fn range(&self) -> TimeRange {
        self.history.range
    }

    /// The initial state (at `start_time`), if the node existed.
    pub fn initial(&self) -> Option<&StaticNode> {
        self.history.initial.as_ref()
    }

    /// The chronologically sorted in-range events.
    pub fn events(&self) -> &[Event] {
        &self.history.events
    }

    /// `getVersions()`: every distinct state over the range.
    pub fn versions(&self) -> Vec<(Time, Option<StaticNode>)> {
        self.history.versions()
    }

    /// `getVersionAt(t)`: the state as of `t`.
    pub fn version_at(&self, t: Time) -> Option<StaticNode> {
        self.history.state_at(t)
    }

    /// `getNeighborIDsAt(t)`.
    pub fn neighbor_ids_at(&self, t: Time) -> Vec<NodeId> {
        self.version_at(t)
            .map(|n| n.all_neighbors().collect())
            .unwrap_or_default()
    }

    /// Distinct timepoints at which this node changed, ascending.
    ///
    /// TGI-fetched histories arrive chronologically sorted, but
    /// [`NodeT::new`] accepts any caller-assembled [`NodeHistory`]
    /// (e.g. merged from several sources), so sort before dedup —
    /// `Vec::dedup` alone only removes *adjacent* duplicates and
    /// would leave repeats of a timestamp that recurs non-adjacently.
    pub fn change_points(&self) -> Vec<Time> {
        let mut ts: Vec<Time> = self.history.events.iter().map(|e| e.time).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Number of in-range events.
    pub fn change_count(&self) -> usize {
        self.history.change_count()
    }

    /// Restrict to a sub-range (the Timeslicing operator's per-node
    /// work): the new initial state is this node's state at
    /// `sub.start`, and only events inside `sub` are kept.
    pub fn timeslice(&self, sub: TimeRange) -> NodeT {
        let clamped = TimeRange::new(
            sub.start.max(self.start_time()),
            sub.end
                .min(self.end_time())
                .max(sub.start.max(self.start_time())),
        );
        let initial = self.history.state_at(clamped.start);
        let events = self
            .history
            .events
            .iter()
            .filter(|e| e.time > clamped.start && e.time < clamped.end)
            .cloned()
            .collect();
        NodeT {
            history: NodeHistory {
                id: self.id(),
                range: clamped,
                initial,
                events,
            },
        }
    }

    /// Keep only the named attributes in every state (the Filter
    /// operator): structure is untouched, other attributes are
    /// projected away.
    pub fn filter_attrs(&self, keys: &[&str]) -> NodeT {
        let project = |n: &StaticNode| -> StaticNode {
            let mut out = n.clone();
            let drop: Vec<String> = out
                .attrs
                .iter()
                .map(|(k, _)| k.to_owned())
                .filter(|k| !keys.contains(&k.as_str()))
                .collect();
            for k in drop {
                out.attrs.remove(&k);
            }
            out
        };
        let initial = self.history.initial.as_ref().map(project);
        let events = self
            .history
            .events
            .iter()
            .filter(|e| match &e.kind {
                hgs_delta::EventKind::SetNodeAttr { key, .. }
                | hgs_delta::EventKind::RemoveNodeAttr { key, .. } => keys.contains(&key.as_str()),
                _ => true,
            })
            .cloned()
            .collect();
        NodeT {
            history: NodeHistory {
                id: self.id(),
                range: self.range(),
                initial,
                events,
            },
        }
    }

    /// Into the underlying history.
    pub fn into_history(self) -> NodeHistory {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::{AttrValue, EventKind};

    fn sample() -> NodeT {
        let mut initial = StaticNode::new(1);
        initial.attrs.set("color", AttrValue::Text("red".into()));
        initial.attrs.set("size", AttrValue::Int(3));
        NodeT::new(NodeHistory {
            id: 1,
            range: TimeRange::new(10, 100),
            initial: Some(initial),
            events: vec![
                Event::new(
                    20,
                    EventKind::AddEdge {
                        src: 1,
                        dst: 2,
                        weight: 1.0,
                        directed: false,
                    },
                ),
                Event::new(
                    40,
                    EventKind::SetNodeAttr {
                        id: 1,
                        key: "color".into(),
                        value: AttrValue::Text("blue".into()),
                    },
                ),
                Event::new(60, EventKind::RemoveEdge { src: 1, dst: 2 }),
            ],
        })
    }

    #[test]
    fn versions_walk_states() {
        let n = sample();
        let v = n.versions();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].1.as_ref().unwrap().degree(), 0);
        assert_eq!(v[1].1.as_ref().unwrap().degree(), 1);
        assert_eq!(
            v[2].1
                .as_ref()
                .unwrap()
                .attrs
                .get("color")
                .and_then(|a| a.as_text()),
            Some("blue")
        );
        assert_eq!(v[3].1.as_ref().unwrap().degree(), 0);
    }

    #[test]
    fn version_at_walks_time() {
        let n = sample();
        assert_eq!(n.version_at(15).unwrap().degree(), 0);
        assert_eq!(n.version_at(20).unwrap().degree(), 1);
        assert_eq!(n.neighbor_ids_at(30), vec![2]);
        assert!(n.neighbor_ids_at(70).is_empty());
    }

    #[test]
    fn timeslice_restricts() {
        let n = sample();
        let s = n.timeslice(TimeRange::new(30, 50));
        assert_eq!(s.start_time(), 30);
        assert_eq!(s.events().len(), 1, "only the t=40 event remains");
        assert_eq!(
            s.initial().unwrap().degree(),
            1,
            "initial reflects t=30 state"
        );
    }

    #[test]
    fn filter_attrs_projects() {
        let n = sample();
        let f = n.filter_attrs(&["size"]);
        assert!(f.initial().unwrap().attrs.get("color").is_none());
        assert!(f.initial().unwrap().attrs.get("size").is_some());
        // The color-change event is dropped; structural events stay.
        assert_eq!(f.events().len(), 2);
    }

    #[test]
    fn change_points_dedup() {
        let n = sample();
        assert_eq!(n.change_points(), vec![20, 40, 60]);
        assert_eq!(n.change_count(), 3);
    }

    /// Regression: a caller-assembled history whose events are not
    /// chronologically sorted (a timestamp recurring non-adjacently)
    /// used to leak duplicate change points through the adjacent-only
    /// `Vec::dedup`.
    #[test]
    fn change_points_dedup_non_adjacent_duplicates() {
        let mk = |t: Time, dst: NodeId| {
            Event::new(
                t,
                EventKind::AddEdge {
                    src: 1,
                    dst,
                    weight: 1.0,
                    directed: false,
                },
            )
        };
        let n = NodeT::new(NodeHistory {
            id: 1,
            range: TimeRange::new(0, 100),
            initial: None,
            // t=20 recurs with t=10 in between: unsorted merge order.
            events: vec![mk(20, 2), mk(10, 3), mk(20, 4)],
        });
        assert_eq!(n.change_points(), vec![10, 20]);
    }
}

//! Property tests for TAF over TGI-backed data: the SoN fetched in
//! bulk must agree with per-node Algorithm-2 fetches; operators must
//! agree with their sequential/naive counterparts; the incremental
//! operator must equal recompute for arbitrary incremental quantities.

use std::sync::Arc;

use hgs_core::{Tgi, TgiConfig};
use hgs_delta::{AttrValue, Delta, Event, EventKind, TimeRange};
use hgs_store::StoreConfig;
use hgs_taf::{SoN, TgiHandler};
use proptest::prelude::*;

fn arb_history() -> impl Strategy<Value = Vec<Event>> {
    let kind = prop_oneof![
        3 => (0u64..25).prop_map(|id| EventKind::AddNode { id }),
        5 => (0u64..25, 0u64..25).prop_map(|(a, b)| EventKind::AddEdge {
            src: a, dst: b, weight: 1.0, directed: false
        }),
        2 => (0u64..25, 0u64..25).prop_map(|(a, b)| EventKind::RemoveEdge { src: a, dst: b }),
        2 => (0u64..25, 0i64..5).prop_map(|(id, v)| EventKind::SetNodeAttr {
            id, key: "x".into(), value: AttrValue::Int(v)
        }),
    ];
    prop::collection::vec((kind, 1u64..3), 10..150).prop_map(|kinds| {
        let mut t = 0u64;
        kinds
            .into_iter()
            .map(|(kind, gap)| {
                t += gap;
                Event::new(t, kind)
            })
            .collect()
    })
}

fn build(events: &[Event]) -> TgiHandler {
    let cfg = TgiConfig {
        events_per_timespan: 60,
        eventlist_size: 15,
        partition_size: 8,
        horizontal_partitions: 2,
        ..TgiConfig::default()
    };
    let tgi = Tgi::build(cfg, StoreConfig::new(2, 1), events);
    TgiHandler::new(Arc::new(tgi), 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bulk SoN fetch == per-node history fetch, node by node.
    #[test]
    fn son_fetch_matches_algorithm_2(events in arb_history()) {
        let handler = build(&events);
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 3, end + 1);
        let son = handler.son().timeslice(range).fetch();
        for n in son.nodes() {
            let direct = handler.tgi().node_history(n.id(), range);
            prop_assert_eq!(n.initial(), direct.initial.as_ref(), "initial {}", n.id());
            prop_assert_eq!(n.events(), &direct.events[..], "events {}", n.id());
        }
    }

    /// The SoN covers exactly the nodes alive at the range start plus
    /// those touched inside the range.
    #[test]
    fn son_covers_live_and_touched(events in arb_history()) {
        let handler = build(&events);
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 2, end + 1);
        let son = handler.son().timeslice(range).fetch();
        // The normalized stream is what the index stores.
        let normalized = hgs_delta::normalize_events(&events);
        let mut expected: std::collections::BTreeSet<u64> =
            Delta::snapshot_by_replay(&normalized, range.start).ids().collect();
        for e in normalized.iter().filter(|e| e.time > range.start && e.time < range.end) {
            let (a, b) = e.kind.touched();
            expected.insert(a);
            if let Some(b) = b {
                expected.insert(b);
            }
        }
        let got: std::collections::BTreeSet<u64> = son.nodes().iter().map(|n| n.id()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Timeslicing then materializing equals materializing directly.
    #[test]
    fn timeslice_then_graph_equals_direct(events in arb_history(), frac in 2u64..5) {
        let handler = build(&events);
        let end = events.last().unwrap().time;
        let t = end / frac;
        let full = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();
        let sliced = full.timeslice(TimeRange::new(t, end + 1));
        let g1 = full.graph_at(t);
        let g2 = sliced.graph_at(t);
        prop_assert_eq!(g1.node_count(), g2.node_count());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
    }

    /// Compare(a, a) is all zeros; node_compute is worker-count
    /// invariant.
    #[test]
    fn operator_sanity(events in arb_history()) {
        let handler = build(&events);
        let end = events.last().unwrap().time;
        let son = handler.son().timeslice(TimeRange::new(0, end + 1)).fetch();
        let self_diff = SoN::compare(&son, &son, |n| n.change_count() as f64);
        prop_assert!(self_diff.iter().all(|(_, d)| *d == 0.0));
        let w1 = son.clone().with_workers(1).node_compute(|n| n.change_count());
        let w4 = son.clone().with_workers(4).node_compute(|n| n.change_count());
        prop_assert_eq!(w1, w4);
    }

    /// NodeComputeDelta == NodeComputeTemporal for an incrementally
    /// maintainable quantity (edge-entry count), on arbitrary SoTS.
    #[test]
    fn incremental_equals_recompute(events in arb_history()) {
        let handler = build(&events);
        let end = events.last().unwrap().time;
        let range = TimeRange::new(end / 4, end + 1);
        let roots: Vec<u64> = (0..25).step_by(5).collect();
        let sots = handler.sots(1).timeslice(range).roots(roots).fetch();
        let count_edges = |d: &Delta| d.size() as i64;
        // The update function must honor the subgraph's member scope
        // (events touching non-members only change the member side),
        // so bind it per subgraph.
        for sub in sots.subgraphs() {
            let members = sub.members().clone();
            let single = hgs_taf::SoTS::new(vec![sub.clone()], range, 2);
            let temporal = single.node_compute_temporal(count_edges);
            let incremental = single.node_compute_delta(count_edges, |before, prev, e| {
                let mut after = before.clone();
                hgs_core::scope::apply_event_scoped(&mut after, &e.kind, |id| {
                    members.contains(&id)
                });
                prev + (after.size() as i64 - before.size() as i64)
            });
            prop_assert_eq!(&temporal, &incremental, "root {}", sub.root);
        }
    }
}

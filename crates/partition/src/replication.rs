//! Edge-cut replication planning (Fig. 5d).
//!
//! TGI can replicate the 1-hop neighbors that a partition's edge cuts
//! point to into an *auxiliary* micro-delta stored beside the
//! partition's own micro-delta. A 1-hop neighborhood fetch then touches
//! a single partition (plus its auxiliary), while snapshot and
//! node-centric queries are unaffected because the auxiliary is stored
//! separately.

use crate::partitioner::PartitionMap;
use hgs_delta::{Delta, FxHashSet, NodeId};

/// For each partition `p` in `0..map.parts()`, the set of node-ids
/// that are *not* in `p` but are adjacent to a node in `p` — the
/// nodes whose states get replicated into `p`'s auxiliary micro-delta.
pub fn boundary_neighbors(state: &Delta, map: &PartitionMap) -> Vec<Vec<NodeId>> {
    let k = map.parts() as usize;
    let mut out: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); k];
    for n in state.iter() {
        let pn = map.assign(n.id) as usize;
        for nbr in n.all_neighbors() {
            let pm = map.assign(nbr) as usize;
            if pm != pn {
                // nbr is outside n's partition: replicate nbr into pn.
                out[pn].insert(nbr);
            }
        }
    }
    out.into_iter()
        .map(|s| {
            let mut v: Vec<NodeId> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Total replication factor: replicated node copies divided by node
/// count (0 = no cuts; grows with partitioning quality loss — the
/// "degree of replication increases with inferior partitioning"
/// observation of §4.5).
pub fn replication_overhead(state: &Delta, map: &PartitionMap) -> f64 {
    if state.cardinality() == 0 {
        return 0.0;
    }
    let replicas: usize = boundary_neighbors(state, map).iter().map(|v| v.len()).sum();
    replicas as f64 / state.cardinality() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::{EventKind, FxHashMap};

    fn line_graph(n: u64) -> Delta {
        let mut d = Delta::new();
        for i in 0..n - 1 {
            d.apply_event(&EventKind::AddEdge {
                src: i,
                dst: i + 1,
                weight: 1.0,
                directed: false,
            });
        }
        d
    }

    fn explicit_halves(n: u64) -> PartitionMap {
        let mut m = FxHashMap::default();
        for i in 0..n {
            m.insert(i, if i < n / 2 { 0 } else { 1 });
        }
        PartitionMap::explicit(m, 2)
    }

    #[test]
    fn line_split_replicates_only_the_cut() {
        // 0-1-2-3-4-5 split as {0,1,2} {3,4,5}: cut edge (2,3).
        let d = line_graph(6);
        let map = explicit_halves(6);
        let aux = boundary_neighbors(&d, &map);
        assert_eq!(aux[0], vec![3], "partition 0 replicates node 3");
        assert_eq!(aux[1], vec![2], "partition 1 replicates node 2");
    }

    #[test]
    fn no_cut_no_replicas() {
        let mut d = Delta::new();
        d.apply_event(&EventKind::AddEdge {
            src: 0,
            dst: 1,
            weight: 1.0,
            directed: false,
        });
        d.apply_event(&EventKind::AddEdge {
            src: 10,
            dst: 11,
            weight: 1.0,
            directed: false,
        });
        let mut m = FxHashMap::default();
        for i in [0u64, 1] {
            m.insert(i, 0);
        }
        for i in [10u64, 11] {
            m.insert(i, 1);
        }
        let map = PartitionMap::explicit(m, 2);
        let aux = boundary_neighbors(&d, &map);
        assert!(aux.iter().all(|v| v.is_empty()));
        assert_eq!(replication_overhead(&d, &map), 0.0);
    }

    #[test]
    fn worse_partitioning_more_replication() {
        let d = line_graph(64);
        let good = explicit_halves(64);
        let bad = PartitionMap::random(2); // hash-random cuts ~half the edges
        assert!(replication_overhead(&d, &bad) > replication_overhead(&d, &good));
    }
}

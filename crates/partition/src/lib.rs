//! # hgs-partition — graph partitioning for TGI (§4.5 of the paper)
//!
//! TGI bounds micro-delta sizes by partitioning each horizontal slice
//! of the graph. This crate implements the paper's partitioning
//! machinery:
//!
//! * [`collapse`] — the time-collapse functions Ω that project a
//!   temporal graph over a timespan onto a single weighted static
//!   graph: **Median**, **Union-Max** (the paper's default) and
//!   **Union-Mean**, plus the three node-weight schemes (uniform /
//!   degree / average degree).
//! * [`partitioner`] — [`partitioner::RandomPartitioner`] (hash-based,
//!   zero bookkeeping) and [`partitioner::LocalityPartitioner`]
//!   (streaming LDG placement + Kernighan–Lin-style refinement), the
//!   "Maxflow"/min-cut partitioner of Fig. 15a, with
//!   [`partitioner::edge_cut_fraction`] / [`partitioner::balance`]
//!   quality metrics.
//! * [`timespan`] — splitting the history into timespans with roughly
//!   equal numbers of events (Fig. 4), within which the partitioning
//!   stays fixed.
//! * [`replication`] — planning the 1-hop edge-cut replicas stored in
//!   auxiliary micro-deltas (Fig. 5d).

pub mod collapse;
pub mod partitioner;
pub mod replication;
pub mod timespan;

pub use collapse::{CollapsedGraph, NodeWeighting, Omega};
pub use partitioner::{
    balance, edge_cut_fraction, LocalityPartitioner, PartitionMap, Partitioner, RandomPartitioner,
};
pub use replication::boundary_neighbors;
pub use timespan::{plan_timespans, Timespan};

//! Static graph partitioners over collapsed graphs.
//!
//! Two strategies, per §4.5: random hash-based partitioning ("simpler
//! and involves minimal bookkeeping" but loses locality) and
//! locality-aware min-cut-style partitioning ("preserves locality but
//! incurs extra bookkeeping in form of a {node-id: partition-id}
//! map"). The locality partitioner is Linear Deterministic Greedy
//! streaming placement followed by Kernighan–Lin-style boundary
//! refinement — a standard lightweight min-cut heuristic that fills
//! the role of the paper's "Maxflow" partitioner in Fig. 15a.

use crate::collapse::CollapsedGraph;
use hgs_delta::{hash::hash_u64, FxHashMap, NodeId};

/// A `{node-id: partition-id}` map with a hash fallback for nodes that
/// appear after the map was computed (new arrivals within a timespan).
#[derive(Debug, Clone)]
pub struct PartitionMap {
    map: FxHashMap<NodeId, u32>,
    k: u32,
}

impl PartitionMap {
    /// A purely hash-based map (random partitioning: empty explicit
    /// map, everything falls through to the hash).
    pub fn random(k: u32) -> PartitionMap {
        assert!(k >= 1);
        PartitionMap {
            map: FxHashMap::default(),
            k,
        }
    }

    /// Wrap an explicit assignment.
    pub fn explicit(map: FxHashMap<NodeId, u32>, k: u32) -> PartitionMap {
        assert!(k >= 1);
        debug_assert!(map.values().all(|&p| p < k));
        PartitionMap { map, k }
    }

    /// Number of partitions.
    #[inline]
    pub fn parts(&self) -> u32 {
        self.k
    }

    /// Partition of a node: explicit assignment if present, hash
    /// fallback otherwise.
    #[inline]
    pub fn assign(&self, id: NodeId) -> u32 {
        match self.map.get(&id) {
            Some(&p) => p,
            None => (hash_u64(id) % self.k as u64) as u32,
        }
    }

    /// Number of explicit entries (the bookkeeping cost the paper
    /// talks about; zero for random partitioning).
    pub fn bookkeeping_entries(&self) -> usize {
        self.map.len()
    }
}

/// A static-graph partitioner.
pub trait Partitioner {
    /// Assign every node of `g` to one of `k` partitions.
    fn partition(&self, g: &CollapsedGraph, k: u32) -> PartitionMap;
    /// Human-readable name for experiment output.
    fn name(&self) -> &'static str;
}

/// Hash-based random partitioning.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomPartitioner;

impl Partitioner for RandomPartitioner {
    fn partition(&self, _g: &CollapsedGraph, k: u32) -> PartitionMap {
        PartitionMap::random(k)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Locality-aware partitioning: LDG streaming placement (in BFS order,
/// so neighborhoods stream together) + bounded Kernighan–Lin
/// refinement passes.
#[derive(Debug, Clone, Copy)]
pub struct LocalityPartitioner {
    /// Refinement passes over boundary vertices.
    pub refine_passes: usize,
    /// Allowed imbalance: partitions may exceed the ideal weight by
    /// this factor (1.05 = 5% slack).
    pub balance_slack: f64,
}

impl Default for LocalityPartitioner {
    fn default() -> LocalityPartitioner {
        LocalityPartitioner {
            refine_passes: 2,
            balance_slack: 1.05,
        }
    }
}

impl Partitioner for LocalityPartitioner {
    fn partition(&self, g: &CollapsedGraph, k: u32) -> PartitionMap {
        let n = g.len();
        if n == 0 || k <= 1 {
            return PartitionMap::explicit(FxHashMap::default(), k.max(1));
        }
        let total_w: f64 = g.node_weights.iter().sum();
        let cap = (total_w / k as f64) * self.balance_slack;

        let mut part = vec![u32::MAX; n];
        let mut load = vec![0.0f64; k as usize];

        // BFS streaming order: keeps neighborhoods adjacent in the
        // stream, which is what makes LDG effective.
        let order = bfs_order(g);
        for &v in &order {
            let vw = g.node_weights[v as usize];
            // Score each partition: neighbors already there, damped by
            // remaining capacity (classic LDG score).
            let mut nbr_count = vec![0.0f64; k as usize];
            for &(u, w) in &g.adj[v as usize] {
                let pu = part[u as usize];
                if pu != u32::MAX {
                    nbr_count[pu as usize] += w;
                }
            }
            let mut best = 0u32;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..k as usize {
                let slack = 1.0 - load[p] / cap;
                if slack <= 0.0 {
                    continue;
                }
                let score = nbr_count[p] * slack + 1e-9 * slack;
                if score > best_score {
                    best_score = score;
                    best = p as u32;
                }
            }
            if best_score == f64::NEG_INFINITY {
                // All partitions "full" (possible with slack rounding):
                // place on lightest.
                best = load
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
            }
            part[v as usize] = best;
            load[best as usize] += vw;
        }

        // KL-style refinement: greedily move boundary vertices to the
        // partition with the highest connectivity gain, respecting
        // capacity.
        for _ in 0..self.refine_passes {
            let mut moved = 0usize;
            for v in 0..n {
                let pv = part[v];
                if g.adj[v].is_empty() {
                    continue;
                }
                let mut conn = vec![0.0f64; k as usize];
                for &(u, w) in &g.adj[v] {
                    conn[part[u as usize] as usize] += w;
                }
                let (best_p, best_conn) = conn
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, &c)| (i as u32, c))
                    .unwrap();
                let vw = g.node_weights[v];
                if best_p != pv
                    && best_conn > conn[pv as usize]
                    && load[best_p as usize] + vw <= cap
                {
                    load[pv as usize] -= vw;
                    load[best_p as usize] += vw;
                    part[v] = best_p;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }

        let mut map = FxHashMap::default();
        map.reserve(n);
        for (i, &p) in part.iter().enumerate() {
            map.insert(g.nodes[i], p);
        }
        PartitionMap::explicit(map, k)
    }

    fn name(&self) -> &'static str {
        "locality"
    }
}

/// BFS order over the collapsed graph, restarting at every unvisited
/// node (handles disconnected graphs).
fn bfs_order(g: &CollapsedGraph) -> Vec<u32> {
    let n = g.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(u, _) in &g.adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order
}

/// Fraction of edge weight crossing partitions under `map`.
pub fn edge_cut_fraction(g: &CollapsedGraph, map: &PartitionMap) -> f64 {
    let mut cut = 0.0f64;
    let mut total = 0.0f64;
    for v in 0..g.len() {
        let pv = map.assign(g.nodes[v]);
        for &(u, w) in &g.adj[v] {
            if (u as usize) < v {
                continue; // count each edge once
            }
            total += w;
            if map.assign(g.nodes[u as usize]) != pv {
                cut += w;
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        cut / total
    }
}

/// Balance: max partition weight divided by ideal weight (1.0 is
/// perfect).
pub fn balance(g: &CollapsedGraph, map: &PartitionMap) -> f64 {
    let k = map.parts() as usize;
    let mut load = vec![0.0f64; k];
    for (i, id) in g.nodes.iter().enumerate() {
        load[map.assign(*id) as usize] += g.node_weights[i];
    }
    let total: f64 = load.iter().sum();
    if total == 0.0 {
        return 1.0;
    }
    let ideal = total / k as f64;
    load.iter().copied().fold(0.0, f64::max) / ideal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::{NodeWeighting, Omega};
    use hgs_delta::{Delta, Event, EventKind, TimeRange};

    /// Two dense clusters joined by one bridge edge.
    fn two_clusters(n_per: u64) -> CollapsedGraph {
        let mut events = Vec::new();
        let mut t = 0u64;
        let clique = |base: u64, events: &mut Vec<Event>, t: &mut u64| {
            for i in 0..n_per {
                for j in (i + 1)..n_per {
                    // sparse-ish cluster: connect if close
                    if j - i <= 3 {
                        events.push(Event::new(
                            *t,
                            EventKind::AddEdge {
                                src: base + i,
                                dst: base + j,
                                weight: 1.0,
                                directed: false,
                            },
                        ));
                        *t += 1;
                    }
                }
            }
        };
        clique(0, &mut events, &mut t);
        clique(1000, &mut events, &mut t);
        events.push(Event::new(
            t,
            EventKind::AddEdge {
                src: 0,
                dst: 1000,
                weight: 1.0,
                directed: false,
            },
        ));
        CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, t + 10),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        )
    }

    #[test]
    fn locality_beats_random_on_clustered_graph() {
        let g = two_clusters(40);
        let rand_map = RandomPartitioner.partition(&g, 2);
        let loc_map = LocalityPartitioner::default().partition(&g, 2);
        let cut_r = edge_cut_fraction(&g, &rand_map);
        let cut_l = edge_cut_fraction(&g, &loc_map);
        assert!(cut_l < cut_r / 4.0, "locality {cut_l} vs random {cut_r}");
    }

    #[test]
    fn locality_cut_is_small_in_absolute_terms() {
        // Streaming placement may split a band once (the BFS stream
        // interleaves the two clusters through the bridge), but the cut
        // must stay a small constant fraction — random hashing cuts
        // ~50% of edges on this graph.
        let g = two_clusters(40);
        let map = LocalityPartitioner::default().partition(&g, 2);
        let cut = edge_cut_fraction(&g, &map);
        assert!(cut <= 0.10, "cut fraction {cut}");
    }

    #[test]
    fn balance_within_slack() {
        let g = two_clusters(40);
        for k in [2u32, 4] {
            let map = LocalityPartitioner::default().partition(&g, k);
            let b = balance(&g, &map);
            assert!(b <= 1.3, "k={k} balance {b}");
        }
    }

    #[test]
    fn random_partitioning_has_no_bookkeeping() {
        let g = two_clusters(10);
        let map = RandomPartitioner.partition(&g, 4);
        assert_eq!(map.bookkeeping_entries(), 0);
        // ...but still assigns everything deterministically in range.
        for &id in &g.nodes {
            assert!(map.assign(id) < 4);
            assert_eq!(map.assign(id), map.assign(id));
        }
    }

    #[test]
    fn unknown_nodes_fall_back_to_hash() {
        let g = two_clusters(10);
        let map = LocalityPartitioner::default().partition(&g, 4);
        let unknown: NodeId = 999_999;
        assert!(map.assign(unknown) < 4);
    }

    #[test]
    fn empty_graph() {
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &[],
            TimeRange::new(0, 1),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        let map = LocalityPartitioner::default().partition(&g, 4);
        assert_eq!(map.parts(), 4);
        assert_eq!(edge_cut_fraction(&g, &map), 0.0);
        assert_eq!(balance(&g, &map), 1.0);
    }

    #[test]
    fn k_equals_one() {
        let g = two_clusters(10);
        let map = LocalityPartitioner::default().partition(&g, 1);
        assert_eq!(edge_cut_fraction(&g, &map), 0.0);
    }
}

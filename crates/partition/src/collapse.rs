//! Time-collapse functions Ω (§4.5).
//!
//! To partition a *time-evolving* graph over a timespan `τ = [ts, te)`,
//! the paper first projects it to a single weighted static graph
//! `Gτ = Ω(G over τ)`, then applies static partitioning. The
//! constraint on Ω is that `Gτ` contains every vertex that existed at
//! least once during `τ`. Three collapse options are given, plus three
//! node-weight schemes; Union-Max with uniform node weights is the
//! default TGI configuration.

use hgs_delta::{Delta, Event, EventKind, FxHashMap, NodeId, Time, TimeRange};

/// Edge-weight collapse choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Omega {
    /// Use the graph exactly as of the median timepoint of `τ`.
    /// (Edges outside that instant are dropped — cheapest, least
    /// representative.)
    Median,
    /// Include every edge that ever existed during `τ` with its
    /// maximum weight. TGI's default.
    UnionMax,
    /// Include every edge that ever existed, weighted by the
    /// time-fraction-weighted mean of its weight (absence counts 0).
    UnionMean,
}

/// Node-weight scheme for balance constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeWeighting {
    /// `w(n) = 1`.
    Uniform,
    /// `w(n) = degree(n)` in the collapsed graph.
    Degree,
    /// `w(n)` = average degree of `n` over `τ` (sampled at event
    /// boundaries, time-weighted).
    AvgDegree,
}

/// The collapsed weighted static graph fed to the partitioners.
#[derive(Debug, Clone)]
pub struct CollapsedGraph {
    /// All vertices that existed at least once during `τ`, sorted.
    pub nodes: Vec<NodeId>,
    /// Node weights, aligned with `nodes`.
    pub node_weights: Vec<f64>,
    /// Weighted undirected adjacency: `adj[i]` lists `(node index,
    /// weight)` pairs, sorted by index.
    pub adj: Vec<Vec<(u32, f64)>>,
    index: FxHashMap<NodeId, u32>,
}

impl CollapsedGraph {
    /// Dense index of a node-id.
    pub fn idx(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total edge weight (each edge once).
    pub fn total_edge_weight(&self) -> f64 {
        let twice: f64 = self.adj.iter().flatten().map(|(_, w)| *w).sum();
        twice / 2.0
    }

    /// Induced subgraph on the nodes selected by `keep`. Used by TGI
    /// to partition each horizontal slice independently: the collapse
    /// runs once over the full span, then each `sid`'s induced
    /// subgraph is partitioned.
    pub fn induced<F: Fn(NodeId) -> bool>(&self, keep: F) -> CollapsedGraph {
        let kept: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| keep(self.nodes[i as usize]))
            .collect();
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        remap.reserve(kept.len());
        for (new_i, &old_i) in kept.iter().enumerate() {
            remap.insert(old_i, new_i as u32);
        }
        let nodes: Vec<NodeId> = kept.iter().map(|&i| self.nodes[i as usize]).collect();
        let node_weights: Vec<f64> = kept
            .iter()
            .map(|&i| self.node_weights[i as usize])
            .collect();
        let adj: Vec<Vec<(u32, f64)>> = kept
            .iter()
            .map(|&i| {
                self.adj[i as usize]
                    .iter()
                    .filter_map(|&(j, w)| remap.get(&j).map(|&nj| (nj, w)))
                    .collect()
            })
            .collect();
        let mut index = FxHashMap::default();
        index.reserve(nodes.len());
        for (i, id) in nodes.iter().enumerate() {
            index.insert(*id, i as u32);
        }
        CollapsedGraph {
            nodes,
            node_weights,
            adj,
            index,
        }
    }

    /// Collapse a temporal graph over `range`.
    ///
    /// `initial` is the graph state at `range.start`; `events` are the
    /// changes during `range` (events outside the range are ignored).
    pub fn collapse(
        initial: &Delta,
        events: &[Event],
        range: TimeRange,
        omega: Omega,
        weighting: NodeWeighting,
    ) -> CollapsedGraph {
        match omega {
            Omega::Median => Self::collapse_median(initial, events, range, weighting),
            Omega::UnionMax | Omega::UnionMean => {
                Self::collapse_union(initial, events, range, omega, weighting)
            }
        }
    }

    fn collapse_median(
        initial: &Delta,
        events: &[Event],
        range: TimeRange,
        weighting: NodeWeighting,
    ) -> CollapsedGraph {
        let median = range.start + range.len() / 2;
        let mut state = initial.clone();
        for e in events {
            if !range.contains(e.time) || e.time > median {
                continue;
            }
            state.apply_event(&e.kind);
        }
        // Ω must keep every vertex that ever existed in τ, so union the
        // vertex sets even though edges come from the median instant.
        let mut all_nodes: hgs_delta::FxHashSet<NodeId> = initial.ids().collect();
        for e in events.iter().filter(|e| range.contains(e.time)) {
            let (a, b) = e.kind.touched();
            all_nodes.insert(a);
            if let Some(b) = b {
                all_nodes.insert(b);
            }
        }
        let mut edges: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
        for n in state.iter() {
            for e in &n.edges {
                let key = (n.id.min(e.nbr), n.id.max(e.nbr));
                edges.insert(key, e.weight as f64);
            }
        }
        Self::build(all_nodes.into_iter().collect(), edges, weighting, None)
    }

    fn collapse_union(
        initial: &Delta,
        events: &[Event],
        range: TimeRange,
        omega: Omega,
        weighting: NodeWeighting,
    ) -> CollapsedGraph {
        let span = range.len().max(1) as f64;
        let mut state = initial.clone();
        let mut all_nodes: hgs_delta::FxHashSet<NodeId> = initial.ids().collect();

        // For UnionMax: running max weight per edge.
        // For UnionMean: integral of weight·dt per edge, so we track the
        // time each live edge was last (re)weighted.
        let mut max_w: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
        let mut integral: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
        let mut live_since: FxHashMap<(NodeId, NodeId), (Time, f64)> = FxHashMap::default();

        // AvgDegree bookkeeping: integral of degree·dt per node.
        let mut deg_integral: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut deg_now: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut last_t = range.start;

        let open_edge = |key: (NodeId, NodeId),
                         w: f64,
                         t: Time,
                         live: &mut FxHashMap<(NodeId, NodeId), (Time, f64)>,
                         maxes: &mut FxHashMap<(NodeId, NodeId), f64>| {
            let entry = maxes.entry(key).or_insert(w);
            if w > *entry {
                *entry = w;
            }
            live.entry(key).or_insert((t, w));
        };

        // Seed from the initial state (edges live since range.start).
        for n in initial.iter() {
            deg_now.insert(n.id, n.degree());
            for e in &n.edges {
                if n.id <= e.nbr {
                    open_edge(
                        (n.id, e.nbr),
                        e.weight as f64,
                        range.start,
                        &mut live_since,
                        &mut max_w,
                    );
                }
            }
        }

        let close_edge =
            |key: (NodeId, NodeId),
             t: Time,
             live: &mut FxHashMap<(NodeId, NodeId), (Time, f64)>,
             integral: &mut FxHashMap<(NodeId, NodeId), f64>| {
                if let Some((since, w)) = live.remove(&key) {
                    *integral.entry(key).or_insert(0.0) += w * (t.saturating_sub(since)) as f64;
                }
            };

        for e in events {
            if !range.contains(e.time) {
                continue;
            }
            let (a, b) = e.kind.touched();
            all_nodes.insert(a);
            if let Some(b) = b {
                all_nodes.insert(b);
            }
            // Advance degree integrals to e.time.
            let dt = (e.time - last_t) as f64;
            if dt > 0.0 {
                for (id, d) in deg_now.iter() {
                    *deg_integral.entry(*id).or_insert(0.0) += *d as f64 * dt;
                }
                last_t = e.time;
            }
            match &e.kind {
                EventKind::AddEdge {
                    src, dst, weight, ..
                } => {
                    let key = (*src.min(dst), *src.max(dst));
                    open_edge(key, *weight as f64, e.time, &mut live_since, &mut max_w);
                    *deg_now.entry(*src).or_insert(0) += 1;
                    *deg_now.entry(*dst).or_insert(0) += 1;
                }
                EventKind::RemoveEdge { src, dst } => {
                    let key = (*src.min(dst), *src.max(dst));
                    close_edge(key, e.time, &mut live_since, &mut integral);
                    deg_now.entry(*src).and_modify(|d| *d = d.saturating_sub(1));
                    deg_now.entry(*dst).and_modify(|d| *d = d.saturating_sub(1));
                }
                EventKind::SetEdgeWeight { src, dst, weight } => {
                    let key = (*src.min(dst), *src.max(dst));
                    close_edge(key, e.time, &mut live_since, &mut integral);
                    open_edge(key, *weight as f64, e.time, &mut live_since, &mut max_w);
                }
                EventKind::RemoveNode { id } => {
                    // Close all live edges incident to `id`.
                    if let Some(n) = state.node(*id) {
                        let nbrs: Vec<NodeId> = n.all_neighbors().collect();
                        for nbr in nbrs {
                            let key = (*id.min(&nbr), *id.max(&nbr));
                            close_edge(key, e.time, &mut live_since, &mut integral);
                            deg_now.entry(nbr).and_modify(|d| *d = d.saturating_sub(1));
                        }
                    }
                    deg_now.insert(*id, 0);
                }
                _ => {}
            }
            state.apply_event(&e.kind);
        }
        // Close out everything still live at range.end.
        let dt = (range.end.min(Time::MAX - 1) - last_t) as f64;
        if dt > 0.0 {
            for (id, d) in deg_now.iter() {
                *deg_integral.entry(*id).or_insert(0.0) += *d as f64 * dt;
            }
        }
        let live_keys: Vec<(NodeId, NodeId)> = live_since.keys().copied().collect();
        for key in live_keys {
            if let Some((since, w)) = live_since.remove(&key) {
                *integral.entry(key).or_insert(0.0) +=
                    w * (range.end.min(Time::MAX - 1).saturating_sub(since)) as f64;
            }
        }

        let edges: FxHashMap<(NodeId, NodeId), f64> = match omega {
            Omega::UnionMax => max_w,
            Omega::UnionMean => integral.into_iter().map(|(k, v)| (k, v / span)).collect(),
            Omega::Median => unreachable!(),
        };
        let avg_deg: Option<FxHashMap<NodeId, f64>> = match weighting {
            NodeWeighting::AvgDegree => Some(
                deg_integral
                    .into_iter()
                    .map(|(k, v)| (k, v / span))
                    .collect(),
            ),
            _ => None,
        };
        Self::build(all_nodes.into_iter().collect(), edges, weighting, avg_deg)
    }

    fn build(
        mut nodes: Vec<NodeId>,
        edges: FxHashMap<(NodeId, NodeId), f64>,
        weighting: NodeWeighting,
        avg_deg: Option<FxHashMap<NodeId, f64>>,
    ) -> CollapsedGraph {
        // `nodes` arrives in hash-set iteration order: the sort
        // immediately before the adjacent-only `dedup` is load-bearing.
        nodes.sort_unstable();
        nodes.dedup();
        let mut index = FxHashMap::default();
        index.reserve(nodes.len());
        for (i, id) in nodes.iter().enumerate() {
            index.insert(*id, i as u32);
        }
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nodes.len()];
        for ((a, b), w) in &edges {
            if a == b || *w <= 0.0 {
                continue;
            }
            let (Some(&ia), Some(&ib)) = (index.get(a), index.get(b)) else {
                continue;
            };
            adj[ia as usize].push((ib, *w));
            adj[ib as usize].push((ia, *w));
        }
        for l in adj.iter_mut() {
            l.sort_unstable_by_key(|(i, _)| *i);
        }
        let node_weights: Vec<f64> = nodes
            .iter()
            .enumerate()
            .map(|(i, id)| match weighting {
                NodeWeighting::Uniform => 1.0,
                NodeWeighting::Degree => adj[i].len() as f64,
                NodeWeighting::AvgDegree => avg_deg
                    .as_ref()
                    .and_then(|m| m.get(id))
                    .copied()
                    .unwrap_or(0.0),
            })
            .collect();
        CollapsedGraph {
            nodes,
            node_weights,
            adj,
            index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time, kind: EventKind) -> Event {
        Event::new(t, kind)
    }

    fn add(t: Time, s: NodeId, d: NodeId, w: f32) -> Event {
        ev(
            t,
            EventKind::AddEdge {
                src: s,
                dst: d,
                weight: w,
                directed: false,
            },
        )
    }

    fn del(t: Time, s: NodeId, d: NodeId) -> Event {
        ev(t, EventKind::RemoveEdge { src: s, dst: d })
    }

    #[test]
    fn union_max_keeps_transient_edges() {
        // Edge (1,2) exists only during [2,5) but must be present.
        let events = vec![add(2, 1, 2, 3.0), del(5, 1, 2), add(6, 3, 4, 1.0)];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        assert_eq!(g.len(), 4);
        let i1 = g.idx(1).unwrap() as usize;
        assert_eq!(g.adj[i1].len(), 1);
        assert_eq!(g.adj[i1][0].1, 3.0);
    }

    #[test]
    fn union_max_takes_maximum_weight() {
        let events = vec![
            add(1, 1, 2, 1.0),
            ev(
                3,
                EventKind::SetEdgeWeight {
                    src: 1,
                    dst: 2,
                    weight: 9.0,
                },
            ),
            ev(
                5,
                EventKind::SetEdgeWeight {
                    src: 1,
                    dst: 2,
                    weight: 2.0,
                },
            ),
        ];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        let i1 = g.idx(1).unwrap() as usize;
        assert_eq!(g.adj[i1][0].1, 9.0);
    }

    #[test]
    fn union_mean_weights_by_time_fraction() {
        // Edge live with weight 4.0 for half the range -> mean 2.0.
        let events = vec![add(0, 1, 2, 4.0), del(5, 1, 2)];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::UnionMean,
            NodeWeighting::Uniform,
        );
        let i1 = g.idx(1).unwrap() as usize;
        assert!((g.adj[i1][0].1 - 2.0).abs() < 1e-9, "{}", g.adj[i1][0].1);
    }

    #[test]
    fn median_uses_midpoint_state() {
        // Edge added at t=8 is after the median (5) of [0,10): excluded
        // from edges, but its endpoints must still be vertices.
        let events = vec![add(1, 1, 2, 1.0), add(8, 3, 4, 1.0)];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::Median,
            NodeWeighting::Uniform,
        );
        assert_eq!(g.len(), 4, "all vertices kept");
        let i3 = g.idx(3).unwrap() as usize;
        assert!(g.adj[i3].is_empty(), "late edge not in median state");
        let i1 = g.idx(1).unwrap() as usize;
        assert_eq!(g.adj[i1].len(), 1);
    }

    #[test]
    fn initial_state_is_included() {
        let mut initial = Delta::new();
        initial.apply_event(&EventKind::AddEdge {
            src: 7,
            dst: 8,
            weight: 2.0,
            directed: false,
        });
        let g = CollapsedGraph::collapse(
            &initial,
            &[],
            TimeRange::new(100, 200),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_edge_weight(), 2.0);
    }

    #[test]
    fn degree_weighting() {
        let events = vec![add(1, 1, 2, 1.0), add(2, 1, 3, 1.0)];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::UnionMax,
            NodeWeighting::Degree,
        );
        let i1 = g.idx(1).unwrap() as usize;
        assert_eq!(g.node_weights[i1], 2.0);
    }

    #[test]
    fn avg_degree_weighting_integrates_time() {
        // Node 1 has degree 1 for [5,10) of a 10-long range -> avg 0.5.
        let events = vec![add(5, 1, 2, 1.0)];
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, 10),
            Omega::UnionMax,
            NodeWeighting::AvgDegree,
        );
        let i1 = g.idx(1).unwrap() as usize;
        assert!(
            (g.node_weights[i1] - 0.5).abs() < 1e-9,
            "{}",
            g.node_weights[i1]
        );
    }
}

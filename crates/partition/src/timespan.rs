//! Timespan planning (§4.4 point 1, Fig. 4).
//!
//! The history is divided into non-overlapping timespans "keeping the
//! number of changes to the graph consistent across different time
//! spans"; partitioning is recomputed at timespan boundaries. The
//! planner splits an event trace into spans of roughly `events_per_span`
//! events, snapping boundaries to timestamp edges so that all events
//! sharing a timestamp land in the same span.

use hgs_delta::{Event, Time, TimeRange};

/// One planned timespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timespan {
    /// Timespan id (`tsid`), consecutive from 0.
    pub tsid: u32,
    /// Half-open time range covered.
    pub range: TimeRange,
    /// Index range `[ev_start, ev_end)` into the source event slice.
    pub ev_start: usize,
    /// End event index (exclusive).
    pub ev_end: usize,
}

impl Timespan {
    /// Number of events in the span.
    pub fn len(&self) -> usize {
        self.ev_end - self.ev_start
    }

    /// True when the span holds no events.
    pub fn is_empty(&self) -> bool {
        self.ev_start == self.ev_end
    }
}

/// Split `events` (chronologically sorted) into spans of roughly
/// `events_per_span` events. The final span's range extends to
/// `Time::MAX` so that queries beyond the last event resolve.
pub fn plan_timespans(events: &[Event], events_per_span: usize) -> Vec<Timespan> {
    assert!(events_per_span > 0);
    if events.is_empty() {
        return vec![Timespan {
            tsid: 0,
            range: TimeRange::new(0, Time::MAX),
            ev_start: 0,
            ev_end: 0,
        }];
    }
    debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));

    let mut spans = Vec::new();
    let mut start_idx = 0usize;
    let mut range_start: Time = 0;
    while start_idx < events.len() {
        let want_end = (start_idx + events_per_span).min(events.len());
        let end_idx = if want_end >= events.len() {
            events.len()
        } else {
            // Snap forward only when the cut would split a group of
            // events sharing one timestamp.
            let boundary_t = events[want_end].time;
            let mut e = want_end;
            if events[want_end - 1].time == boundary_t {
                while e < events.len() && events[e].time == boundary_t {
                    e += 1;
                }
            }
            e
        };
        let range_end = if end_idx >= events.len() {
            Time::MAX
        } else {
            events[end_idx].time
        };
        spans.push(Timespan {
            tsid: spans.len() as u32,
            range: TimeRange::new(range_start, range_end),
            ev_start: start_idx,
            ev_end: end_idx,
        });
        range_start = range_end;
        start_idx = end_idx;
    }
    spans
}

/// Locate the span containing time `t` (spans tile `[0, Time::MAX)`).
pub fn span_for_time(spans: &[Timespan], t: Time) -> usize {
    debug_assert!(!spans.is_empty());
    spans
        .partition_point(|s| s.range.end <= t)
        .min(spans.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::EventKind;

    fn ev(t: Time) -> Event {
        Event::new(t, EventKind::AddNode { id: t })
    }

    #[test]
    fn spans_tile_time_and_events() {
        let events: Vec<Event> = (0..100).map(ev).collect();
        let spans = plan_timespans(&events, 30);
        assert_eq!(spans.first().unwrap().range.start, 0);
        assert_eq!(spans.last().unwrap().range.end, Time::MAX);
        for w in spans.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start, "contiguous");
            assert_eq!(w[0].ev_end, w[1].ev_start);
        }
        let total: usize = spans.iter().map(|s| s.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn roughly_equal_sizes() {
        let events: Vec<Event> = (0..1000).map(ev).collect();
        let spans = plan_timespans(&events, 100);
        assert_eq!(spans.len(), 10);
        assert!(spans.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn equal_timestamps_stay_together() {
        // 10 events all at t=5, then 10 at t=6.
        let mut events: Vec<Event> = (0..10).map(|_| ev(5)).collect();
        events.extend((0..10).map(|_| ev(6)));
        let spans = plan_timespans(&events, 5);
        for s in &spans {
            let times: Vec<Time> = events[s.ev_start..s.ev_end]
                .iter()
                .map(|e| e.time)
                .collect();
            // span boundary never splits a timestamp group
            if s.ev_end < events.len() {
                assert_ne!(times.last(), Some(&events[s.ev_end].time));
            }
        }
    }

    #[test]
    fn span_lookup() {
        let events: Vec<Event> = (0..90).map(ev).collect();
        let spans = plan_timespans(&events, 30);
        assert_eq!(span_for_time(&spans, 0), 0);
        assert_eq!(span_for_time(&spans, 29), 0);
        assert_eq!(span_for_time(&spans, 30), 1);
        assert_eq!(span_for_time(&spans, 1_000_000), spans.len() - 1);
    }

    #[test]
    fn empty_history_single_span() {
        let spans = plan_timespans(&[], 10);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].is_empty());
        assert_eq!(span_for_time(&spans, 12345), 0);
    }
}

//! Property tests for the partitioning machinery: assignment validity,
//! balance bounds, and locality quality on arbitrary clustered graphs.

use hgs_delta::{Delta, Event, EventKind, TimeRange};
use hgs_partition::{
    balance, edge_cut_fraction, plan_timespans, CollapsedGraph, LocalityPartitioner, NodeWeighting,
    Omega, Partitioner, RandomPartitioner,
};
use proptest::prelude::*;

/// Random clustered temporal graph: `clusters` groups of `per` nodes,
/// dense inside, sparse across.
fn arb_clustered() -> impl Strategy<Value = Vec<Event>> {
    (2usize..5, 8usize..25, any::<u64>()).prop_map(|(clusters, per, seed)| {
        // Simple deterministic xorshift so the strategy stays pure.
        let mut x = seed | 1;
        let mut rand = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let mut events = Vec::new();
        let mut t = 0u64;
        for c in 0..clusters {
            let base = (c * 1000) as u64;
            for i in 0..per as u64 {
                for _ in 0..3 {
                    let j = rand(per as u64);
                    if j != i {
                        t += 1;
                        events.push(Event::new(
                            t,
                            EventKind::AddEdge {
                                src: base + i,
                                dst: base + j,
                                weight: 1.0,
                                directed: false,
                            },
                        ));
                    }
                }
            }
        }
        // A few cross-cluster bridges.
        for _ in 0..clusters {
            let a = rand(clusters as u64) * 1000 + rand(per as u64);
            let b = rand(clusters as u64) * 1000 + rand(per as u64);
            if a != b {
                t += 1;
                events.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }
        }
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every node gets a partition in range; balance stays within the
    /// partitioner's slack (plus integer rounding on tiny graphs).
    #[test]
    fn locality_assignment_valid_and_balanced(events in arb_clustered(), k in 2u32..6) {
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, events.last().map(|e| e.time + 1).unwrap_or(1)),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        let map = LocalityPartitioner::default().partition(&g, k);
        for &id in &g.nodes {
            prop_assert!(map.assign(id) < k);
        }
        if g.len() >= 4 * k as usize {
            let b = balance(&g, &map);
            prop_assert!(b <= 1.6, "balance {b} for k={k}, n={}", g.len());
        }
    }

    /// Locality partitioning never cuts more than random hashing does
    /// (on clustered graphs it should cut much less; we assert the
    /// weak inequality plus a strict win when clusters dominate).
    #[test]
    fn locality_no_worse_than_random(events in arb_clustered()) {
        let g = CollapsedGraph::collapse(
            &Delta::new(),
            &events,
            TimeRange::new(0, events.last().map(|e| e.time + 1).unwrap_or(1)),
            Omega::UnionMax,
            NodeWeighting::Uniform,
        );
        let k = 2u32;
        let loc = LocalityPartitioner::default().partition(&g, k);
        let rnd = RandomPartitioner.partition(&g, k);
        let cut_l = edge_cut_fraction(&g, &loc);
        let cut_r = edge_cut_fraction(&g, &rnd);
        prop_assert!(cut_l <= cut_r + 0.05, "locality {cut_l} vs random {cut_r}");
    }

    /// Timespan planning tiles the event list exactly, regardless of
    /// timestamp collisions.
    #[test]
    fn timespans_tile_arbitrary_histories(
        gaps in prop::collection::vec(0u64..3, 1..200),
        span in 5usize..50,
    ) {
        let mut t = 0u64;
        let events: Vec<Event> = gaps
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                t += g;
                Event::new(t, EventKind::AddNode { id: i as u64 })
            })
            .collect();
        let spans = plan_timespans(&events, span);
        prop_assert_eq!(spans[0].ev_start, 0);
        prop_assert_eq!(spans.last().unwrap().ev_end, events.len());
        for w in spans.windows(2) {
            prop_assert_eq!(w[0].ev_end, w[1].ev_start);
            prop_assert_eq!(w[0].range.end, w[1].range.start);
            // No timestamp group split across a boundary.
            prop_assert!(
                events[w[0].ev_end - 1].time != events[w[0].ev_end].time,
                "split timestamp group at {}", w[0].ev_end
            );
        }
    }
}

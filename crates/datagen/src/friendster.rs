//! Dataset 4 analog: a static social graph with uniform synthetic
//! timestamps.
//!
//! The paper takes a Friendster gaming-network snapshot (~37.5M nodes,
//! 500M edges) and "adds synthetic dates at uniform intervals" to its
//! edges. We generate a power-law static graph with a Chung–Lu style
//! model, then emit its edges as `AddEdge` events at uniformly spaced
//! timestamps in random order — the same construction at laptop scale.

use hgs_delta::{Event, EventKind, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the Friendster-like generator.
#[derive(Debug, Clone, Copy)]
pub struct FriendsterLike {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of edges.
    pub edges: usize,
    /// Power-law exponent for expected degrees (2 < gamma < 3 for
    /// social networks).
    pub gamma: f64,
    /// Gap between consecutive event timestamps.
    pub time_step: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FriendsterLike {
    fn default() -> FriendsterLike {
        FriendsterLike {
            nodes: 20_000,
            edges: 100_000,
            gamma: 2.5,
            time_step: 10,
            seed: 0x5EED_0004,
        }
    }
}

impl FriendsterLike {
    /// Convenience constructor.
    pub fn sized(nodes: usize, edges: usize) -> FriendsterLike {
        FriendsterLike {
            nodes,
            edges,
            ..FriendsterLike::default()
        }
    }

    /// Generate the event trace: all node arrivals at t=0, then edge
    /// additions at uniform `time_step` intervals.
    pub fn generate(&self) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.nodes;
        assert!(n >= 2);

        // Chung–Lu expected degrees w_i ∝ (i+1)^(-1/(gamma-1)).
        let exponent = -1.0 / (self.gamma - 1.0);
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
        // Cumulative distribution for weighted endpoint sampling.
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cdf.push(acc);
        }
        let total = acc;
        let sample = |rng: &mut StdRng| -> NodeId {
            let x = rng.random::<f64>() * total;
            cdf.partition_point(|&c| c < x) as NodeId
        };

        let mut events: Vec<Event> = Vec::with_capacity(n + self.edges);
        for id in 0..n as NodeId {
            events.push(Event::new(0, EventKind::AddNode { id }));
        }

        // Sample distinct edges.
        let mut seen = hgs_delta::FxHashSet::default();
        seen.reserve(self.edges * 2);
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.edges);
        let mut guard = 0usize;
        while pairs.len() < self.edges && guard < self.edges * 20 {
            guard += 1;
            let a = sample(&mut rng);
            let b = sample(&mut rng);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                pairs.push(key);
            }
        }
        // Random temporal order, uniform spacing.
        pairs.shuffle(&mut rng);
        let mut t = self.time_step;
        for (a, b) in pairs {
            events.push(Event::new(
                t,
                EventKind::AddEdge {
                    src: a,
                    dst: b,
                    weight: 1.0,
                    directed: false,
                },
            ));
            t += self.time_step;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Delta;

    #[test]
    fn generates_requested_sizes() {
        let ev = FriendsterLike::sized(1_000, 5_000).generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        assert_eq!(state.cardinality(), 1_000);
        let edges = state.edge_count();
        assert!((4_500..=5_000).contains(&edges), "edges={edges}");
    }

    #[test]
    fn timestamps_uniformly_spaced() {
        let g = FriendsterLike {
            time_step: 7,
            ..FriendsterLike::sized(100, 300)
        };
        let ev = g.generate();
        let edge_times: Vec<u64> = ev
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AddEdge { .. }))
            .map(|e| e.time)
            .collect();
        assert!(edge_times.windows(2).all(|w| w[1] - w[0] == 7));
    }

    #[test]
    fn heavy_tail_present() {
        let ev = FriendsterLike::sized(2_000, 20_000).generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        let mut degs: Vec<usize> = state.iter().map(|n| n.degree()).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(degs[0] > 5 * degs[degs.len() / 2].max(1));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            FriendsterLike::sized(500, 1_000).generate(),
            FriendsterLike::sized(500, 1_000).generate()
        );
    }
}

//! Datasets 2/3 analog: churn augmentation.
//!
//! The paper builds Datasets 2 and 3 by appending ~333M / ~733M
//! synthetic events that "randomly add new edges or delete existing
//! edges over a period of time" to the Wikipedia trace. This module is
//! that construction: given a base trace, it appends `extra` events
//! after the base trace's end, each either adding a random new edge or
//! deleting a random existing one.

use hgs_delta::{Delta, Event, EventKind, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Append `extra` churn events (random edge add/delete) to `base`.
///
/// `delete_prob` is the probability a churn event is a deletion (the
/// paper keeps the mix balanced; default callers use 0.5). Returns the
/// combined, chronologically sorted trace.
pub fn augment_with_churn(base: &[Event], extra: usize, delete_prob: f64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Event> = base.to_vec();
    out.reserve(extra);

    // Materialize the end state to know which nodes/edges exist.
    let state = Delta::snapshot_by_replay(base, u64::MAX);
    let nodes: Vec<NodeId> = state.sorted_ids();
    assert!(
        nodes.len() >= 2,
        "base trace must contain at least two nodes"
    );
    // Live edge set as (min, max) pairs for uniform deletion.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for n in state.iter() {
        for e in &n.edges {
            if n.id <= e.nbr {
                edges.push((n.id, e.nbr));
            }
        }
    }

    let mut t = base.last().map(|e| e.time + 1).unwrap_or(0);
    let mut made = 0usize;
    while made < extra {
        t += 1;
        let do_delete = !edges.is_empty() && rng.random::<f64>() < delete_prob;
        if do_delete {
            let i = rng.random_range(0..edges.len());
            let (a, b) = edges.swap_remove(i);
            out.push(Event::new(t, EventKind::RemoveEdge { src: a, dst: b }));
        } else {
            let a = nodes[rng.random_range(0..nodes.len())];
            let b = nodes[rng.random_range(0..nodes.len())];
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            out.push(Event::new(
                t,
                EventKind::AddEdge {
                    src: a,
                    dst: b,
                    weight: 1.0,
                    directed: false,
                },
            ));
            // Duplicate adds are overwrites; only track once.
            if !edges.contains(&key) {
                edges.push(key);
            }
        }
        made += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiki::WikiGrowth;

    #[test]
    fn produces_requested_extra_events() {
        let base = WikiGrowth::sized(2_000).generate();
        let out = augment_with_churn(&base, 1_000, 0.5, 42);
        assert_eq!(out.len(), base.len() + 1_000);
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn contains_deletions_and_additions() {
        let base = WikiGrowth::sized(2_000).generate();
        let out = augment_with_churn(&base, 1_000, 0.5, 42);
        let tail = &out[base.len()..];
        let dels = tail
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RemoveEdge { .. }))
            .count();
        let adds = tail
            .iter()
            .filter(|e| matches!(e.kind, EventKind::AddEdge { .. }))
            .count();
        assert!(dels > 100, "expected deletions, got {dels}");
        assert!(adds > 100, "expected additions, got {adds}");
    }

    #[test]
    fn replay_remains_consistent() {
        let base = WikiGrowth::sized(2_000).generate();
        let out = augment_with_churn(&base, 2_000, 0.6, 7);
        let state = Delta::snapshot_by_replay(&out, u64::MAX);
        // Edge symmetry is maintained by apply_event; just ensure the
        // state is non-degenerate and deletions actually shrank edges
        // relative to an all-adds trace.
        let all_adds = augment_with_churn(&base, 2_000, 0.0, 7);
        let state_adds = Delta::snapshot_by_replay(&all_adds, u64::MAX);
        assert!(state.edge_count() < state_adds.edge_count());
    }

    #[test]
    fn deterministic() {
        let base = WikiGrowth::sized(1_000).generate();
        assert_eq!(
            augment_with_churn(&base, 500, 0.5, 1),
            augment_with_churn(&base, 500, 0.5, 1)
        );
    }
}

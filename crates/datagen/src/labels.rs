//! A DBLP-like labeled graph with attribute churn — the workload of
//! the paper's incremental-computation experiment (Figs. 8 and 17).
//!
//! Nodes carry an `EntityType` attribute (`Author` / `Paper` /
//! `Venue`); the trace interleaves structural growth with attribute
//! flips, so that "count nodes labeled Author in each 2-hop
//! neighborhood over time" has many version changes — the quantity
//! NodeComputeDelta updates in O(1) per event while
//! NodeComputeTemporal recomputes from scratch.

use hgs_delta::{AttrValue, Event, EventKind, NodeId, Time};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Entity labels used by the generator.
pub const LABELS: [&str; 3] = ["Author", "Paper", "Venue"];

/// Configuration for the labeled-churn generator.
#[derive(Debug, Clone, Copy)]
pub struct LabeledChurn {
    /// Number of nodes.
    pub nodes: usize,
    /// Structural edge events.
    pub edge_events: usize,
    /// Attribute flip events (spread over the whole trace).
    pub label_flips: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledChurn {
    fn default() -> LabeledChurn {
        LabeledChurn {
            nodes: 1_000,
            edge_events: 5_000,
            label_flips: 2_000,
            seed: 0x5EED_0006,
        }
    }
}

impl LabeledChurn {
    /// Generate the trace.
    pub fn generate(&self) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::with_capacity(self.nodes * 2 + self.edge_events + self.label_flips);
        let mut t: Time = 0;

        for id in 0..self.nodes as NodeId {
            events.push(Event::new(t, EventKind::AddNode { id }));
            let label = LABELS[rng.random_range(0..LABELS.len())];
            events.push(Event::new(
                t,
                EventKind::SetNodeAttr {
                    id,
                    key: "EntityType".into(),
                    value: AttrValue::Text(label.into()),
                },
            ));
            t += 1;
        }

        let total = self.edge_events + self.label_flips;
        let mut flips_left = self.label_flips;
        let mut edges_left = self.edge_events;
        for _ in 0..total {
            t += 1;
            let do_flip = if flips_left == 0 {
                false
            } else if edges_left == 0 {
                true
            } else {
                rng.random::<f64>() < flips_left as f64 / (flips_left + edges_left) as f64
            };
            if do_flip {
                flips_left -= 1;
                let id = rng.random_range(0..self.nodes) as NodeId;
                let label = LABELS[rng.random_range(0..LABELS.len())];
                events.push(Event::new(
                    t,
                    EventKind::SetNodeAttr {
                        id,
                        key: "EntityType".into(),
                        value: AttrValue::Text(label.into()),
                    },
                ));
            } else {
                edges_left -= 1;
                let a = rng.random_range(0..self.nodes) as NodeId;
                let b = rng.random_range(0..self.nodes) as NodeId;
                if a == b {
                    continue;
                }
                events.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Delta;

    #[test]
    fn every_node_has_a_label() {
        let ev = LabeledChurn {
            nodes: 300,
            ..Default::default()
        }
        .generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        for n in state.iter() {
            let l = n.attrs.get("EntityType").and_then(|v| v.as_text()).unwrap();
            assert!(LABELS.contains(&l));
        }
    }

    #[test]
    fn has_requested_flip_volume() {
        let cfg = LabeledChurn {
            nodes: 100,
            edge_events: 1_000,
            label_flips: 500,
            seed: 1,
        };
        let ev = cfg.generate();
        let flips = ev
            .iter()
            .skip(cfg.nodes * 2)
            .filter(|e| matches!(e.kind, EventKind::SetNodeAttr { .. }))
            .count();
        assert_eq!(flips, 500);
    }

    #[test]
    fn deterministic() {
        let cfg = LabeledChurn::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }
}

//! A DBLP-like labeled graph with attribute churn — the workload of
//! the paper's incremental-computation experiment (Figs. 8 and 17).
//!
//! Nodes carry an `EntityType` attribute (`Author` / `Paper` /
//! `Venue`); the trace interleaves structural growth with attribute
//! flips, so that "count nodes labeled Author in each 2-hop
//! neighborhood over time" has many version changes — the quantity
//! NodeComputeDelta updates in O(1) per event while
//! NodeComputeTemporal recomputes from scratch.

use hgs_delta::{AttrValue, Event, EventKind, NodeId, Time};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Entity labels used by the generator.
pub const LABELS: [&str; 3] = ["Author", "Paper", "Venue"];

/// Configuration for the labeled-churn generator.
#[derive(Debug, Clone, Copy)]
pub struct LabeledChurn {
    /// Number of nodes.
    pub nodes: usize,
    /// Structural edge events.
    pub edge_events: usize,
    /// Attribute flip events (spread over the whole trace).
    pub label_flips: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledChurn {
    fn default() -> LabeledChurn {
        LabeledChurn {
            nodes: 1_000,
            edge_events: 5_000,
            label_flips: 2_000,
            seed: 0x5EED_0006,
        }
    }
}

impl LabeledChurn {
    /// Generate the trace.
    pub fn generate(&self) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::with_capacity(self.nodes * 2 + self.edge_events + self.label_flips);
        let mut t: Time = 0;

        for id in 0..self.nodes as NodeId {
            events.push(Event::new(t, EventKind::AddNode { id }));
            let label = LABELS[rng.random_range(0..LABELS.len())];
            events.push(Event::new(
                t,
                EventKind::SetNodeAttr {
                    id,
                    key: "EntityType".into(),
                    value: AttrValue::Text(label.into()),
                },
            ));
            t += 1;
        }

        let total = self.edge_events + self.label_flips;
        let mut flips_left = self.label_flips;
        let mut edges_left = self.edge_events;
        for _ in 0..total {
            t += 1;
            let do_flip = if flips_left == 0 {
                false
            } else if edges_left == 0 {
                true
            } else {
                rng.random::<f64>() < flips_left as f64 / (flips_left + edges_left) as f64
            };
            if do_flip {
                flips_left -= 1;
                let id = rng.random_range(0..self.nodes) as NodeId;
                let label = LABELS[rng.random_range(0..LABELS.len())];
                events.push(Event::new(
                    t,
                    EventKind::SetNodeAttr {
                        id,
                        key: "EntityType".into(),
                        value: AttrValue::Text(label.into()),
                    },
                ));
            } else {
                edges_left -= 1;
                let a = rng.random_range(0..self.nodes) as NodeId;
                let b = rng.random_range(0..self.nodes) as NodeId;
                if a == b {
                    continue;
                }
                events.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }
        }
        events
    }
}

/// Label attached to the dead-term cohort of [`SkewedLabels`] and
/// guaranteed churned away by the end of the trace — queries against
/// it at late timepoints must return the empty set.
pub const DEAD_LABEL: &str = "Deprecated";

/// Secondary attribute churned (set *and* removed) by
/// [`SkewedLabels`], exercising the bare-key index rows.
pub const CHURN_KEY: &str = "Grade";

/// A Zipf-skewed labeled graph with attribute churn — the workload of
/// the secondary-index experiments.
///
/// Labels are drawn from a ranked vocabulary `Label00..` with
/// probability `∝ 1/rank^s`, so a few **hot terms** cover most nodes
/// while the tail terms stay rare. A cohort of nodes starts with the
/// [`DEAD_LABEL`] and is guaranteed to be relabeled before the trace
/// ends, leaving a **dead term**: its index rows exist in early spans
/// but match nothing at late timepoints. A secondary [`CHURN_KEY`]
/// attribute is repeatedly set and removed, so bare-key rows see
/// `None` transitions too.
///
/// Every attribute event is stamped at `t >= 1`: time-0 churn is
/// indistinguishable from initial state in a node history's settled
/// initial snapshot, so keeping attributes off `t = 0` lets
/// replay-based oracles agree with the index exactly.
#[derive(Debug, Clone, Copy)]
pub struct SkewedLabels {
    /// Number of nodes.
    pub nodes: usize,
    /// Label vocabulary size (ranked, Zipf-weighted).
    pub labels: usize,
    /// Zipf skew exponent (`1.0` ≈ classic Zipf; higher = hotter head).
    pub zipf_s: f64,
    /// Fraction of nodes seeded with the [`DEAD_LABEL`] (churned away
    /// before the trace ends).
    pub dead_fraction: f64,
    /// Structural edge events.
    pub edge_events: usize,
    /// Attribute churn events (label flips plus [`CHURN_KEY`]
    /// set/remove pairs), spread over the trace.
    pub attr_churn: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkewedLabels {
    fn default() -> SkewedLabels {
        SkewedLabels {
            nodes: 1_000,
            labels: 32,
            zipf_s: 1.2,
            dead_fraction: 0.05,
            edge_events: 5_000,
            attr_churn: 2_000,
            seed: 0x5EED_0008,
        }
    }
}

impl SkewedLabels {
    /// The ranked label vocabulary.
    pub fn vocabulary(&self) -> Vec<String> {
        (0..self.labels.max(1))
            .map(|i| format!("Label{i:02}"))
            .collect()
    }

    fn zipf_cdf(&self) -> Vec<f64> {
        let n = self.labels.max(1);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(self.zipf_s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        cum
    }

    /// Generate the trace.
    pub fn generate(&self) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = self.vocabulary();
        let cdf = self.zipf_cdf();
        let nlabels = vocab.len();
        let zipf = move |rng: &mut StdRng| {
            let x: f64 = rng.random();
            cdf.partition_point(|&c| c < x).min(nlabels - 1)
        };
        let set_label = |id: NodeId, t: Time, label: &str| {
            Event::new(
                t,
                EventKind::SetNodeAttr {
                    id,
                    key: "EntityType".into(),
                    value: AttrValue::Text(label.into()),
                },
            )
        };

        let mut events = Vec::new();
        let dead_count =
            ((self.nodes as f64 * self.dead_fraction).round() as usize).min(self.nodes);
        let mut deprecated: Vec<NodeId> = Vec::new();
        // Attribute events start at t = 1 (see the type-level doc).
        let mut t: Time = 1;
        for id in 0..self.nodes as NodeId {
            events.push(Event::new(t, EventKind::AddNode { id }));
            if (id as usize) < dead_count {
                events.push(set_label(id, t, DEAD_LABEL));
                deprecated.push(id);
            } else {
                let label = vocab[zipf(&mut rng)].clone();
                events.push(set_label(id, t, &label));
            }
            t += 1;
        }

        let total = self.edge_events + self.attr_churn;
        let mut churn_left = self.attr_churn;
        let mut edges_left = self.edge_events;
        let mut graded: Vec<NodeId> = Vec::new();
        for _ in 0..total {
            t += 1;
            let do_churn = if churn_left == 0 {
                false
            } else if edges_left == 0 {
                true
            } else {
                rng.random::<f64>() < churn_left as f64 / (churn_left + edges_left) as f64
            };
            if do_churn {
                churn_left -= 1;
                match rng.random_range(0..3u8) {
                    // Label flip (retiring a Deprecated node when any
                    // remain, so the dead term drains steadily).
                    0 => {
                        let id = match deprecated.pop() {
                            Some(id) => id,
                            None => rng.random_range(0..self.nodes) as NodeId,
                        };
                        let label = vocab[zipf(&mut rng)].clone();
                        events.push(set_label(id, t, &label));
                    }
                    // Grade set.
                    1 => {
                        let id = rng.random_range(0..self.nodes) as NodeId;
                        let grade = ["A", "B", "C"][rng.random_range(0..3)];
                        events.push(Event::new(
                            t,
                            EventKind::SetNodeAttr {
                                id,
                                key: CHURN_KEY.into(),
                                value: AttrValue::Text(grade.into()),
                            },
                        ));
                        graded.push(id);
                    }
                    // Grade removal (of a node known to hold one, when
                    // any does — removals of absent keys are no-ops).
                    _ => {
                        let id = match graded.pop() {
                            Some(id) => id,
                            None => rng.random_range(0..self.nodes) as NodeId,
                        };
                        events.push(Event::new(
                            t,
                            EventKind::RemoveNodeAttr {
                                id,
                                key: CHURN_KEY.into(),
                            },
                        ));
                    }
                }
            } else {
                edges_left -= 1;
                let a = rng.random_range(0..self.nodes) as NodeId;
                let b = rng.random_range(0..self.nodes) as NodeId;
                if a == b {
                    continue;
                }
                events.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }
        }

        // Guarantee the dead term: relabel any Deprecated stragglers.
        for id in deprecated.drain(..) {
            t += 1;
            let label = vocab[zipf(&mut rng)].clone();
            events.push(set_label(id, t, &label));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Delta;

    #[test]
    fn every_node_has_a_label() {
        let ev = LabeledChurn {
            nodes: 300,
            ..Default::default()
        }
        .generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        for n in state.iter() {
            let l = n.attrs.get("EntityType").and_then(|v| v.as_text()).unwrap();
            assert!(LABELS.contains(&l));
        }
    }

    #[test]
    fn has_requested_flip_volume() {
        let cfg = LabeledChurn {
            nodes: 100,
            edge_events: 1_000,
            label_flips: 500,
            seed: 1,
        };
        let ev = cfg.generate();
        let flips = ev
            .iter()
            .skip(cfg.nodes * 2)
            .filter(|e| matches!(e.kind, EventKind::SetNodeAttr { .. }))
            .count();
        assert_eq!(flips, 500);
    }

    #[test]
    fn deterministic() {
        let cfg = LabeledChurn::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn skewed_is_deterministic() {
        let cfg = SkewedLabels::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn skewed_head_is_hot_and_tail_is_cold() {
        let cfg = SkewedLabels {
            nodes: 2_000,
            labels: 32,
            ..Default::default()
        };
        let state = Delta::snapshot_by_replay(&cfg.generate(), u64::MAX);
        let count = |label: &str| {
            state
                .iter()
                .filter(|n| {
                    n.attrs
                        .get("EntityType")
                        .and_then(|v| v.as_text())
                        .is_some_and(|t| t == label)
                })
                .count()
        };
        let head = count("Label00");
        let tail = count("Label31");
        assert!(
            head > 10 * tail.max(1),
            "head label should dominate, head={head} tail={tail}"
        );
        assert!(head > 0 && tail < cfg.nodes / 32);
    }

    #[test]
    fn dead_label_exists_early_and_is_gone_at_the_end() {
        let cfg = SkewedLabels {
            nodes: 400,
            ..Default::default()
        };
        let events = cfg.generate();
        // Present early: some node is labeled Deprecated at creation.
        let early = Delta::snapshot_by_replay(&events, cfg.nodes as u64);
        let dead_at = |state: &Delta| {
            state
                .iter()
                .filter(|n| {
                    n.attrs
                        .get("EntityType")
                        .and_then(|v| v.as_text())
                        .is_some_and(|t| t == DEAD_LABEL)
                })
                .count()
        };
        assert!(dead_at(&early) > 0, "dead-term cohort was seeded");
        // Gone at the end: the term is dead.
        let last = Delta::snapshot_by_replay(&events, u64::MAX);
        assert_eq!(dead_at(&last), 0, "dead term must be fully churned away");
    }

    #[test]
    fn grade_churn_includes_removals_and_attrs_stay_off_time_zero() {
        let events = SkewedLabels {
            nodes: 300,
            attr_churn: 1_000,
            ..Default::default()
        }
        .generate();
        let mut sets = 0;
        let mut removes = 0;
        for e in &events {
            match &e.kind {
                EventKind::SetNodeAttr { key, .. } => {
                    assert!(e.time >= 1, "attribute event at t=0");
                    if key == CHURN_KEY {
                        sets += 1;
                    }
                }
                EventKind::RemoveNodeAttr { key, .. } => {
                    assert!(e.time >= 1, "attribute event at t=0");
                    if key == CHURN_KEY {
                        removes += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(sets > 100, "grade churn present, sets={sets}");
        assert!(removes > 100, "grade removals present, removes={removes}");
    }
}

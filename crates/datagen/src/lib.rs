//! # hgs-datagen — synthetic historical-graph workloads
//!
//! Scaled-down analogs of the paper's four evaluation datasets plus two
//! richer workloads for the analytics examples:
//!
//! * [`wiki::WikiGrowth`] — Dataset 1: growth-only trace shaped like
//!   the Wikipedia citation network (preferential attachment, bursty
//!   node arrivals, heavy-tailed degrees).
//! * [`churn::augment_with_churn`] — Datasets 2/3: the paper's own
//!   augmentation (random edge additions/deletions appended over time).
//! * [`friendster::FriendsterLike`] — Dataset 4: a static power-law
//!   social graph whose edges get uniformly spaced synthetic
//!   timestamps.
//! * [`community::CommunityGraph`] — a planted-partition temporal graph
//!   with community labels and membership churn (for Compare-style
//!   analytics).
//! * [`labels::LabeledChurn`] — a DBLP-like labeled graph with
//!   attribute flips (the NodeComputeDelta workload of Fig. 17).
//!
//! All generators are deterministic given a seed.

pub mod churn;
pub mod community;
pub mod friendster;
pub mod labels;
pub mod wiki;

pub use churn::augment_with_churn;
pub use community::CommunityGraph;
pub use friendster::FriendsterLike;
pub use labels::{LabeledChurn, SkewedLabels, CHURN_KEY, DEAD_LABEL};
pub use wiki::WikiGrowth;

//! A planted-partition temporal graph with community labels and
//! membership churn.
//!
//! The paper's TAF examples (Fig. 7b) compare communities over a year
//! of history: nodes carry a `community` attribute, edges form mostly
//! within communities, and membership changes over time. This
//! generator produces exactly that workload.

use hgs_delta::{AttrValue, Event, EventKind, NodeId, Time};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the community-structured generator.
#[derive(Debug, Clone, Copy)]
pub struct CommunityGraph {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Edge events to generate.
    pub edge_events: usize,
    /// Probability an edge stays within a community.
    pub intra_prob: f64,
    /// Number of membership-switch events to sprinkle over time.
    pub switches: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommunityGraph {
    fn default() -> CommunityGraph {
        CommunityGraph {
            nodes: 2_000,
            communities: 4,
            edge_events: 10_000,
            intra_prob: 0.9,
            switches: 200,
            seed: 0x5EED_0005,
        }
    }
}

/// Community name for index `c` ("A", "B", ... then "C26", ...).
pub fn community_name(c: usize) -> String {
    if c < 26 {
        ((b'A' + c as u8) as char).to_string()
    } else {
        format!("C{c}")
    }
}

impl CommunityGraph {
    /// Generate the trace: node arrivals with community labels, then
    /// interleaved edge formation and membership switches.
    pub fn generate(&self) -> Vec<Event> {
        assert!(self.communities >= 2);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::with_capacity(self.nodes * 2 + self.edge_events + self.switches);
        let mut t: Time = 0;

        let mut membership: Vec<usize> = Vec::with_capacity(self.nodes);
        for id in 0..self.nodes as NodeId {
            let c = rng.random_range(0..self.communities);
            membership.push(c);
            events.push(Event::new(t, EventKind::AddNode { id }));
            events.push(Event::new(
                t,
                EventKind::SetNodeAttr {
                    id,
                    key: "community".into(),
                    value: AttrValue::Text(community_name(c)),
                },
            ));
            t += 1;
        }

        // Pre-compute per-community node lists (kept in sync on switch).
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); self.communities];
        for (id, &c) in membership.iter().enumerate() {
            members[c].push(id as NodeId);
        }

        let switch_every = if self.switches == 0 {
            usize::MAX
        } else {
            (self.edge_events / self.switches.max(1)).max(1)
        };

        for step in 0..self.edge_events {
            t += 1;
            let a = rng.random_range(0..self.nodes) as NodeId;
            let ca = membership[a as usize];
            let b = if rng.random::<f64>() < self.intra_prob {
                // Intra-community partner.
                let list = &members[ca];
                list[rng.random_range(0..list.len())]
            } else {
                let mut cb = rng.random_range(0..self.communities);
                if cb == ca {
                    cb = (cb + 1) % self.communities;
                }
                let list = &members[cb];
                list[rng.random_range(0..list.len())]
            };
            if a != b {
                events.push(Event::new(
                    t,
                    EventKind::AddEdge {
                        src: a,
                        dst: b,
                        weight: 1.0,
                        directed: false,
                    },
                ));
            }

            if step % switch_every == switch_every - 1 {
                // A node migrates to a random other community.
                t += 1;
                let id = rng.random_range(0..self.nodes) as NodeId;
                let old = membership[id as usize];
                let mut new = rng.random_range(0..self.communities);
                if new == old {
                    new = (new + 1) % self.communities;
                }
                membership[id as usize] = new;
                members[old].retain(|&x| x != id);
                members[new].push(id);
                events.push(Event::new(
                    t,
                    EventKind::SetNodeAttr {
                        id,
                        key: "community".into(),
                        value: AttrValue::Text(community_name(new)),
                    },
                ));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Delta;

    #[test]
    fn all_nodes_labeled() {
        let ev = CommunityGraph {
            nodes: 200,
            edge_events: 500,
            ..Default::default()
        }
        .generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        assert_eq!(state.cardinality(), 200);
        for n in state.iter() {
            assert!(
                n.attrs.get("community").is_some(),
                "node {} unlabeled",
                n.id
            );
        }
    }

    #[test]
    fn communities_are_assortative() {
        let ev = CommunityGraph {
            nodes: 400,
            communities: 4,
            edge_events: 4_000,
            intra_prob: 0.95,
            switches: 0,
            seed: 3,
        }
        .generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for n in state.iter() {
            let cn = n
                .attrs
                .get("community")
                .and_then(|v| v.as_text())
                .unwrap()
                .to_owned();
            for e in &n.edges {
                let other = state.node(e.nbr).unwrap();
                let co = other
                    .attrs
                    .get("community")
                    .and_then(|v| v.as_text())
                    .unwrap();
                if cn == co {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > 5 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn membership_changes_over_time() {
        let cfg = CommunityGraph {
            nodes: 100,
            edge_events: 2_000,
            switches: 100,
            ..Default::default()
        };
        let ev = cfg.generate();
        let switches = ev
            .iter()
            .skip(2 * cfg.nodes)
            .filter(|e| matches!(e.kind, EventKind::SetNodeAttr { .. }))
            .count();
        assert!(switches >= 50, "got {switches}");
    }

    #[test]
    fn community_names() {
        assert_eq!(community_name(0), "A");
        assert_eq!(community_name(1), "B");
        assert_eq!(community_name(30), "C30");
    }
}

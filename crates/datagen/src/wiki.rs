//! Dataset 1 analog: a growth-only citation-network-like trace.
//!
//! The paper's Dataset 1 is the Wikipedia citation network: 267M edge
//! *addition* events over ~10 years, 21.4M nodes and 122M edges at its
//! peak. What the evaluation depends on is its statistical skeleton:
//!
//! * monotone growth (additions only),
//! * heavy-tailed degree distribution (topological skew),
//! * uneven event density over time (temporal skew),
//! * new nodes arriving throughout the trace.
//!
//! `WikiGrowth` reproduces those with a time-varying preferential
//! attachment process: at every step either a new node arrives and
//! attaches `attach_edges` edges, or an additional edge forms between
//! existing nodes (both endpoints degree-biased). Event timestamps
//! advance with occasional bursts to create temporal skew.

use hgs_delta::{Event, EventKind, NodeId, Time};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the growth generator.
#[derive(Debug, Clone, Copy)]
pub struct WikiGrowth {
    /// Total number of events to generate.
    pub events: usize,
    /// Edges attached by each newly arriving node.
    pub attach_edges: usize,
    /// Probability that a step is a node arrival (vs an extra edge
    /// among existing nodes).
    pub node_arrival_prob: f64,
    /// Citation edges are directed (new -> cited).
    pub directed: bool,
    /// Probability that an endpoint is drawn from the *recent*
    /// activity window instead of the global degree-biased pool.
    /// Real edit traces are bursty: a node's changes cluster in time.
    /// 0.0 disables burstiness.
    pub recency_bias: f64,
    /// Size of the recent-activity window (pool entries).
    pub recency_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WikiGrowth {
    fn default() -> WikiGrowth {
        WikiGrowth {
            events: 100_000,
            attach_edges: 3,
            node_arrival_prob: 0.25,
            directed: false,
            recency_bias: 0.0,
            recency_window: 2_000,
            seed: 0x5EED_0001,
        }
    }
}

impl WikiGrowth {
    /// Convenience constructor for an `events`-sized trace.
    pub fn sized(events: usize) -> WikiGrowth {
        WikiGrowth {
            events,
            ..WikiGrowth::default()
        }
    }

    /// Generate the event trace (chronologically sorted).
    pub fn generate(&self) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events: Vec<Event> = Vec::with_capacity(self.events);
        let mut t: Time = 0;
        let mut next_id: NodeId = 0;
        // Degree-biased sampling pool: every edge endpoint is pushed, so
        // sampling uniformly from the pool is preferential attachment.
        let mut pool: Vec<NodeId> = Vec::with_capacity(self.events * 2);
        // Seed nodes so the first attachments have targets.
        let seed_nodes = self.attach_edges.max(2);
        for _ in 0..seed_nodes {
            let id = next_id;
            next_id += 1;
            events.push(Event::new(t, EventKind::AddNode { id }));
            pool.push(id);
            t += 1;
            if events.len() >= self.events {
                return events;
            }
        }

        // Degree-biased endpoint, optionally drawn from the recent
        // window (temporal burstiness).
        let pick = |pool: &[NodeId], rng: &mut StdRng, bias: f64, window: usize| -> NodeId {
            if bias > 0.0 && pool.len() > window && rng.random::<f64>() < bias {
                pool[pool.len() - window + rng.random_range(0..window)]
            } else {
                pool[rng.random_range(0..pool.len())]
            }
        };

        while events.len() < self.events {
            // Temporal skew: occasional bursts advance time slowly
            // (many events per tick), quiet periods advance it fast.
            t += if rng.random::<f64>() < 0.05 {
                rng.random_range(5..50)
            } else {
                1
            };

            if rng.random::<f64>() < self.node_arrival_prob {
                let id = next_id;
                next_id += 1;
                events.push(Event::new(t, EventKind::AddNode { id }));
                let mut attached = 0usize;
                let mut guard = 0usize;
                while attached < self.attach_edges
                    && events.len() < self.events
                    && guard < self.attach_edges * 8
                {
                    guard += 1;
                    let target = pick(&pool, &mut rng, self.recency_bias, self.recency_window);
                    if target == id {
                        continue;
                    }
                    events.push(Event::new(
                        t,
                        EventKind::AddEdge {
                            src: id,
                            dst: target,
                            weight: 1.0,
                            directed: self.directed,
                        },
                    ));
                    pool.push(id);
                    pool.push(target);
                    attached += 1;
                }
            } else if events.len() < self.events {
                // Extra edge between existing nodes, both ends
                // degree-biased (and possibly recency-biased).
                let a = pick(&pool, &mut rng, self.recency_bias, self.recency_window);
                let b = pick(&pool, &mut rng, self.recency_bias, self.recency_window);
                if a != b {
                    events.push(Event::new(
                        t,
                        EventKind::AddEdge {
                            src: a,
                            dst: b,
                            weight: 1.0,
                            directed: self.directed,
                        },
                    ));
                    pool.push(a);
                    pool.push(b);
                }
            }
        }
        events.truncate(self.events);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgs_delta::Delta;

    #[test]
    fn deterministic_for_seed() {
        let a = WikiGrowth::sized(5_000).generate();
        let b = WikiGrowth::sized(5_000).generate();
        assert_eq!(a, b);
        let c = WikiGrowth {
            seed: 99,
            ..WikiGrowth::sized(5_000)
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn exact_event_count_and_sorted() {
        let ev = WikiGrowth::sized(10_000).generate();
        assert_eq!(ev.len(), 10_000);
        assert!(ev.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn growth_only() {
        let ev = WikiGrowth::sized(5_000).generate();
        assert!(ev.iter().all(|e| matches!(
            e.kind,
            EventKind::AddNode { .. } | EventKind::AddEdge { .. }
        )));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let ev = WikiGrowth::sized(20_000).generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        let mut degs: Vec<usize> = state.iter().map(|n| n.degree()).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = degs[0];
        let median = degs[degs.len() / 2];
        assert!(
            max > 20 * median.max(1),
            "expected hubs: max={max} median={median}"
        );
    }

    #[test]
    fn replay_is_consistent() {
        let ev = WikiGrowth::sized(5_000).generate();
        let state = Delta::snapshot_by_replay(&ev, u64::MAX);
        assert!(state.cardinality() > 100);
        assert!(state.edge_count() > 100);
    }
}

//! Property tests for the simulated store: model-based checking of
//! put/get/scan against a reference map, compression roundtrips on
//! arbitrary inputs, and replication invariants under failures.

use bytes::Bytes;
use hgs_store::{compress, decompress, SimStore, StoreConfig, Table};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let c = compress(&data);
        let d = decompress(&c).unwrap();
        prop_assert_eq!(&d[..], &data[..]);
    }

    #[test]
    fn compression_roundtrips_repetitive_bytes(
        pattern in prop::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..512,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        let c = compress(&data);
        let d = decompress(&c).unwrap();
        prop_assert_eq!(&d[..], &data[..]);
        if data.len() > 256 {
            prop_assert!(c.len() < data.len(), "repetitive data must shrink");
        }
    }

    /// Model-based store check: a SimStore behaves like a map from
    /// (table, key) to the last written value, regardless of placement
    /// tokens and machine count.
    #[test]
    fn store_behaves_like_a_map(
        ops in prop::collection::vec(
            (0u8..2, 0u8..3, prop::collection::vec(any::<u8>(), 1..8), any::<u64>(),
             prop::collection::vec(any::<u8>(), 0..32)),
            1..120
        ),
        machines in 1usize..5,
    ) {
        let store = SimStore::new(StoreConfig::new(machines, 1));
        let mut model: BTreeMap<(u8, Vec<u8>), (u64, Vec<u8>)> = BTreeMap::new();
        let table_of = |i: u8| match i {
            0 => Table::Deltas,
            1 => Table::Versions,
            _ => Table::Graph,
        };
        for (op, ti, key, token, value) in ops {
            let table = table_of(ti);
            match op {
                0 => {
                    store.put(table, &key, token, Bytes::from(value.clone()));
                    model.insert((ti, key), (token, value));
                }
                _ => {
                    let got = match model.get(&(ti, key.clone())) {
                        // Reads must use the same placement token the
                        // write used (as TGI keys always do).
                        Some((tok, _)) => store.get(table, &key, *tok).unwrap(),
                        None => store.get(table, &key, token).unwrap_or(None),
                    };
                    let want = model.get(&(ti, key)).map(|(_, v)| v.clone());
                    prop_assert_eq!(got.map(|b| b.to_vec()), want);
                }
            }
        }
        // Final state: every model entry is readable.
        for ((ti, key), (token, value)) in &model {
            let got = store.get(table_of(*ti), key, *token).unwrap();
            prop_assert_eq!(got.map(|b| b.to_vec()), Some(value.clone()));
        }
    }

    /// With replication r >= 2, any single machine failure leaves every
    /// row readable. Placement tokens are a pure function of the key,
    /// as they are for every real TGI table.
    #[test]
    fn single_failure_is_invisible_with_replication(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 1..8), 1..40),
        failed in 0usize..3,
    ) {
        let store = SimStore::new(StoreConfig::new(3, 2));
        let token = |key: &[u8]| {
            let mut h = 0u64;
            for &b in key {
                h = h.wrapping_mul(31).wrapping_add(b as u64);
            }
            hgs_delta::hash::hash_u64(h)
        };
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(Table::Deltas, key, token(key), Bytes::from(vec![i as u8]));
        }
        store.fail_machine(failed);
        for (i, key) in keys.iter().enumerate() {
            let got = store.get(Table::Deltas, key, token(key)).unwrap();
            prop_assert_eq!(got.map(|b| b.to_vec()), Some(vec![i as u8]));
        }
    }

    /// Scans return exactly the stored keys with the given prefix, in
    /// order, when all rows share a placement token.
    #[test]
    fn scan_matches_model(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..60),
        prefix in prop::collection::vec(any::<u8>(), 0..3),
    ) {
        let store = SimStore::new(StoreConfig::new(2, 1));
        let token = 7u64;
        let mut model: BTreeMap<Vec<u8>, ()> = BTreeMap::new();
        for k in &keys {
            store.put(Table::Deltas, k, token, Bytes::from_static(b"v"));
            model.insert(k.clone(), ());
        }
        let got: Vec<Vec<u8>> = store
            .scan_prefix(Table::Deltas, &prefix, token)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let want: Vec<Vec<u8>> =
            model.keys().filter(|k| k.starts_with(&prefix)).cloned().collect();
        prop_assert_eq!(got, want);
    }
}

//! Composite keys and table namespaces.
//!
//! Mirrors the paper's Cassandra schema (§4.4 *Implementation*): five
//! tables, with the `Deltas` table keyed by the composite
//! `{tsid, sid, did, pid}` and placed by `{tsid, sid}`.

use std::fmt;

/// The five TGI tables of the paper's implementation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Table {
    /// `Deltas(tsid, sid, did, pid, dval)` — serialized micro-deltas.
    Deltas,
    /// `Versions(nid, vchain)` — per-node version chains.
    Versions,
    /// `Timespans(tsid, ...)` — timespan metadata.
    Timespans,
    /// `Graph(...)` — global graph/index metadata.
    Graph,
    /// `Micropartitions(nid, tsid, pid)` — node -> micro-partition map
    /// (only populated for locality partitioning).
    Micropartitions,
    /// `AttrIndex(kind, term, tsid)` — secondary temporal index rows:
    /// per-term change-point lists (only populated when
    /// `TgiConfig::secondary_indexes` is on).
    AttrIndex,
}

impl Table {
    /// Namespace prefix byte for the machine-local ordered key space.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            Table::Deltas => 0,
            Table::Versions => 1,
            Table::Timespans => 2,
            Table::Graph => 3,
            Table::Micropartitions => 4,
            Table::AttrIndex => 5,
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Table::Deltas => "Deltas",
            Table::Versions => "Versions",
            Table::Timespans => "Timespans",
            Table::Graph => "Graph",
            Table::Micropartitions => "Micropartitions",
            Table::AttrIndex => "AttrIndex",
        };
        f.write_str(s)
    }
}

/// The placement key `{tsid, sid}`: the unit of chunk placement across
/// machines (§4.4 point 4). Combining the timespan id and the
/// horizontal-partition id ensures both snapshot fetches (all `sid`s of
/// one `tsid`) and version fetches (one `sid` across many `tsid`s) are
/// spread over the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacementKey {
    pub tsid: u32,
    pub sid: u32,
}

impl PlacementKey {
    pub fn new(tsid: u32, sid: u32) -> PlacementKey {
        PlacementKey { tsid, sid }
    }

    /// Stable 64-bit token for ring placement.
    #[inline]
    pub fn token(&self) -> u64 {
        hgs_delta::hash::hash_u64(((self.tsid as u64) << 32) | self.sid as u64)
    }
}

/// The composite delta key `{tsid, sid, did, pid}` (§4.4 point 3).
///
/// The big-endian byte encoding preserves tuple ordering, so within a
/// machine all micro-partitions (`pid`) of one delta (`did`) are
/// contiguous — the clustering property the paper uses to make
/// snapshot scans cheap (§4.4 point 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeltaKey {
    /// Timespan id.
    pub tsid: u32,
    /// Horizontal partition id.
    pub sid: u32,
    /// Delta id within the (timespan, horizontal partition) tree.
    pub did: u64,
    /// Micro-partition id within the delta.
    pub pid: u32,
}

impl DeltaKey {
    pub fn new(tsid: u32, sid: u32, did: u64, pid: u32) -> DeltaKey {
        DeltaKey {
            tsid,
            sid,
            did,
            pid,
        }
    }

    /// Placement key of this delta key.
    #[inline]
    pub fn placement(&self) -> PlacementKey {
        PlacementKey {
            tsid: self.tsid,
            sid: self.sid,
        }
    }

    /// Order-preserving byte encoding.
    pub fn encode(&self) -> [u8; 20] {
        let mut out = [0u8; 20];
        out[0..4].copy_from_slice(&self.tsid.to_be_bytes());
        out[4..8].copy_from_slice(&self.sid.to_be_bytes());
        out[8..16].copy_from_slice(&self.did.to_be_bytes());
        out[16..20].copy_from_slice(&self.pid.to_be_bytes());
        out
    }

    /// Decode from [`DeltaKey::encode`] bytes.
    pub fn decode(bytes: &[u8]) -> Option<DeltaKey> {
        if bytes.len() != 20 {
            return None;
        }
        Some(DeltaKey {
            tsid: u32::from_be_bytes(bytes[0..4].try_into().ok()?),
            sid: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
            did: u64::from_be_bytes(bytes[8..16].try_into().ok()?),
            pid: u32::from_be_bytes(bytes[16..20].try_into().ok()?),
        })
    }

    /// Prefix matching every micro-partition of delta `did` — the scan
    /// unit for snapshot queries.
    pub fn delta_prefix(tsid: u32, sid: u32, did: u64) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&tsid.to_be_bytes());
        out[4..8].copy_from_slice(&sid.to_be_bytes());
        out[8..16].copy_from_slice(&did.to_be_bytes());
        out
    }
}

/// Encode a node-id key for the `Versions` / `Micropartitions` tables.
pub fn node_key(nid: u64) -> [u8; 8] {
    nid.to_be_bytes()
}

/// Key of one append-only chain-delta row in the `Versions` table:
/// `nid ++ tsid`, both big-endian, so a prefix scan by `nid` yields
/// the per-timespan chain segments in tsid (i.e. chronological) order.
/// The build path writes one such row per `(node, timespan)` instead
/// of read-modify-writing a whole-chain row.
pub fn chain_key(nid: u64, tsid: u32) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[0..8].copy_from_slice(&nid.to_be_bytes());
    out[8..12].copy_from_slice(&tsid.to_be_bytes());
    out
}

/// Prefix matching every chain-delta row of one node (also matches a
/// legacy whole-chain row keyed by the bare 8-byte node key).
pub fn chain_prefix(nid: u64) -> [u8; 8] {
    node_key(nid)
}

/// Placement token for node-keyed tables (hash-spread over machines).
pub fn node_placement_token(nid: u64) -> u64 {
    hgs_delta::hash::hash_u64(nid ^ 0xABCD_EF01_2345_6789)
}

/// Key of one secondary-index row in the `AttrIndex` table:
/// `kind ++ len(term) ++ term ++ tsid`, with the term length and tsid
/// big-endian. Leading with the kind and the length-prefixed term makes
/// a per-term prefix scan yield that term's rows for every timespan in
/// tsid (i.e. chronological) order, while distinct terms never shadow
/// each other byte-wise.
pub fn term_key(kind: u8, term: &[u8], tsid: u32) -> Vec<u8> {
    let mut out = term_prefix(kind, term);
    out.extend_from_slice(&tsid.to_be_bytes());
    out
}

/// Prefix matching every timespan's row of one `(kind, term)`.
pub fn term_prefix(kind: u8, term: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + term.len() + 4);
    out.push(kind);
    out.extend_from_slice(&(term.len() as u32).to_be_bytes());
    out.extend_from_slice(term);
    out
}

/// Timespan id of a [`term_key`], recovered from its trailing bytes.
pub fn term_key_tsid(key: &[u8]) -> Option<u32> {
    let tail = key.len().checked_sub(4)?;
    Some(u32::from_be_bytes(key[tail..].try_into().ok()?))
}

/// Placement token for secondary-index rows. All timespans of one term
/// share a token so a per-term prefix scan stays a single-placement
/// read, mirroring how a node's chain rows share
/// [`node_placement_token`].
pub fn term_token(kind: u8, term: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = hgs_delta::FxHasher::default();
    h.write_u8(kind);
    h.write(term);
    // Post-mix: ring placement buckets by low bits, which FxHash
    // leaves poorly mixed for short similar terms.
    hgs_delta::hash::hash_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_preserves_order() {
        let keys = [
            DeltaKey::new(0, 0, 0, 0),
            DeltaKey::new(0, 0, 0, 1),
            DeltaKey::new(0, 0, 1, 0),
            DeltaKey::new(0, 1, 0, 0),
            DeltaKey::new(1, 0, 0, 0),
            DeltaKey::new(1, 2, 3, 4),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
            assert!(
                w[0].encode() < w[1].encode(),
                "byte order must match tuple order"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let k = DeltaKey::new(7, 3, u64::MAX - 5, 42);
        assert_eq!(DeltaKey::decode(&k.encode()), Some(k));
        assert_eq!(DeltaKey::decode(&[0u8; 3]), None);
    }

    #[test]
    fn delta_prefix_matches_all_pids() {
        let prefix = DeltaKey::delta_prefix(1, 2, 3);
        for pid in [0u32, 1, 500] {
            let enc = DeltaKey::new(1, 2, 3, pid).encode();
            assert!(enc.starts_with(&prefix));
        }
        let other = DeltaKey::new(1, 2, 4, 0).encode();
        assert!(!other.starts_with(&prefix));
    }

    #[test]
    fn placement_tokens_spread() {
        use std::collections::HashSet;
        let tokens: HashSet<u64> = (0..32u32)
            .map(|sid| PlacementKey::new(0, sid).token() % 4)
            .collect();
        assert!(tokens.len() >= 3, "placement should use most machines");
    }

    #[test]
    fn chain_keys_scan_in_tsid_order_under_node_prefix() {
        let keys: Vec<[u8; 12]> = [0u32, 1, 7, 300]
            .iter()
            .map(|&t| chain_key(42, t))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "tsid order must match byte order");
        }
        for k in &keys {
            assert!(k.starts_with(&chain_prefix(42)));
        }
        assert!(!chain_key(43, 0).starts_with(&chain_prefix(42)));
        // A legacy whole-chain row (bare node key) matches the prefix.
        assert!(node_key(42).starts_with(&chain_prefix(42)));
    }

    #[test]
    fn table_tags_unique() {
        use std::collections::HashSet;
        let tags: HashSet<u8> = [
            Table::Deltas,
            Table::Versions,
            Table::Timespans,
            Table::Graph,
            Table::Micropartitions,
            Table::AttrIndex,
        ]
        .iter()
        .map(|t| t.tag())
        .collect();
        assert_eq!(tags.len(), 6);
    }

    #[test]
    fn term_keys_scan_in_tsid_order_under_term_prefix() {
        let term = b"EntityType\x02Author";
        let keys: Vec<Vec<u8>> = [0u32, 1, 7, 300]
            .iter()
            .map(|&t| term_key(0, term, t))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "tsid order must match byte order");
        }
        let prefix = term_prefix(0, term);
        for (k, tsid) in keys.iter().zip([0u32, 1, 7, 300]) {
            assert!(k.starts_with(&prefix));
            assert_eq!(term_key_tsid(k), Some(tsid));
        }
        // A term that extends another term's bytes must not match its
        // prefix (the length prefix disambiguates).
        assert!(!term_key(0, b"EntityType\x02AuthorX", 0).starts_with(&prefix));
        // Different kinds never share a prefix.
        assert!(!term_key(1, term, 0).starts_with(&prefix));
    }

    #[test]
    fn term_tokens_spread_terms_but_pin_timespans() {
        use std::collections::HashSet;
        let tokens: HashSet<u64> = (0..32u32)
            .map(|i| term_token(0, format!("label{i}").as_bytes()) % 4)
            .collect();
        assert!(tokens.len() >= 3, "terms should spread over machines");
    }
}

//! Buffered, batched writes.
//!
//! The Index Manager's construction path (paper §4.4) emits thousands
//! of encoded rows per timespan; issuing them as individual
//! [`SimStore::put`]s pays one round trip per row. [`WriteBuffer`]
//! accumulates rows and flushes them through
//! [`SimStore::try_put_batch`], which groups the flush into **one
//! round trip per machine** — the write-side mirror of the read
//! planner's `multi_get`/`scan_prefix_batch` batching.
//!
//! A `max_rows` of `0` disables buffering entirely and degrades to the
//! seed's row-at-a-time `put` path; the build equivalence tests and
//! the `build_ingest` bench use that mode as the sequential reference.

use bytes::Bytes;

use crate::key::Table;
use crate::store::{PutRow, SimStore, StoreError};

/// A write buffer over a [`SimStore`]: rows pushed into it are
/// batched until `max_rows` accumulate (or [`WriteBuffer::flush`] is
/// called), then shipped per machine in single round trips.
///
/// Failure semantics: inside [`SimStore::try_put_batch`] each
/// machine's share of the flush is retried through the store's
/// [`RetryPolicy`](crate::RetryPolicy) — capped backoff in simulated
/// time — before any row is declared failed, so a transient fault
/// window usually costs latency, not data. A row that still reaches
/// zero replicas surfaces from the flush (or the push that triggered
/// it) as [`StoreError::Transient`] when the retry budget was
/// exhausted or [`StoreError::Unavailable`] when its replica set is
/// permanently dead — only after the *whole* flushed batch has been
/// processed: rows placed on healthy machines land, partially
/// replicated rows are recorded for
/// [`SimStore::try_repair`](crate::SimStore::try_repair), and the
/// store's partial/failed put counters account for every row. Callers
/// must `flush()` before dropping the buffer; a dropped buffer with
/// pending rows debug-panics rather than silently losing writes.
pub struct WriteBuffer<'a> {
    store: &'a SimStore,
    rows: Vec<PutRow>,
    max_rows: usize,
    pushed: u64,
    flushes: u64,
}

impl<'a> WriteBuffer<'a> {
    /// A buffer flushing every `max_rows` rows; `0` means unbuffered
    /// (every push is an immediate single-row [`SimStore::put`] — the
    /// seed reference write path).
    pub fn new(store: &'a SimStore, max_rows: usize) -> WriteBuffer<'a> {
        WriteBuffer {
            store,
            rows: Vec::with_capacity(max_rows.min(1 << 14)),
            max_rows,
            pushed: 0,
            flushes: 0,
        }
    }

    /// Queue one row, flushing if the buffer is full. In unbuffered
    /// mode (`max_rows == 0`) the row is written immediately and a
    /// zero-replica write errors right here.
    pub fn push(
        &mut self,
        table: Table,
        key: Vec<u8>,
        token: u64,
        value: Bytes,
    ) -> Result<(), StoreError> {
        self.pushed += 1;
        if self.max_rows == 0 {
            if self.store.put(table, &key, token, value) == 0 {
                return Err(StoreError::Unavailable { table });
            }
            return Ok(());
        }
        self.rows.push(PutRow::new(table, key, token, value));
        if self.rows.len() >= self.max_rows {
            self.flush()?;
        }
        Ok(())
    }

    /// Queue a pre-built row (same semantics as [`WriteBuffer::push`]).
    pub fn push_row(&mut self, row: PutRow) -> Result<(), StoreError> {
        self.push(row.table, row.key, row.token, row.value)
    }

    /// Ship every pending row via [`SimStore::try_put_batch`]. A no-op
    /// on an empty buffer.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.rows.is_empty() {
            return Ok(());
        }
        self.flushes += 1;
        let rows = std::mem::take(&mut self.rows);
        self.store.try_put_batch(rows).map(drop)
    }

    /// Rows currently buffered (not yet flushed).
    pub fn pending(&self) -> usize {
        self.rows.len()
    }

    /// Total rows pushed through this buffer so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Batched flushes issued so far (unbuffered pushes not included).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Drop any pending rows without writing them (error-path cleanup
    /// so the drop guard stays quiet once the build has already
    /// failed).
    pub fn abandon(&mut self) {
        self.rows.clear();
    }
}

impl Drop for WriteBuffer<'_> {
    fn drop(&mut self) {
        // Skipped during unwind: a double panic would abort the
        // process and mask the original failure.
        debug_assert!(
            std::thread::panicking() || self.rows.is_empty(),
            "WriteBuffer dropped with {} unflushed rows — call flush() (or abandon() on an \
             error path)",
            self.rows.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn buffered_pushes_flush_at_capacity_and_on_demand() {
        let s = SimStore::new(StoreConfig::new(2, 1));
        let mut buf = WriteBuffer::new(&s, 3);
        for i in 0..7u64 {
            buf.push(
                Table::Deltas,
                i.to_be_bytes().to_vec(),
                i,
                Bytes::from_static(b"v"),
            )
            .unwrap();
        }
        assert_eq!(buf.flushes(), 2, "two full batches of 3 auto-flushed");
        assert_eq!(buf.pending(), 1);
        buf.flush().unwrap();
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.pushed(), 7);
        assert_eq!(s.row_count(), 7);
        let batches: u64 = s.stats_snapshot().iter().map(|m| m.put_batches).sum();
        let puts: u64 = s.stats_snapshot().iter().map(|m| m.puts).sum();
        assert_eq!(puts, 7);
        assert!(batches < puts, "batched round trips stay under row count");
    }

    #[test]
    fn unbuffered_mode_matches_seed_put_semantics() {
        let s = SimStore::new(StoreConfig::new(2, 1));
        let mut buf = WriteBuffer::new(&s, 0);
        buf.push(Table::Deltas, b"k".to_vec(), 0, Bytes::from_static(b"v"))
            .unwrap();
        assert_eq!(buf.pending(), 0);
        assert_eq!(
            s.stats_snapshot()
                .iter()
                .map(|m| m.put_batches)
                .sum::<u64>(),
            0,
            "row-at-a-time mode issues no batches"
        );
        s.fail_machine(s.machine_for(1, 0));
        assert!(matches!(
            buf.push(Table::Deltas, b"x".to_vec(), 1, Bytes::from_static(b"v")),
            Err(StoreError::Unavailable { .. })
        ));
    }

    #[test]
    fn flush_against_dead_machine_surfaces_unavailable_but_accounts_rows() {
        let s = SimStore::new(StoreConfig::new(2, 1));
        let dead_token = 0u64;
        let live_token = 1u64;
        s.fail_machine(s.machine_for(dead_token, 0));
        let mut buf = WriteBuffer::new(&s, 16);
        buf.push(
            Table::Deltas,
            b"dead".to_vec(),
            dead_token,
            Bytes::from_static(b"v"),
        )
        .unwrap();
        buf.push(
            Table::Versions,
            b"live".to_vec(),
            live_token,
            Bytes::from_static(b"v"),
        )
        .unwrap();
        assert!(matches!(
            buf.flush(),
            Err(StoreError::Unavailable {
                table: Table::Deltas
            })
        ));
        assert_eq!(s.failed_put_count(), 1, "the dead row is accounted");
        assert_eq!(s.row_count(), 1, "the healthy row still landed");
    }
}

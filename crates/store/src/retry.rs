//! Bounded retry with backoff and per-machine circuit breaking.
//!
//! Transient faults (see [`crate::faults`]) are survivable exactly
//! because the store *re-issues* failed requests — but unbounded
//! hand-rolled retry loops hide outages and melt flaky clusters. This
//! module centralizes the discipline:
//!
//! * a [`RetryPolicy`]: a per-operation attempt budget with capped
//!   exponential backoff measured in *simulated ticks* (the store's
//!   logical clock — no wall-clock sleeping anywhere);
//! * a per-machine circuit `Breaker`: after `breaker_threshold`
//!   consecutive transient failures the machine is skipped outright
//!   for `breaker_cooldown_ticks`, then *half-open* probes let real
//!   traffic test it again — one success closes the breaker, another
//!   failure re-opens it.
//!
//! Every `SimStore` read/write routes through this policy (the
//! `bounded-retry` lint rule keeps hand-rolled loops out of the rest
//! of the workspace). The breaker reacts only to *transient* faults:
//! permanent machine death
//! ([`SimStore::fail_machine`](crate::SimStore::fail_machine)) is
//! detected per request and surfaces
//! [`StoreError::Unavailable`](crate::StoreError::Unavailable) without
//! burning the retry budget.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Retry/backoff/breaker knobs, in simulated ticks. Runtime-tunable
/// via [`SimStore::set_retry_policy`](crate::SimStore::set_retry_policy)
/// (and `TgiConfig::retry` one layer up); not persisted with any
/// index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical operation, including the first
    /// (`>= 1`; `1` disables retry entirely).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, doubling per further
    /// attempt (capped by `max_backoff_ticks`).
    pub base_backoff_ticks: u64,
    /// Upper bound on a single backoff.
    pub max_backoff_ticks: u64,
    /// Consecutive transient failures that open a machine's circuit
    /// breaker (`0` disables the breaker).
    pub breaker_threshold: u32,
    /// Ticks an open breaker blocks a machine before half-open
    /// probing resumes.
    pub breaker_cooldown_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 4,
            max_backoff_ticks: 64,
            breaker_threshold: 8,
            breaker_cooldown_ticks: 96,
        }
    }
}

impl RetryPolicy {
    /// Panic on nonsensical knobs (called when the policy is
    /// installed, so a bad config fails loudly at setup).
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        assert!(
            self.max_backoff_ticks >= self.base_backoff_ticks,
            "max backoff must not undercut the base backoff"
        );
    }

    /// The backoff to wait after `failed_attempts` attempts have
    /// failed: `base · 2^(failed_attempts-1)`, capped.
    pub fn backoff_ticks(&self, failed_attempts: u32) -> u64 {
        if failed_attempts == 0 || self.base_backoff_ticks == 0 {
            return 0;
        }
        let shift = (failed_attempts - 1).min(32);
        self.base_backoff_ticks
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ticks)
    }
}

/// Sentinel for a closed breaker in [`Breaker::opened_at`].
const CLOSED: u64 = u64::MAX;

/// Per-machine circuit-breaker state plus retry accounting. Lives in
/// the [`SimStore`](crate::SimStore), one per machine.
#[derive(Debug)]
pub(crate) struct Breaker {
    /// Consecutive transient failures since the last success.
    consecutive: AtomicU32,
    /// Tick the breaker last opened at; [`CLOSED`] when closed.
    opened_at: AtomicU64,
    /// Lifetime count of open transitions (stats).
    opens: AtomicU64,
    /// Lifetime count of re-issued requests to this machine (stats).
    retries: AtomicU64,
}

impl Breaker {
    pub(crate) fn new() -> Breaker {
        Breaker {
            consecutive: AtomicU32::new(0),
            opened_at: AtomicU64::new(CLOSED),
            opens: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Whether a request may be issued at `now`: always when closed,
    /// and as a half-open probe once the cooldown has elapsed.
    pub(crate) fn allows(&self, now: u64, policy: &RetryPolicy) -> bool {
        let at = self.opened_at.load(Ordering::Relaxed);
        at == CLOSED || now >= at.saturating_add(policy.breaker_cooldown_ticks)
    }

    /// Record a transient failure at `now`; opens (or re-opens after a
    /// failed half-open probe) once the threshold is crossed.
    pub(crate) fn record_failure(&self, now: u64, policy: &RetryPolicy) {
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if policy.breaker_threshold > 0 && streak >= policy.breaker_threshold {
            let was = self.opened_at.swap(now, Ordering::Relaxed);
            if was == CLOSED {
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a served request: resets the failure streak and closes
    /// the breaker (a successful half-open probe ends the cooldown).
    pub(crate) fn record_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        self.opened_at.store(CLOSED, Ordering::Relaxed);
    }

    /// Count one re-issued request (an attempt beyond the first).
    pub(crate) fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset all breaker state (used when a machine heals or a new
    /// fault plan is installed — a new experiment starts clean).
    pub(crate) fn reset(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        self.opened_at.store(CLOSED, Ordering::Relaxed);
    }

    pub(crate) fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    pub(crate) fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_ticks: 4,
            max_backoff_ticks: 20,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks(0), 0);
        assert_eq!(p.backoff_ticks(1), 4);
        assert_eq!(p.backoff_ticks(2), 8);
        assert_eq!(p.backoff_ticks(3), 16);
        assert_eq!(p.backoff_ticks(4), 20, "capped");
        assert_eq!(p.backoff_ticks(60), 20, "shift is clamped, no overflow");
    }

    #[test]
    fn zero_base_means_no_backoff() {
        let p = RetryPolicy {
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks(3), 0);
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate();
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_open_probes() {
        let p = RetryPolicy {
            breaker_threshold: 3,
            breaker_cooldown_ticks: 10,
            ..RetryPolicy::default()
        };
        let b = Breaker::new();
        assert!(b.allows(0, &p));
        b.record_failure(0, &p);
        b.record_failure(1, &p);
        assert!(b.allows(2, &p), "under threshold stays closed");
        b.record_failure(2, &p);
        assert_eq!(b.opens(), 1);
        assert!(!b.allows(5, &p), "open during cooldown");
        assert!(b.allows(12, &p), "half-open probe after cooldown");
        // A failed probe re-opens without counting a second open.
        b.record_failure(12, &p);
        assert_eq!(b.opens(), 1);
        assert!(!b.allows(13, &p));
        // A successful probe closes it for good.
        b.record_success();
        assert!(b.allows(14, &p));
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let p = RetryPolicy {
            breaker_threshold: 2,
            ..RetryPolicy::default()
        };
        let b = Breaker::new();
        b.record_failure(0, &p);
        b.record_success();
        b.record_failure(1, &p);
        assert!(b.allows(2, &p), "streak broken by the success");
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let p = RetryPolicy {
            breaker_threshold: 0,
            ..RetryPolicy::default()
        };
        let b = Breaker::new();
        for t in 0..100 {
            b.record_failure(t, &p);
        }
        assert!(b.allows(100, &p));
        assert_eq!(b.opens(), 0);
    }
}

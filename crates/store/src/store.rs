//! The simulated distributed store: placement, replication,
//! compression and accounting over a set of [`Machine`]s.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use hgs_delta::CodecError;

use crate::compress::{compress, decompress};
use crate::key::Table;
use crate::machine::{Machine, MachineStatsSnapshot};

/// Cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of storage machines (`m` in the paper).
    pub machines: usize,
    /// Replication factor (`r`): each chunk is written to `r`
    /// consecutive machines of the ring.
    pub replication: usize,
    /// Compress values with LZSS before storing (Fig. 13a).
    pub compress: bool,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            machines: 4,
            replication: 1,
            compress: false,
        }
    }
}

impl StoreConfig {
    pub fn new(machines: usize, replication: usize) -> StoreConfig {
        StoreConfig {
            machines,
            replication,
            compress: false,
        }
    }

    pub fn with_compression(mut self, on: bool) -> StoreConfig {
        self.compress = on;
        self
    }
}

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Every replica holding the requested chunk is down.
    Unavailable { table: Table },
    /// Stored bytes failed to decompress.
    Corrupt(CodecError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Unavailable { table } => {
                write!(f, "all replicas down for a chunk of table {table}")
            }
            StoreError::Corrupt(e) => write!(f, "corrupt stored value: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Cluster-wide stats snapshot: one entry per machine.
pub type StoreStatsSnapshot = Vec<MachineStatsSnapshot>;

/// The simulated cluster. Cheap to share behind an `Arc`; all methods
/// take `&self`.
pub struct SimStore {
    cfg: StoreConfig,
    machines: Vec<Machine>,
    /// Writes that reached some but not all replicas (degraded
    /// durability — the data survives only while the accepting
    /// replicas stay up).
    partial_puts: AtomicU64,
    /// Writes that reached no replica at all (data loss if the caller
    /// ignores the zero return).
    failed_puts: AtomicU64,
}

impl SimStore {
    /// Build a cluster of `cfg.machines` empty machines.
    pub fn new(cfg: StoreConfig) -> SimStore {
        assert!(cfg.machines >= 1, "need at least one machine");
        assert!(
            (1..=cfg.machines).contains(&cfg.replication),
            "replication must be in 1..=machines"
        );
        SimStore {
            cfg,
            machines: (0..cfg.machines).map(|_| Machine::new()).collect(),
            partial_puts: AtomicU64::new(0),
            failed_puts: AtomicU64::new(0),
        }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The machine index holding replica `replica` of a chunk with the
    /// given placement token.
    #[inline]
    pub fn machine_for(&self, token: u64, replica: usize) -> usize {
        ((token as usize) + replica) % self.machines.len()
    }

    fn namespaced(table: Table, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(key.len() + 1);
        k.push(table.tag());
        k.extend_from_slice(key);
        k
    }

    /// Write a row to all replicas of its chunk. Returns the number of
    /// replicas that accepted the write (0 means fully unavailable).
    pub fn put(&self, table: Table, key: &[u8], token: u64, value: Bytes) -> usize {
        let stored = if self.cfg.compress {
            compress(&value)
        } else {
            value
        };
        let nk = Self::namespaced(table, key);
        let mut ok = 0;
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            if self.machines[m].put(nk.clone(), stored.clone()) {
                ok += 1;
            }
        }
        if ok == 0 {
            self.failed_puts.fetch_add(1, Ordering::Relaxed);
        } else if ok < self.cfg.replication {
            self.partial_puts.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Writes that reached only a strict subset of their replicas so
    /// far (degraded-durability writes).
    pub fn partial_put_count(&self) -> u64 {
        self.partial_puts.load(Ordering::Relaxed)
    }

    /// Writes that reached no replica so far (lost unless retried).
    pub fn failed_put_count(&self) -> u64 {
        self.failed_puts.load(Ordering::Relaxed)
    }

    /// Point lookup with replica failover.
    pub fn get(&self, table: Table, key: &[u8], token: u64) -> Result<Option<Bytes>, StoreError> {
        let nk = Self::namespaced(table, key);
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].get(&nk) {
                Ok(Some(bytes)) => return Ok(Some(self.maybe_decompress(bytes)?)),
                Ok(None) => return Ok(None),
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Ordered prefix scan with replica failover. Keys are returned
    /// without the table namespace byte.
    pub fn scan_prefix(
        &self,
        table: Table,
        prefix: &[u8],
        token: u64,
    ) -> Result<Vec<(Vec<u8>, Bytes)>, StoreError> {
        let np = Self::namespaced(table, prefix);
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].scan_prefix(&np) {
                Ok(rows) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (k, v) in rows {
                        out.push((k[1..].to_vec(), self.maybe_decompress(v)?));
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Batched point lookups with replica failover: all keys share one
    /// placement token (one chunk), so a single machine answers the
    /// whole batch in one round-trip.
    pub fn multi_get(
        &self,
        table: Table,
        keys: &[&[u8]],
        token: u64,
    ) -> Result<Vec<Option<Bytes>>, StoreError> {
        let nks: Vec<Vec<u8>> = keys.iter().map(|k| Self::namespaced(table, k)).collect();
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].multi_get(&nks) {
                Ok(values) => {
                    let mut out = Vec::with_capacity(values.len());
                    for v in values {
                        out.push(match v {
                            Some(bytes) => Some(self.maybe_decompress(bytes)?),
                            None => None,
                        });
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Grouped prefix scan with replica failover: one result group per
    /// prefix, in input order, served by a single machine round-trip
    /// (all prefixes share one placement token). Keys are returned
    /// without the table namespace byte. This is the fetch unit of the
    /// multipoint snapshot planner: the union of a query batch's
    /// tree-path deltas for one `(tsid, sid)` chunk travels as one
    /// request.
    pub fn scan_prefix_batch(
        &self,
        table: Table,
        prefixes: &[&[u8]],
        token: u64,
    ) -> Result<Vec<crate::machine::ScanRows>, StoreError> {
        let nps: Vec<Vec<u8>> = prefixes
            .iter()
            .map(|p| Self::namespaced(table, p))
            .collect();
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].scan_prefixes(&nps) {
                Ok(groups) => {
                    let mut out = Vec::with_capacity(groups.len());
                    for rows in groups {
                        let mut group = Vec::with_capacity(rows.len());
                        for (k, v) in rows {
                            group.push((k[1..].to_vec(), self.maybe_decompress(v)?));
                        }
                        out.push(group);
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    fn maybe_decompress(&self, bytes: Bytes) -> Result<Bytes, StoreError> {
        if self.cfg.compress {
            decompress(&bytes).map_err(StoreError::Corrupt)
        } else {
            Ok(bytes)
        }
    }

    /// Mark a machine failed (failure injection for tests).
    pub fn fail_machine(&self, idx: usize) {
        self.machines[idx].set_down(true);
    }

    /// Bring a failed machine back (its data is intact).
    pub fn heal_machine(&self, idx: usize) {
        self.machines[idx].set_down(false);
    }

    /// Per-machine access-counter snapshot.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        self.machines.iter().map(|m| m.stats().snapshot()).collect()
    }

    /// Difference of two snapshots (per machine).
    pub fn stats_since(now: &StoreStatsSnapshot, then: &StoreStatsSnapshot) -> StoreStatsSnapshot {
        now.iter()
            .zip(then.iter())
            .map(|(a, b)| a.since(b))
            .collect()
    }

    /// Total stored bytes across machines — the index *size* measure of
    /// Table 1 (counts each replica once; divide by `r` for logical
    /// size).
    pub fn stored_bytes(&self) -> usize {
        self.machines.iter().map(|m| m.stored_bytes()).sum()
    }

    /// Total row count across machines (replicas included).
    pub fn row_count(&self) -> usize {
        self.machines.iter().map(|m| m.row_count()).sum()
    }

    /// Per-machine row counts; used to check placement balance.
    pub fn rows_per_machine(&self) -> Vec<usize> {
        self.machines.iter().map(|m| m.row_count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DeltaKey, PlacementKey};

    fn store(m: usize, r: usize) -> SimStore {
        SimStore::new(StoreConfig::new(m, r))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(3, 1);
        let k = DeltaKey::new(0, 1, 2, 3);
        s.put(
            Table::Deltas,
            &k.encode(),
            k.placement().token(),
            Bytes::from_static(b"v"),
        );
        let got = s
            .get(Table::Deltas, &k.encode(), k.placement().token())
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn tables_are_isolated() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"a"));
        s.put(Table::Versions, b"k", 0, Bytes::from_static(b"b"));
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            s.get(Table::Versions, b"k", 0).unwrap().as_deref(),
            Some(&b"b"[..])
        );
    }

    #[test]
    fn scan_returns_clustered_rows_in_order() {
        let s = store(2, 1);
        let pk = PlacementKey::new(5, 0);
        for pid in [3u32, 1, 2, 0] {
            let k = DeltaKey::new(5, 0, 9, pid);
            s.put(
                Table::Deltas,
                &k.encode(),
                pk.token(),
                Bytes::from(vec![pid as u8]),
            );
        }
        // A row of another delta on the same placement must not appear.
        let other = DeltaKey::new(5, 0, 10, 0);
        s.put(
            Table::Deltas,
            &other.encode(),
            pk.token(),
            Bytes::from_static(b"x"),
        );
        let rows = s
            .scan_prefix(Table::Deltas, &DeltaKey::delta_prefix(5, 0, 9), pk.token())
            .unwrap();
        assert_eq!(rows.len(), 4);
        let pids: Vec<u32> = rows
            .iter()
            .map(|(k, _)| DeltaKey::decode(k).unwrap().pid)
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn replication_survives_failure() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        let primary = s.machine_for(token, 0);
        s.fail_machine(primary);
        assert_eq!(
            s.get(Table::Deltas, b"k", token).unwrap().as_deref(),
            Some(&b"v"[..])
        );
        // Failing the replica too makes the chunk unavailable.
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.get(Table::Deltas, b"k", token),
            Err(StoreError::Unavailable { .. })
        ));
        s.heal_machine(primary);
        assert!(s.get(Table::Deltas, b"k", token).is_ok());
    }

    #[test]
    fn no_replication_no_failover() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.fail_machine(s.machine_for(0, 0));
        assert!(s.get(Table::Deltas, b"k", 0).is_err());
    }

    #[test]
    fn compression_is_transparent() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabcabcabcabcabcabcabc".repeat(100));
        s.put(Table::Deltas, b"k", 0, value.clone());
        assert!(
            s.stored_bytes() < value.len(),
            "stored form should be smaller"
        );
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn replicas_double_stored_bytes() {
        let s1 = store(4, 1);
        let s2 = store(4, 2);
        for s in [&s1, &s2] {
            for i in 0..32u64 {
                s.put(
                    Table::Deltas,
                    &i.to_be_bytes(),
                    i * 7919,
                    Bytes::from(vec![0u8; 100]),
                );
            }
        }
        assert_eq!(s2.stored_bytes(), 2 * s1.stored_bytes());
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let s = store(4, 1);
        for i in 0..4000u64 {
            let pk = PlacementKey::new((i / 64) as u32, (i % 64) as u32);
            s.put(
                Table::Deltas,
                &i.to_be_bytes(),
                pk.token(),
                Bytes::from_static(b"v"),
            );
        }
        let rows = s.rows_per_machine();
        let min = *rows.iter().min().unwrap();
        let max = *rows.iter().max().unwrap();
        assert!(max < 2 * min, "placement imbalance: {rows:?}");
    }

    #[test]
    fn stats_bracketing() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"hello"));
        let t0 = s.stats_snapshot();
        s.get(Table::Deltas, b"k", 0).unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &t0);
        let total_gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(total_gets, 1);
    }

    #[test]
    #[should_panic]
    fn invalid_replication_rejected() {
        let _ = SimStore::new(StoreConfig::new(2, 3));
    }

    #[test]
    fn scan_prefix_batch_matches_individual_scans() {
        let s = store(3, 1);
        let pk = PlacementKey::new(2, 1);
        for did in 0..4u64 {
            for pid in 0..3u32 {
                let k = DeltaKey::new(2, 1, did, pid);
                s.put(
                    Table::Deltas,
                    &k.encode(),
                    pk.token(),
                    Bytes::from(vec![did as u8, pid as u8]),
                );
            }
        }
        let prefixes: Vec<[u8; 16]> = (0..4u64)
            .map(|did| DeltaKey::delta_prefix(2, 1, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let before = s.stats_snapshot();
        let groups = s
            .scan_prefix_batch(Table::Deltas, &refs, pk.token())
            .unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &before);
        assert_eq!(diff.iter().map(|m| m.batches).sum::<u64>(), 1);
        for (p, group) in refs.iter().zip(&groups) {
            let single = s.scan_prefix(Table::Deltas, p, pk.token()).unwrap();
            assert_eq!(group, &single);
        }
    }

    #[test]
    fn batched_reads_fail_over_and_surface_unavailability() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k1", token, Bytes::from_static(b"a"));
        s.put(Table::Deltas, b"k2", token, Bytes::from_static(b"b"));
        s.fail_machine(s.machine_for(token, 0));
        let got = s
            .multi_get(Table::Deltas, &[b"k1", b"k2", b"nope"], token)
            .unwrap();
        assert_eq!(got[0].as_deref(), Some(&b"a"[..]));
        assert_eq!(got[1].as_deref(), Some(&b"b"[..]));
        assert_eq!(got[2], None);
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.multi_get(Table::Deltas, &[b"k1"], token),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            s.scan_prefix_batch(Table::Deltas, &[b"k"], token),
            Err(StoreError::Unavailable { .. })
        ));
    }

    #[test]
    fn put_failure_counters_track_degraded_writes() {
        let s = store(3, 2);
        let token = 0u64;
        assert_eq!(
            s.put(Table::Deltas, b"a", token, Bytes::from_static(b"v")),
            2
        );
        assert_eq!(s.partial_put_count(), 0);
        assert_eq!(s.failed_put_count(), 0);
        s.fail_machine(s.machine_for(token, 1));
        assert_eq!(
            s.put(Table::Deltas, b"b", token, Bytes::from_static(b"v")),
            1
        );
        assert_eq!(s.partial_put_count(), 1);
        s.fail_machine(s.machine_for(token, 0));
        assert_eq!(
            s.put(Table::Deltas, b"c", token, Bytes::from_static(b"v")),
            0
        );
        assert_eq!(s.failed_put_count(), 1);
        assert_eq!(s.partial_put_count(), 1);
    }
}

//! The simulated distributed store: placement, replication,
//! compression and accounting over a set of [`Machine`]s.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use hgs_delta::CodecError;

use crate::compress::{compress, decompress};
use crate::key::Table;
use crate::machine::{Machine, MachineStatsSnapshot};

/// Cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of storage machines (`m` in the paper).
    pub machines: usize,
    /// Replication factor (`r`): each chunk is written to `r`
    /// consecutive machines of the ring.
    pub replication: usize,
    /// Compress values with LZSS before storing (Fig. 13a).
    pub compress: bool,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            machines: 4,
            replication: 1,
            compress: false,
        }
    }
}

impl StoreConfig {
    pub fn new(machines: usize, replication: usize) -> StoreConfig {
        StoreConfig {
            machines,
            replication,
            compress: false,
        }
    }

    pub fn with_compression(mut self, on: bool) -> StoreConfig {
        self.compress = on;
        self
    }
}

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Every replica holding the requested chunk is down.
    Unavailable { table: Table },
    /// Stored bytes failed to decompress.
    Corrupt(CodecError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Unavailable { table } => {
                write!(f, "all replicas down for a chunk of table {table}")
            }
            StoreError::Corrupt(e) => write!(f, "corrupt stored value: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Cluster-wide stats snapshot: one entry per machine.
pub type StoreStatsSnapshot = Vec<MachineStatsSnapshot>;

/// One row of a write batch: the same `(table, key, token, value)`
/// quadruple [`SimStore::put`] takes, as a value so whole batches can
/// be built up and shipped in per-machine round trips.
#[derive(Debug, Clone)]
pub struct PutRow {
    pub table: Table,
    pub key: Vec<u8>,
    pub token: u64,
    pub value: Bytes,
}

impl PutRow {
    pub fn new(table: Table, key: Vec<u8>, token: u64, value: Bytes) -> PutRow {
        PutRow {
            table,
            key,
            token,
            value,
        }
    }
}

/// Per-row accounting of one [`SimStore::put_batch`]: every row of the
/// batch lands in exactly one bucket, so
/// `replicated + partial + failed == rows.len()` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPutOutcome {
    /// Rows accepted by all `r` replicas.
    pub replicated: usize,
    /// Rows accepted by some but not all replicas (degraded
    /// durability; counted in [`SimStore::partial_put_count`]).
    pub partial: usize,
    /// Rows accepted by no replica (counted in
    /// [`SimStore::failed_put_count`]; lost unless retried).
    pub failed: usize,
    /// Table of the first fully-failed row, used by
    /// [`SimStore::try_put_batch`] to surface the error.
    pub first_failed_table: Option<Table>,
}

impl BatchPutOutcome {
    /// Total rows accounted for by this outcome.
    pub fn rows(&self) -> usize {
        self.replicated + self.partial + self.failed
    }
}

/// The simulated cluster. Cheap to share behind an `Arc`; all methods
/// take `&self`.
pub struct SimStore {
    cfg: StoreConfig,
    machines: Vec<Machine>,
    /// Writes that reached some but not all replicas (degraded
    /// durability — the data survives only while the accepting
    /// replicas stay up).
    partial_puts: AtomicU64,
    /// Writes that reached no replica at all (data loss if the caller
    /// ignores the zero return).
    failed_puts: AtomicU64,
}

impl SimStore {
    /// Build a cluster of `cfg.machines` empty machines.
    pub fn new(cfg: StoreConfig) -> SimStore {
        assert!(cfg.machines >= 1, "need at least one machine");
        assert!(
            (1..=cfg.machines).contains(&cfg.replication),
            "replication must be in 1..=machines"
        );
        SimStore {
            cfg,
            machines: (0..cfg.machines).map(|_| Machine::new()).collect(),
            partial_puts: AtomicU64::new(0),
            failed_puts: AtomicU64::new(0),
        }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The machine index holding replica `replica` of a chunk with the
    /// given placement token.
    #[inline]
    pub fn machine_for(&self, token: u64, replica: usize) -> usize {
        ((token as usize) + replica) % self.machines.len()
    }

    fn namespaced(table: Table, key: &[u8]) -> Vec<u8> {
        let mut k = Vec::with_capacity(key.len() + 1);
        k.push(table.tag());
        k.extend_from_slice(key);
        k
    }

    /// Write a row to all replicas of its chunk. Returns the number of
    /// replicas that accepted the write (0 means fully unavailable).
    pub fn put(&self, table: Table, key: &[u8], token: u64, value: Bytes) -> usize {
        let stored = if self.cfg.compress {
            compress(&value)
        } else {
            value
        };
        let nk = Self::namespaced(table, key);
        let mut ok = 0;
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            if self.machines[m].put(nk.clone(), stored.clone()) {
                ok += 1;
            }
        }
        if ok == 0 {
            self.failed_puts.fetch_add(1, Ordering::Relaxed);
        } else if ok < self.cfg.replication {
            self.partial_puts.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Write a batch of rows, grouped into **one round trip per
    /// machine**: every row is routed to all `r` replica machines of
    /// its placement token, the rows destined to one machine travel
    /// together as a single [`Machine::put_batch`], and per-row
    /// replica outcomes are re-assembled afterwards. The whole batch
    /// is always processed — a dead machine fails only the rows
    /// placed on it — so the partial/failed put counters account for
    /// every row, exactly as `rows.len()` individual [`SimStore::put`]
    /// calls would.
    pub fn put_batch(&self, rows: Vec<PutRow>) -> BatchPutOutcome {
        let mut outcome = BatchPutOutcome::default();
        if rows.is_empty() {
            return outcome;
        }
        // Namespace + compress each row once, up front.
        let prepared: Vec<(Table, Vec<u8>, u64, Bytes)> = rows
            .into_iter()
            .map(|row| {
                let stored = if self.cfg.compress {
                    compress(&row.value)
                } else {
                    row.value
                };
                (
                    row.table,
                    Self::namespaced(row.table, &row.key),
                    row.token,
                    stored,
                )
            })
            .collect();
        // Group row indices per destination machine (all replicas of a
        // row, merged with every other row landing on that machine).
        let mut per_machine: Vec<Vec<usize>> = vec![Vec::new(); self.machines.len()];
        for (i, &(_, _, token, _)) in prepared.iter().enumerate() {
            for r in 0..self.cfg.replication {
                per_machine[self.machine_for(token, r)].push(i);
            }
        }
        let mut ok = vec![0usize; prepared.len()];
        for (m, idxs) in per_machine.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let batch: Vec<(Vec<u8>, Bytes)> = idxs
                .iter()
                .map(|&i| (prepared[i].1.clone(), prepared[i].3.clone()))
                .collect();
            if self.machines[m].put_batch(batch).is_ok() {
                for &i in &idxs {
                    ok[i] += 1;
                }
            }
        }
        for (i, &(table, _, _, _)) in prepared.iter().enumerate() {
            if ok[i] == 0 {
                self.failed_puts.fetch_add(1, Ordering::Relaxed);
                outcome.failed += 1;
                outcome.first_failed_table.get_or_insert(table);
            } else if ok[i] < self.cfg.replication {
                self.partial_puts.fetch_add(1, Ordering::Relaxed);
                outcome.partial += 1;
            } else {
                outcome.replicated += 1;
            }
        }
        outcome
    }

    /// Fallible [`SimStore::put_batch`]: the whole batch is still
    /// processed (rows on healthy machines land, counters account for
    /// every row), then any row that reached **zero** replicas
    /// surfaces as [`StoreError::Unavailable`] — a batched write the
    /// cluster did not accept anywhere must fail the caller, not
    /// silently shrink the index.
    pub fn try_put_batch(&self, rows: Vec<PutRow>) -> Result<BatchPutOutcome, StoreError> {
        let outcome = self.put_batch(rows);
        match outcome.first_failed_table {
            Some(table) => Err(StoreError::Unavailable { table }),
            None => Ok(outcome),
        }
    }

    /// Writes that reached only a strict subset of their replicas so
    /// far (degraded-durability writes).
    pub fn partial_put_count(&self) -> u64 {
        self.partial_puts.load(Ordering::Relaxed)
    }

    /// Writes that reached no replica so far (lost unless retried).
    pub fn failed_put_count(&self) -> u64 {
        self.failed_puts.load(Ordering::Relaxed)
    }

    /// Point lookup with replica failover.
    pub fn get(&self, table: Table, key: &[u8], token: u64) -> Result<Option<Bytes>, StoreError> {
        let nk = Self::namespaced(table, key);
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].get(&nk) {
                Ok(Some(bytes)) => return Ok(Some(self.maybe_decompress(bytes)?)),
                Ok(None) => return Ok(None),
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Ordered prefix scan with replica failover. Keys are returned
    /// without the table namespace byte.
    pub fn scan_prefix(
        &self,
        table: Table,
        prefix: &[u8],
        token: u64,
    ) -> Result<Vec<(Vec<u8>, Bytes)>, StoreError> {
        let np = Self::namespaced(table, prefix);
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].scan_prefix(&np) {
                Ok(rows) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (k, v) in rows {
                        out.push((k[1..].to_vec(), self.maybe_decompress(v)?));
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Batched point lookups with replica failover: all keys share one
    /// placement token (one chunk), so a single machine answers the
    /// whole batch in one round-trip.
    pub fn multi_get(
        &self,
        table: Table,
        keys: &[&[u8]],
        token: u64,
    ) -> Result<Vec<Option<Bytes>>, StoreError> {
        let nks: Vec<Vec<u8>> = keys.iter().map(|k| Self::namespaced(table, k)).collect();
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].multi_get(&nks) {
                Ok(values) => {
                    let mut out = Vec::with_capacity(values.len());
                    for v in values {
                        out.push(match v {
                            Some(bytes) => Some(self.maybe_decompress(bytes)?),
                            None => None,
                        });
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    /// Grouped prefix scan with replica failover: one result group per
    /// prefix, in input order, served by a single machine round-trip
    /// (all prefixes share one placement token). Keys are returned
    /// without the table namespace byte. This is the fetch unit of the
    /// multipoint snapshot planner: the union of a query batch's
    /// tree-path deltas for one `(tsid, sid)` chunk travels as one
    /// request.
    pub fn scan_prefix_batch(
        &self,
        table: Table,
        prefixes: &[&[u8]],
        token: u64,
    ) -> Result<Vec<crate::machine::ScanRows>, StoreError> {
        let nps: Vec<Vec<u8>> = prefixes
            .iter()
            .map(|p| Self::namespaced(table, p))
            .collect();
        for r in 0..self.cfg.replication {
            let m = self.machine_for(token, r);
            match self.machines[m].scan_prefixes(&nps) {
                Ok(groups) => {
                    let mut out = Vec::with_capacity(groups.len());
                    for rows in groups {
                        let mut group = Vec::with_capacity(rows.len());
                        for (k, v) in rows {
                            group.push((k[1..].to_vec(), self.maybe_decompress(v)?));
                        }
                        out.push(group);
                    }
                    return Ok(out);
                }
                Err(crate::machine::MachineDown) => continue,
            }
        }
        Err(StoreError::Unavailable { table })
    }

    fn maybe_decompress(&self, bytes: Bytes) -> Result<Bytes, StoreError> {
        if self.cfg.compress {
            decompress(&bytes).map_err(StoreError::Corrupt)
        } else {
            Ok(bytes)
        }
    }

    /// Mark a machine failed (failure injection for tests).
    pub fn fail_machine(&self, idx: usize) {
        self.machines[idx].set_down(true);
    }

    /// Bring a failed machine back (its data is intact).
    pub fn heal_machine(&self, idx: usize) {
        self.machines[idx].set_down(false);
    }

    /// Per-machine access-counter snapshot.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        self.machines.iter().map(|m| m.stats().snapshot()).collect()
    }

    /// Difference of two snapshots (per machine).
    pub fn stats_since(now: &StoreStatsSnapshot, then: &StoreStatsSnapshot) -> StoreStatsSnapshot {
        now.iter()
            .zip(then.iter())
            .map(|(a, b)| a.since(b))
            .collect()
    }

    /// Total stored bytes across machines — the index *size* measure of
    /// Table 1 (counts each replica once; divide by `r` for logical
    /// size).
    pub fn stored_bytes(&self) -> usize {
        self.machines.iter().map(|m| m.stored_bytes()).sum()
    }

    /// Total row count across machines (replicas included).
    pub fn row_count(&self) -> usize {
        self.machines.iter().map(|m| m.row_count()).sum()
    }

    /// Per-machine row counts; used to check placement balance.
    pub fn rows_per_machine(&self) -> Vec<usize> {
        self.machines.iter().map(|m| m.row_count()).collect()
    }

    /// Full per-machine content dump (namespaced keys, stored values),
    /// out-of-band: served even from down machines and not counted in
    /// the stats. This is the oracle of the build-equivalence property
    /// tests — two stores are interchangeable iff their dumps are
    /// row-for-row identical.
    pub fn content_rows(&self) -> Vec<crate::machine::ScanRows> {
        self.machines.iter().map(|m| m.dump_rows()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DeltaKey, PlacementKey};

    fn store(m: usize, r: usize) -> SimStore {
        SimStore::new(StoreConfig::new(m, r))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(3, 1);
        let k = DeltaKey::new(0, 1, 2, 3);
        s.put(
            Table::Deltas,
            &k.encode(),
            k.placement().token(),
            Bytes::from_static(b"v"),
        );
        let got = s
            .get(Table::Deltas, &k.encode(), k.placement().token())
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn tables_are_isolated() {
        let s = store(1, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"a"));
        s.put(Table::Versions, b"k", 0, Bytes::from_static(b"b"));
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(
            s.get(Table::Versions, b"k", 0).unwrap().as_deref(),
            Some(&b"b"[..])
        );
    }

    #[test]
    fn scan_returns_clustered_rows_in_order() {
        let s = store(2, 1);
        let pk = PlacementKey::new(5, 0);
        for pid in [3u32, 1, 2, 0] {
            let k = DeltaKey::new(5, 0, 9, pid);
            s.put(
                Table::Deltas,
                &k.encode(),
                pk.token(),
                Bytes::from(vec![pid as u8]),
            );
        }
        // A row of another delta on the same placement must not appear.
        let other = DeltaKey::new(5, 0, 10, 0);
        s.put(
            Table::Deltas,
            &other.encode(),
            pk.token(),
            Bytes::from_static(b"x"),
        );
        let rows = s
            .scan_prefix(Table::Deltas, &DeltaKey::delta_prefix(5, 0, 9), pk.token())
            .unwrap();
        assert_eq!(rows.len(), 4);
        let pids: Vec<u32> = rows
            .iter()
            .map(|(k, _)| DeltaKey::decode(k).unwrap().pid)
            .collect();
        assert_eq!(pids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn replication_survives_failure() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k", token, Bytes::from_static(b"v"));
        let primary = s.machine_for(token, 0);
        s.fail_machine(primary);
        assert_eq!(
            s.get(Table::Deltas, b"k", token).unwrap().as_deref(),
            Some(&b"v"[..])
        );
        // Failing the replica too makes the chunk unavailable.
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.get(Table::Deltas, b"k", token),
            Err(StoreError::Unavailable { .. })
        ));
        s.heal_machine(primary);
        assert!(s.get(Table::Deltas, b"k", token).is_ok());
    }

    #[test]
    fn no_replication_no_failover() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"v"));
        s.fail_machine(s.machine_for(0, 0));
        assert!(s.get(Table::Deltas, b"k", 0).is_err());
    }

    #[test]
    fn compression_is_transparent() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabcabcabcabcabcabcabc".repeat(100));
        s.put(Table::Deltas, b"k", 0, value.clone());
        assert!(
            s.stored_bytes() < value.len(),
            "stored form should be smaller"
        );
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn replicas_double_stored_bytes() {
        let s1 = store(4, 1);
        let s2 = store(4, 2);
        for s in [&s1, &s2] {
            for i in 0..32u64 {
                s.put(
                    Table::Deltas,
                    &i.to_be_bytes(),
                    i * 7919,
                    Bytes::from(vec![0u8; 100]),
                );
            }
        }
        assert_eq!(s2.stored_bytes(), 2 * s1.stored_bytes());
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let s = store(4, 1);
        for i in 0..4000u64 {
            let pk = PlacementKey::new((i / 64) as u32, (i % 64) as u32);
            s.put(
                Table::Deltas,
                &i.to_be_bytes(),
                pk.token(),
                Bytes::from_static(b"v"),
            );
        }
        let rows = s.rows_per_machine();
        let min = *rows.iter().min().unwrap();
        let max = *rows.iter().max().unwrap();
        assert!(max < 2 * min, "placement imbalance: {rows:?}");
    }

    #[test]
    fn stats_bracketing() {
        let s = store(2, 1);
        s.put(Table::Deltas, b"k", 0, Bytes::from_static(b"hello"));
        let t0 = s.stats_snapshot();
        s.get(Table::Deltas, b"k", 0).unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &t0);
        let total_gets: u64 = diff.iter().map(|m| m.gets).sum();
        assert_eq!(total_gets, 1);
    }

    #[test]
    #[should_panic]
    fn invalid_replication_rejected() {
        let _ = SimStore::new(StoreConfig::new(2, 3));
    }

    #[test]
    fn scan_prefix_batch_matches_individual_scans() {
        let s = store(3, 1);
        let pk = PlacementKey::new(2, 1);
        for did in 0..4u64 {
            for pid in 0..3u32 {
                let k = DeltaKey::new(2, 1, did, pid);
                s.put(
                    Table::Deltas,
                    &k.encode(),
                    pk.token(),
                    Bytes::from(vec![did as u8, pid as u8]),
                );
            }
        }
        let prefixes: Vec<[u8; 16]> = (0..4u64)
            .map(|did| DeltaKey::delta_prefix(2, 1, did))
            .collect();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| &p[..]).collect();
        let before = s.stats_snapshot();
        let groups = s
            .scan_prefix_batch(Table::Deltas, &refs, pk.token())
            .unwrap();
        let diff = SimStore::stats_since(&s.stats_snapshot(), &before);
        assert_eq!(diff.iter().map(|m| m.batches).sum::<u64>(), 1);
        for (p, group) in refs.iter().zip(&groups) {
            let single = s.scan_prefix(Table::Deltas, p, pk.token()).unwrap();
            assert_eq!(group, &single);
        }
    }

    #[test]
    fn batched_reads_fail_over_and_surface_unavailability() {
        let s = store(3, 2);
        let token = 0u64;
        s.put(Table::Deltas, b"k1", token, Bytes::from_static(b"a"));
        s.put(Table::Deltas, b"k2", token, Bytes::from_static(b"b"));
        s.fail_machine(s.machine_for(token, 0));
        let got = s
            .multi_get(Table::Deltas, &[b"k1", b"k2", b"nope"], token)
            .unwrap();
        assert_eq!(got[0].as_deref(), Some(&b"a"[..]));
        assert_eq!(got[1].as_deref(), Some(&b"b"[..]));
        assert_eq!(got[2], None);
        s.fail_machine(s.machine_for(token, 1));
        assert!(matches!(
            s.multi_get(Table::Deltas, &[b"k1"], token),
            Err(StoreError::Unavailable { .. })
        ));
        assert!(matches!(
            s.scan_prefix_batch(Table::Deltas, &[b"k"], token),
            Err(StoreError::Unavailable { .. })
        ));
    }

    #[test]
    fn put_batch_matches_individual_puts_and_counts_machine_round_trips() {
        let individual = store(3, 1);
        let batched = store(3, 1);
        let rows: Vec<PutRow> = (0..24u64)
            .map(|i| {
                PutRow::new(
                    Table::Deltas,
                    i.to_be_bytes().to_vec(),
                    i * 7919,
                    Bytes::from(vec![i as u8; 8]),
                )
            })
            .collect();
        for r in &rows {
            individual.put(r.table, &r.key, r.token, r.value.clone());
        }
        let before = batched.stats_snapshot();
        let outcome = batched.try_put_batch(rows.clone()).unwrap();
        assert_eq!(outcome.replicated, rows.len());
        assert_eq!(outcome.rows(), rows.len());
        let diff = SimStore::stats_since(&batched.stats_snapshot(), &before);
        let put_batches: u64 = diff.iter().map(|m| m.put_batches).sum();
        let puts: u64 = diff.iter().map(|m| m.puts).sum();
        assert_eq!(puts, rows.len() as u64, "one logical put per row");
        assert!(
            put_batches <= batched.machine_count() as u64,
            "at most one round trip per machine, got {put_batches}"
        );
        assert_eq!(
            individual.content_rows(),
            batched.content_rows(),
            "batched writes must place identical content"
        );
    }

    #[test]
    fn put_batch_replicates_like_put() {
        let s = store(4, 2);
        s.try_put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            3,
            Bytes::from_static(b"v"),
        )])
        .unwrap();
        s.fail_machine(s.machine_for(3, 0));
        assert_eq!(
            s.get(Table::Deltas, b"k", 3).unwrap().as_deref(),
            Some(&b"v"[..]),
            "batched write must reach every replica"
        );
    }

    #[test]
    fn put_batch_processes_whole_batch_and_accounts_every_row() {
        let s = store(3, 1);
        // Tokens 0, 1, 2 land on distinct machines; kill machine of
        // token 1.
        let dead = s.machine_for(1, 0);
        s.fail_machine(dead);
        let rows: Vec<PutRow> = (0..9u64)
            .map(|i| {
                PutRow::new(
                    Table::Deltas,
                    i.to_be_bytes().to_vec(),
                    i % 3,
                    Bytes::from_static(b"v"),
                )
            })
            .collect();
        let outcome = s.put_batch(rows);
        assert_eq!(outcome.failed, 3, "every row of the dead machine fails");
        assert_eq!(outcome.replicated, 6, "healthy machines' rows all land");
        assert_eq!(outcome.partial, 0);
        assert_eq!(outcome.rows(), 9, "every row is accounted exactly once");
        assert_eq!(s.failed_put_count(), 3);
        assert_eq!(s.row_count(), 6);
        assert!(matches!(
            s.try_put_batch(vec![PutRow::new(
                Table::Versions,
                b"x".to_vec(),
                1,
                Bytes::from_static(b"v")
            )]),
            Err(StoreError::Unavailable {
                table: Table::Versions
            })
        ));
    }

    #[test]
    fn put_batch_counts_partial_replication() {
        let s = store(3, 2);
        s.fail_machine(s.machine_for(0, 1));
        let outcome = s.put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            0,
            Bytes::from_static(b"v"),
        )]);
        assert_eq!(outcome.partial, 1);
        assert_eq!(outcome.failed, 0);
        assert_eq!(s.partial_put_count(), 1);
    }

    #[test]
    fn batched_compression_is_transparent() {
        let s = SimStore::new(StoreConfig::new(1, 1).with_compression(true));
        let value = Bytes::from(b"abcabcabcabcabcabcabcabcabc".repeat(100));
        s.try_put_batch(vec![PutRow::new(
            Table::Deltas,
            b"k".to_vec(),
            0,
            value.clone(),
        )])
        .unwrap();
        assert!(s.stored_bytes() < value.len());
        assert_eq!(
            s.get(Table::Deltas, b"k", 0).unwrap().as_deref(),
            Some(&value[..])
        );
    }

    #[test]
    fn put_failure_counters_track_degraded_writes() {
        let s = store(3, 2);
        let token = 0u64;
        assert_eq!(
            s.put(Table::Deltas, b"a", token, Bytes::from_static(b"v")),
            2
        );
        assert_eq!(s.partial_put_count(), 0);
        assert_eq!(s.failed_put_count(), 0);
        s.fail_machine(s.machine_for(token, 1));
        assert_eq!(
            s.put(Table::Deltas, b"b", token, Bytes::from_static(b"v")),
            1
        );
        assert_eq!(s.partial_put_count(), 1);
        s.fail_machine(s.machine_for(token, 0));
        assert_eq!(
            s.put(Table::Deltas, b"c", token, Bytes::from_static(b"v")),
            0
        );
        assert_eq!(s.failed_put_count(), 1);
        assert_eq!(s.partial_put_count(), 1);
    }
}
